#!/usr/bin/env python
"""Quickstart: define a transactional process, schedule it, inspect it.

Walks through the library's core loop in five steps:

1. define a well-formed flex process with the structure DSL,
2. inspect its guaranteed-termination structure (valid executions),
3. run two conflicting instances under the PRED scheduler,
4. look at the produced history and its correctness certificates,
5. trigger a failure and watch the alternative path execute.

Run with::

    python examples/quickstart.py
"""

from repro import (
    ExplicitConflicts,
    FailurePlan,
    SchedulerRules,
    TransactionalProcessScheduler,
    build_process,
    check_pred,
    choice,
    comp,
    count_valid_executions,
    enumerate_executions,
    pivot,
    retr,
    seq,
    state_determining_activity,
)
from repro.analysis import render_process, render_schedule


def make_booking(process_id: str):
    """A travel booking: reserve (undoable), ticket (pivot), notify.

    If ticketing at the preferred carrier fails, the reservation is
    compensated and a waitlist entry is taken instead — guaranteed
    termination in action.
    """
    return build_process(
        process_id,
        seq(
            comp("reserve", service="reserve_seat"),
            pivot("approve", service="approve_booking"),
            choice(
                seq(
                    comp("hold_fare", service="hold_fare"),
                    pivot("ticket", service="issue_ticket"),
                    retr("notify", service="send_confirmation"),
                ),
                seq(retr("waitlist", service="enter_waitlist")),
            ),
        ),
    )


def main() -> None:
    print("=" * 64)
    print("Step 1 — the process structure")
    print("=" * 64)
    booking = make_booking("Booking")
    print(render_process(booking))
    print(f"\nstate-determining activity: {state_determining_activity(booking)}")

    print()
    print("=" * 64)
    print("Step 2 — guaranteed termination: the valid executions")
    print("=" * 64)
    print(f"{count_valid_executions(booking)} distinct valid executions:")
    for path in enumerate_executions(booking):
        print(f"  {path}")

    print()
    print("=" * 64)
    print("Step 3 — two conflicting bookings under the PRED scheduler")
    print("=" * 64)
    # both bookings compete for seats: their reserve activities conflict
    conflicts = ExplicitConflicts([("reserve_seat", "reserve_seat")])
    scheduler = TransactionalProcessScheduler(
        conflicts=conflicts,
        rules=SchedulerRules(paranoid=True),  # offline-certify every step
    )
    scheduler.submit(make_booking("Alice"))
    scheduler.submit(make_booking("Bob"))
    history = scheduler.run()
    print(render_schedule(history))

    print()
    print("=" * 64)
    print("Step 4 — correctness certificates")
    print("=" * 64)
    print(f"history: {history}")
    print(f"serializable:      {history.is_serializable()}")
    print(f"serial order:      {history.serialization_order()}")
    print(f"prefix-reducible:  {check_pred(history)}")
    print(f"scheduler stats:   {scheduler.stats}")

    print()
    print("=" * 64)
    print("Step 5 — a failing ticket triggers the alternative")
    print("=" * 64)
    scheduler = TransactionalProcessScheduler(
        conflicts=conflicts, rules=SchedulerRules(paranoid=True)
    )
    scheduler.submit(
        make_booking("Carol"),
        failures=FailurePlan.fail_once(["issue_ticket"]),
    )
    history = scheduler.run()
    print(render_schedule(history))
    print(
        "\nThe failed ticket was followed by compensation of the fare "
        "hold\nand the retriable waitlist path — the booking still "
        "terminates validly."
    )


if __name__ == "__main__":
    main()
