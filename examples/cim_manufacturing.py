#!/usr/bin/env python
"""The paper's §2 CIM scenario: construction ∥ production (Figure 1).

Demonstrates the motivation example end to end, on real subsystem
state:

* the **construction** process designs a part, enters its bill of
  materials (BOM) into the PDM system, tests it and documents it;
* the **production** process reads the BOM, orders material, schedules
  and produces — once parts are physically made there is no inverse.

The PRED scheduler enforces exactly what §3.5 concludes for Figure 1:
the production pivot is *deferred until the construction process
commits*.  When the test fails, the construction process compensates
the PDM entry (partial backward recovery, §2.1) and the production
process — whose BOM is now invalid — is aborted by a **cascading
abort**, with all compensations in reverse order (Lemma 2).  Crucially,
no parts were produced.

Run with::

    python examples/cim_manufacturing.py
"""

from repro.analysis import render_schedule
from repro.scenarios.cim import run_cim


def show_state(scenario) -> None:
    registry = scenario.registry
    print(f"  CAD drawings:      {registry.get('cad').store.get('drawings')}")
    print(f"  PDM BOM:           {registry.get('pdm').store.get('bom')}")
    print(f"  tests run:         {registry.get('testdb').store.get('tests_run')}")
    print(f"  documents:         {registry.get('docs').store.get('documents')}")
    print(f"  material orders:   {registry.get('erp').store.get('orders')}")
    print(f"  parts produced:    {registry.get('floor').store.get('produced')}")


def main() -> None:
    print("=" * 70)
    print("Run 1 — the test succeeds")
    print("=" * 70)
    scenario, scheduler = run_cim(fail_test=False)
    history = scheduler.history()
    print(render_schedule(history))
    print()
    events = [str(event) for event in history.events]
    produce_at = events.index("Production.produce")
    commit_at = events.index("C(Construction)")
    print(
        f"production pivot deferred until construction committed: "
        f"C(Construction) at {commit_at} < produce at {produce_at}"
    )
    show_state(scenario)

    print()
    print("=" * 70)
    print("Run 2 — the test fails after production read the BOM")
    print("=" * 70)
    scenario, scheduler = run_cim(fail_test=True)
    history = scheduler.history()
    print(render_schedule(history))
    print()
    print(f"statuses:          {scheduler.statuses()}")
    print(f"cascading aborts:  {scheduler.stats['cascading_aborts']}")
    show_state(scenario)
    print()
    print(
        "The PDM entry was compensated, the production process was\n"
        "cascade-aborted (its compensations ran in reverse order before\n"
        "pdm_entry^-1 — Lemma 2), the drawing was archived for reuse\n"
        "(§2.1), and — the whole point — zero parts were produced."
    )


if __name__ == "__main__":
    main()
