#!/usr/bin/env python
"""Scheduler crash and restart recovery (Definition 8's group abort).

The scheduler write-ahead-logs every protocol step.  We crash it at an
inconvenient moment — one process backward-recoverable, the other past
its pivot — and run restart recovery:

1. WAL analysis reconstructs who was active and what had committed;
2. in-doubt prepared transactions are resolved (presumed abort);
3. the group abort ``A(P_{n_1}, …)`` finishes every active process via
   its completion — compensation for the B-REC one, the retriable
   forward path for the F-REC one;
4. the combined history is certified prefix-reducible.

Run with::

    python examples/crash_recovery_demo.py
"""

from repro import InMemoryWAL, TransactionalProcessScheduler, check_pred, recover
from repro.analysis import render_schedule
from repro.scenarios.paper import paper_conflicts, process_p1, process_p2


def main() -> None:
    wal = InMemoryWAL()
    scheduler = TransactionalProcessScheduler(
        conflicts=paper_conflicts(), wal=wal
    )
    scheduler.submit(process_p1())
    scheduler.submit(process_p2())

    print("=" * 70)
    print("Running… then crash mid-flight")
    print("=" * 70)
    for _ in range(3):
        scheduler.step_round()
    print("pre-crash history:")
    print(render_schedule(scheduler.history()))
    print()
    print("WAL records so far:")
    for record in wal.records():
        interesting = {
            key: value
            for key, value in record.items()
            if key not in ("lsn",)
        }
        print(f"  [{record['lsn']:>2}] {interesting}")

    scheduler.crash()
    print("\n*** scheduler crashed — volatile state gone ***")
    print(
        f"prepared (in-doubt) transactions at subsystems: "
        f"{len(scheduler.registry.prepared_transactions())}"
    )

    print()
    print("=" * 70)
    print("Restart recovery")
    print("=" * 70)
    report = recover(
        wal,
        scheduler.registry,
        {"P1": process_p1(), "P2": process_p2()},
        conflicts=paper_conflicts(),
    )
    print(f"active at crash:        {report.group_aborted}")
    print(f"in-doubt rolled back:   {report.rolled_back_in_doubt}")
    print(f"in-doubt re-committed:  {report.re_committed_in_doubt}")
    print()
    print("recovered history (pre-crash events + completions):")
    print(render_schedule(report.history))
    print()
    statuses = report.scheduler.statuses()
    for pid, status in sorted(statuses.items()):
        print(f"  {pid}: {status.value}")
    result = check_pred(report.history)
    print(f"\ncertificate: {result}")
    print(
        "\nBackward-recoverable processes were compensated; forward-\n"
        "recoverable ones were driven down their retriable path — the\n"
        "group abort of Definition 8, live."
    )


if __name__ == "__main__":
    main()
