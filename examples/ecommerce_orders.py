#!/usr/bin/env python
"""E-commerce order pipeline: concurrency, failures and guarantees.

Three orders for the same article race for stock; a fourth order's
payment fails.  The PRED scheduler keeps the inventory consistent,
orders the conflicting stock reservations, and routes the failed
payment to the manual-payment alternative — no order ever ends
half-processed (guaranteed termination).

Run with::

    python examples/ecommerce_orders.py
"""

from repro import FailurePlan, SchedulerRules, TransactionalProcessScheduler
from repro.analysis import print_table, render_schedule
from repro.scenarios.commerce import build_commerce_scenario, order_process


def main() -> None:
    print("=" * 70)
    print("Three concurrent orders, ample stock")
    print("=" * 70)
    scenario = build_commerce_scenario(orders=3, stock=10)
    scheduler = TransactionalProcessScheduler(
        scenario.registry,
        scenario.conflicts,
        rules=SchedulerRules(paranoid=True),
    )
    for order in scenario.orders:
        scheduler.submit(order)
    history = scheduler.run()
    print(render_schedule(history))
    shop = scenario.registry.get("shop").store
    inventory = scenario.registry.get("inventory").store
    print()
    print(f"confirmed orders: {shop.get('confirmed')}")
    print(f"stock remaining:  {inventory.get('stock:widget')} (was 10)")
    print(f"payments taken:   {scenario.registry.get('payments').store.get('captured')}")

    print()
    print("=" * 70)
    print("A failing payment takes the manual-payment path")
    print("=" * 70)
    scenario = build_commerce_scenario(orders=0, stock=5)
    scheduler = TransactionalProcessScheduler(
        scenario.registry,
        scenario.conflicts,
        rules=SchedulerRules(paranoid=True),
    )
    scheduler.submit(
        order_process("rush-1", "widget"),
        failures=FailurePlan.fail_once(["charge_payment"]),
    )
    history = scheduler.run()
    print(render_schedule(history))
    shop = scenario.registry.get("shop").store
    inventory = scenario.registry.get("inventory").store
    print()
    rows = [
        {
            "orders recorded": len(shop.get("orders")),
            "confirmed": len(shop.get("confirmed")),
            "manual payment": len(shop.get("manual")),
            "customers notified": len(shop.get("notified")),
            "stock": inventory.get("stock:widget"),
        }
    ]
    print_table(rows, title="Outcome after payment failure")
    print()
    print(
        "The payment pivot failed, so the order rolled back to before\n"
        "the charge: the stock reservation was compensated and the order\n"
        "record removed — all-or-nothing at the right granularity."
    )

    print()
    print("=" * 70)
    print("Stock exhaustion: two seats, three orders")
    print("=" * 70)
    scenario = build_commerce_scenario(orders=3, stock=2)
    scheduler = TransactionalProcessScheduler(
        scenario.registry, scenario.conflicts
    )
    for order in scenario.orders:
        scheduler.submit(order)
    history = scheduler.run()
    committed = sorted(history.committed_processes())
    print(f"committed: {committed}")
    print(
        f"stock remaining: "
        f"{scenario.registry.get('inventory').store.get('stock:widget')}"
    )
    print(
        "The order that found the shelf empty aborted cleanly; stock\n"
        "never went negative."
    )


if __name__ == "__main__":
    main()
