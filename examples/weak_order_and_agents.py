#!/usr/bin/env python
"""§3.6 weak order and §2.3 coordination agents, hands on.

Part 1 — the weak order: two conflicting banking activities execute "in
parallel" inside one subsystem; the session guarantees the overall
effect equals the strong order (commit-order serializability), and a
retriable re-invocation transparently restarts the dependent
transaction — without counting as its failure.

Part 2 — a coordination agent wraps a non-transactional document
archive (plain Python object with side effects) into a transactional
subsystem: invocations become atomic, and committed calls gain a
compensation that replays the recorded undo.

Run with::

    python examples/weak_order_and_agents.py
"""

from repro.subsystems.agent import ApplicationOperation, CoordinationAgent
from repro.subsystems.services import Service, counter_service
from repro.subsystems.subsystem import Subsystem
from repro.subsystems.weak_order import WeakOrderSession


def part1_weak_order() -> None:
    print("=" * 66)
    print("Part 1 — weak order inside a subsystem (§3.6)")
    print("=" * 66)
    bank = Subsystem("bank", initial_state={"balance": 100, "audit": 0})
    bank.register(counter_service("deposit", "balance", amount=25))

    def audit(context):
        balance = context.read("balance", 0)
        context.write("audit", balance)
        return balance

    bank.register(Service("audit_balance", audit,
                          reads=frozenset({"balance"}),
                          writes=frozenset({"audit"})))

    session = WeakOrderSession(bank)
    deposit = session.enlist("deposit", position=0)
    audit_entry = session.enlist("audit_balance", position=1)
    session.execute_all()
    print(f"deposit result:   balance -> {deposit.return_value}")
    print(f"audit result:     saw balance {audit_entry.return_value} "
          f"(weak order respected: audit follows the deposit)")
    print(f"effects match strong order: {session.effects_match_strong_order()}")

    print("\nthe deposit is re-invoked (its local transaction aborted late):")
    session.reinvoke(deposit)
    print(f"audit restarted transparently: restarts={audit_entry.restarts}, "
          f"attempt={audit_entry.attempt} (not a failure of the audit)")
    session.commit()
    print(f"store after commit: balance={bank.store.get('balance')}, "
          f"audit={bank.store.get('audit')}")


class DocumentArchive:
    """A 'legacy application': side effects, no transactions."""

    def __init__(self) -> None:
        self.documents = []

    def store(self, params):
        self.documents.append(params["name"])
        return f"stored #{len(self.documents)}"

    def unstore(self, params, result):
        self.documents.remove(params["name"])


def part2_agents() -> None:
    print()
    print("=" * 66)
    print("Part 2 — wrapping a legacy application (§2.3)")
    print("=" * 66)
    archive = DocumentArchive()
    agent = CoordinationAgent("archive")
    agent.wrap(
        ApplicationOperation(
            name="store_doc",
            call=archive.store,
            undo=archive.unstore,
            writes=frozenset({"documents"}),
        )
    )

    first = agent.invoke("store_doc", params={"name": "bom-v1.pdf"})
    second = agent.invoke("store_doc", params={"name": "test-report.pdf"})
    print(f"invocations: {first.return_value!r}, {second.return_value!r}")
    print(f"archive now: {archive.documents}")

    print("\ncompensating the second call (LIFO):")
    agent.invoke("store_doc~inv", params={"name": "test-report.pdf"})
    print(f"archive now: {archive.documents}")
    print(f"journal depth: {agent.journal_depth('store_doc')}")
    print(
        "\nThe agent gave the legacy archive exactly the interface the\n"
        "process scheduler needs: atomic invocations + compensation —\n"
        "it can now participate in transactional processes like any\n"
        "native subsystem."
    )


if __name__ == "__main__":
    part1_weak_order()
    part2_agents()
