"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``check <schedule.json>``
    Classify a serialized schedule: legality, serializability, RED,
    PRED and process-recoverability, with witnesses.

``render <process.json>``
    Pretty-print a serialized process template's flex structure and its
    valid executions.

``workload``
    Generate a random well-formed workload and run it under a chosen
    scheduler discipline, printing the metrics row and the correctness
    grades (the X2 benchmark, à la carte).

``demo``
    Run the built-in CIM demonstration (the paper's Figure 1), with or
    without the failing test.

``dot <file.json>``
    Export a serialized process or schedule as Graphviz DOT on stdout.

``sweep``
    The X2 benchmark à la carte: run a conflict-rate sweep over all (or
    selected) scheduling disciplines and print the comparison table.

``chaos``
    Seeded chaos runs: inject aborts, latency spikes, hangs and
    crash-stops while the resilience layer (timeouts, backoff, circuit
    breakers, ◁-degradation) keeps the execution PRED-certifiable.
    Prints the per-run fault/retry/breaker/degradation counters.

``crashpoints``
    Crash-point torture sweep: crash the scheduler after every LSN of a
    seeded workload (and recovery after each of its own appends),
    inject torn-tail/bit-flip faults into an on-disk log, re-run
    restart recovery and certify every combined history with the
    offline PRED/RED/termination checkers.

``overload``
    Open-loop overload sweep: Poisson arrivals from below to far past
    the estimated capacity, through bounded admission with pivot-aware
    shed-youngest-B-REC load shedding.  Prints the goodput/latency/
    shed table per offered load; exits non-zero unless every run
    certifies with zero F-REC sheds and positive goodput.

``federation``
    Sharded scheduler federation: partition processes across N shards
    by service footprint, commit cross-shard groups through the
    crash-tolerant 2PC, and (with ``--kill``) kill and recover every
    shard mid-run while drop/delay/duplicate/partition faults hit the
    inter-shard links.  ``--scaling`` runs the service-disjoint
    throughput-scaling sweep instead.  Exits non-zero unless every
    merged history PRED-certifies with zero lost / duplicated commit
    decisions, no in-doubt residue and no lost processes.

``explain <trace.jsonl> [target]``
    Explain the last blocking/rejecting/aborting decision recorded in
    an exported trace: the protocol rule that fired (Lemma 1/2/3,
    admission policy, breaker) and the concrete conflicting
    predecessors.  ``--check`` validates the stream against the event
    schema first.

``top <trace.jsonl>``
    Replay an exported trace through the bounded-memory ops console:
    periodic snapshots of throughput, goodput, queue depth, breaker
    states, per-phase p95 latency and shard health, then the final
    summary line.

``slow <trace.jsonl> [process]``
    Commit-latency attribution for one process (default: the slowest):
    the per-phase critical-path table, the dominant latency phase, and
    — when the process was mostly *waiting* — the concrete conflicting
    predecessor it waited on.  Exit 0 when a phase is named, 1 when the
    trace has nothing to attribute, 2 on a malformed trace.

The run commands (``workload``, ``chaos``, ``overload``,
``crashpoints``, ``federation``) all accept ``--trace PATH``
(structured JSONL trace),
``--chrome-trace PATH`` (Chrome/Perfetto trace-event JSON),
``--metrics PATH`` (Prometheus text format) and
``--live-interval T`` (render the live ops console to stderr every
``T`` units of virtual time while the run streams).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.report import format_table
from repro.analysis.dot import process_to_dot, schedule_to_dot
from repro.analysis.viz import render_process, render_schedule
from repro.baselines import (
    FlatScheduler,
    LockingScheduler,
    OptimisticScheduler,
    SerialScheduler,
)
from repro.core.flex import enumerate_executions
from repro.core.pred import check_pred
from repro.core.recoverability import check_process_recoverability
from repro.core.reduction import reduce_schedule
from repro.core.scheduler import TransactionalProcessScheduler
from repro.core.serialize import (
    process_from_json,
    schedule_from_dict,
)
from repro.errors import CorrectnessViolation, ReproError
from repro.obs import (
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    OpsConsole,
    TraceBus,
    TraceEvent,
    attribution,
    critical_paths,
    explain_trace,
    read_trace,
    validate_stream,
    write_chrome_trace,
    write_prometheus,
)
from repro.sim.runner import simulate_run
from repro.sim.workload import WorkloadSpec, generate_workload
from repro.subsystems.backend import BackendHub
from repro.subsystems.subsystem import SubsystemRegistry

SCHEDULERS = {
    "pred": TransactionalProcessScheduler,
    "serial": SerialScheduler,
    "locking": LockingScheduler,
    "flat": FlatScheduler,
    "optimistic": OptimisticScheduler,
}


class _ObsSession:
    """CLI-side observability wiring shared by the run commands.

    Owns one trace bus and one metrics registry for the whole command
    (a sweep's runs share them, so sequence numbers stay monotone and
    metrics aggregate); :meth:`finish` writes the requested exports.
    """

    def __init__(self, args: argparse.Namespace) -> None:
        self.trace_path = getattr(args, "trace", None)
        self.chrome_path = getattr(args, "chrome_trace", None)
        self.metrics_path = getattr(args, "metrics", None)
        self.live_interval = getattr(args, "live_interval", None)
        self.registry = MetricsRegistry() if self.metrics_path else None
        self.bus: Optional[TraceBus] = None
        self._memory: Optional[MemorySink] = None
        self.console: Optional[OpsConsole] = None
        if self.trace_path or self.chrome_path or self.live_interval:
            self.bus = TraceBus()
            if self.trace_path:
                self.bus.subscribe(JsonlSink(self.trace_path))
            if self.chrome_path:
                self._memory = self.bus.subscribe(MemorySink())
            if self.live_interval:
                self.console = self.bus.subscribe(
                    OpsConsole(
                        interval=self.live_interval, out=sys.stderr
                    )
                )

    @property
    def active(self) -> bool:
        return self.bus is not None or self.registry is not None

    def emit(self, kind: str, **data: object) -> None:
        if self.bus is not None and self.bus.enabled:
            self.bus.emit(kind, **data)  # type: ignore[arg-type]

    def finish(self) -> List[str]:
        """Write export files; returns one note per artefact written."""
        notes: List[str] = []
        if self.console is not None:
            notes.append(self.console.render())
        if self.bus is not None:
            if self._memory is not None:
                write_chrome_trace(self.chrome_path, self._memory.records())
                notes.append(f"wrote chrome trace: {self.chrome_path}")
            self.bus.close()
            if self.trace_path:
                notes.append(f"wrote trace: {self.trace_path}")
        if self.registry is not None:
            write_prometheus(self.metrics_path, self.registry)
            notes.append(f"wrote metrics: {self.metrics_path}")
        return notes


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a structured JSONL trace of the run",
    )
    parser.add_argument(
        "--chrome-trace",
        metavar="PATH",
        default=None,
        help="write a Chrome/Perfetto trace-event JSON file",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write Prometheus text-format metrics",
    )
    parser.add_argument(
        "--live-interval",
        type=float,
        metavar="T",
        default=None,
        help="render the live ops console to stderr every T units of "
        "virtual time (throughput, goodput, queue depth, breakers, "
        "per-phase p95, shard health)",
    )


def _cmd_check(args: argparse.Namespace) -> int:
    with open(args.schedule, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    schedule = schedule_from_dict(payload)
    print(render_schedule(schedule))
    print()
    rows = [{"property": "legal execution", "verdict": schedule.is_legal()}]
    rows.append(
        {
            "property": "serializable",
            "verdict": schedule.is_serializable(),
            "witness": " ≪ ".join(schedule.serialization_order() or [])
            or "; ".join("→".join(c) for c in schedule.cycles()),
        }
    )
    reduction = reduce_schedule(schedule)
    rows.append(
        {
            "property": "reducible (RED)",
            "verdict": reduction.is_reducible,
            "witness": (
                f"cancelled {len(reduction.cancelled_pairs)} pairs"
                if reduction.is_reducible
                else "cycle " + "→".join(reduction.witness_cycle or ())
            ),
        }
    )
    pred = check_pred(schedule)
    rows.append(
        {
            "property": "prefix-reducible (PRED)",
            "verdict": pred.is_pred,
            "witness": (
                f"{pred.prefixes_checked} prefixes"
                if pred.is_pred
                else f"prefix {pred.violating_prefix_length} irreducible"
            ),
        }
    )
    proc_rec = check_process_recoverability(schedule)
    rows.append(
        {
            "property": "process-recoverable (Proc-REC)",
            "verdict": proc_rec.is_process_recoverable,
            "witness": (
                ""
                if proc_rec.is_process_recoverable
                else str(proc_rec.violations[0])
            ),
        }
    )
    print(
        format_table(
            rows,
            columns=["property", "verdict", "witness"],
            title=f"Classification of {args.schedule}",
        )
    )
    return 0 if pred.is_pred else 1


def _cmd_render(args: argparse.Namespace) -> int:
    with open(args.process, "r", encoding="utf-8") as handle:
        process = process_from_json(handle.read())
    print(render_process(process))
    if args.executions:
        print()
        print("valid executions:")
        for path in enumerate_executions(process):
            print(f"  {path}")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    spec = WorkloadSpec(
        processes=args.processes,
        conflict_rate=args.conflicts,
        failure_rate=args.failures,
        seed=args.seed,
    )
    workload = generate_workload(spec)
    obs = _ObsSession(args)
    backend = getattr(args, "backend", "memory")
    hub = BackendHub(backend) if backend != "memory" else None
    registry = SubsystemRegistry(
        backend_factory=hub.backend_for if hub is not None else None
    )
    scheduler_cls = SCHEDULERS[args.scheduler]
    if args.scheduler == "pred":
        scheduler = scheduler_cls(
            registry=registry,
            conflicts=workload.conflicts,
            trace=obs.bus,
            metrics=obs.registry,
        )
    else:
        if obs.active:
            print(
                "note: --trace/--chrome-trace/--metrics instrument the "
                "pred scheduler; baseline disciplines emit no events",
                file=sys.stderr,
            )
        scheduler = scheduler_cls(
            registry=registry, conflicts=workload.conflicts
        )
    for process in workload.processes:
        scheduler.submit(process, failures=workload.failures)
    obs.emit(
        "run_begin", harness="workload", seed=args.seed,
        scheduler=args.scheduler, backend=backend,
    )
    try:
        metrics = simulate_run(
            scheduler, durations=workload.duration, order=args.order
        )
        scheduler.registry.close()
    finally:
        if hub is not None:
            hub.close()
    obs.emit(
        "run_end",
        harness="workload",
        seed=args.seed,
        scheduler=args.scheduler,
        committed=metrics.processes_committed,
        aborted=metrics.processes_aborted,
        makespan=metrics.makespan,
    )
    history = scheduler.history()
    try:
        metrics.serializable = (
            history.committed_projection().is_serializable()
        )
        metrics.prefix_reducible = check_pred(history).is_pred
    except ReproError:
        metrics.illegal_history = True
    print(format_table([metrics.row()], title=f"workload seed={args.seed}"))
    if args.perf_counters:
        print()
        print(
            format_table(
                [metrics.perf_row()],
                title="incremental-core perf counters",
            )
        )
    if args.show_history:
        print()
        print(render_schedule(history))
    for note in obs.finish():
        print(note, file=sys.stderr)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.scenarios.cim import run_cim

    scenario, scheduler = run_cim(fail_test=args.fail_test)
    print(render_schedule(scheduler.history()))
    print()
    rows = [
        {
            "process": pid,
            "status": status.value,
        }
        for pid, status in sorted(scheduler.statuses().items())
    ]
    print(format_table(rows, title="CIM demo (paper §2, Figure 1)"))
    print(
        f"\nparts produced: "
        f"{scenario.registry.get('floor').store.get('produced')}"
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sim.experiments import sweep

    rows = sweep(
        conflict_rates=args.conflicts,
        failure_rates=args.failures,
        disciplines=args.disciplines or None,
        processes=args.processes,
        seed=args.seed,
        order=args.order,
    )
    print(
        format_table(
            rows,
            columns=[
                "scheduler",
                "conflict_rate",
                "failure_rate",
                "makespan",
                "committed",
                "aborted",
                "restarts",
                "legal",
                "serializable",
                "pred",
            ],
            title="discipline sweep",
        )
    )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.sim.chaos import ChaosSpec, chaos_sweep, default_mixes

    if args.mix == "all":
        mixes = default_mixes(processes=args.processes)
    else:
        base = default_mixes(processes=args.processes)
        mixes = [spec for spec in base if spec.name == args.mix]
    overrides = {}
    if args.abort_rate is not None:
        overrides["abort_rate"] = args.abort_rate
    if args.latency_rate is not None:
        overrides["latency_rate"] = args.latency_rate
    if args.hang_rate is not None:
        overrides["hang_rate"] = args.hang_rate
    if args.crash_rate is not None:
        overrides["crash_rate"] = args.crash_rate
    mixes = [
        replace(
            spec,
            timeout=args.timeout,
            max_attempts=args.max_attempts,
            breaker_threshold=args.breaker_threshold,
            breaker_reset=args.breaker_reset,
            backend=args.backend,
            **overrides,
        )
        for spec in mixes
    ]
    obs = _ObsSession(args)
    try:
        results = chaos_sweep(
            mixes=mixes,
            seeds=args.seeds,
            certify=not args.no_certify,
            trace=obs.bus,
            metrics=obs.registry,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        for note in obs.finish():
            print(note, file=sys.stderr)
    print(
        format_table(
            [result.row() for result in results],
            title=f"chaos sweep (seeds {args.seeds})",
        )
    )
    certified = sum(1 for result in results if result.certified)
    degradations = sum(
        result.counters.get("degradations", 0) for result in results
    )
    print(
        f"\n{certified}/{len(results)} runs certified "
        f"(PRED + reducible + terminated); "
        f"{degradations} ◁-degradations taken"
    )
    return 0 if certified == len(results) else 1


def _cmd_crashpoints(args: argparse.Namespace) -> int:
    from repro.sim.crashpoints import CrashPointSpec, run_crashpoints

    base = CrashPointSpec(
        workload=WorkloadSpec(
            processes=args.processes,
            prefix_range=(1, 3),
            service_pool=8,
            conflict_rate=args.conflicts,
        ),
        abort_rate=args.abort_rate,
        checkpoint_interval=args.checkpoint_interval,
        stride=args.stride,
        recovery_stride=args.recovery_stride,
        backend=args.backend,
    )
    obs = _ObsSession(args)
    try:
        sweeps = [
            run_crashpoints(
                base.with_seed(seed),
                file_faults=not args.no_file_faults,
                trace=obs.bus,
                metrics=obs.registry,
            )
            for seed in args.seeds
        ]
    finally:
        for note in obs.finish():
            print(note, file=sys.stderr)
    print(
        format_table(
            [sweep.row() for sweep in sweeps],
            title=f"crash-point sweep (seeds {args.seeds})",
        )
    )
    total = sum(len(sweep.results) for sweep in sweeps)
    faults = sum(len(sweep.file_faults) for sweep in sweeps)
    disk = sum(len(getattr(sweep, "disk_faults", ())) for sweep in sweeps)
    kills = sum(len(getattr(sweep, "real_kills", ())) for sweep in sweeps)
    certified = all(sweep.all_certified for sweep in sweeps)
    extras = ""
    if disk:
        extras += f" + {disk} disk faults"
    if kills:
        extras += f" + {kills} real kills"
    print(
        f"\n{total} crash points + {faults} file faults{extras} swept; "
        f"{'all certified' if certified else 'CERTIFICATION FAILURES'} "
        f"(PRED + reducible + terminated + idempotent recovery)"
    )
    for sweep in sweeps:
        for note in sweep.failures:
            print(f"  seed {sweep.spec.seed}: {note}")
    return 0 if certified else 1


def _cmd_overload(args: argparse.Namespace) -> int:
    from repro.sim.overload import (
        OverloadSpec,
        estimate_capacity,
        overload_sweep,
    )

    base = OverloadSpec(
        workload=WorkloadSpec(
            processes=args.processes,
            service_pool=16,
            conflict_rate=args.conflicts,
        ),
        max_active=args.max_active,
        max_queue_depth=args.queue_depth,
        max_queue_age=args.queue_age,
        shed_policy=args.shed_policy,
    )
    if args.loads:
        loads = args.loads
        capacity = None
    else:
        capacity = estimate_capacity(base)
        loads = [capacity * factor for factor in (0.5, 1.0, 2.0, 4.0)]
    obs = _ObsSession(args)
    try:
        results = overload_sweep(
            loads,
            base=base,
            seeds=args.seeds,
            certify=not args.no_certify,
            trace=obs.bus,
            metrics=obs.registry,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        for note in obs.finish():
            print(note, file=sys.stderr)
    title = "overload sweep"
    if capacity is not None:
        title += f" (capacity ~ {capacity:.3f} proc/t)"
    print(format_table([result.row() for result in results], title=title))
    certified = sum(1 for result in results if result.certified)
    frec_sheds = sum(result.frec_sheds for result in results)
    productive = sum(
        1 for result in results if result.metrics.processes_committed > 0
    )
    print(
        f"\n{certified}/{len(results)} runs certified "
        f"(PRED + reducible + terminated); {frec_sheds} F-REC sheds "
        f"(must be 0); {productive}/{len(results)} runs committed work"
    )
    healthy = (
        certified == len(results)
        and frec_sheds == 0
        and productive == len(results)
    )
    return 0 if healthy else 1


def _cmd_federation(args: argparse.Namespace) -> int:
    from repro.sim.federation import (
        FederationSpec,
        run_federation,
        scaling_sweep,
    )

    obs = _ObsSession(args)
    try:
        if args.scaling:
            counts = tuple(
                count for count in (1, 2, 4, 8) if count <= args.shards
            )
            results = scaling_sweep(
                counts, seeds=args.seeds, trace=obs.bus
            )
        else:
            groups = max(args.shards, 2 * args.shards)
            base = FederationSpec(
                shards=args.shards,
                service_groups=groups,
                processes_per_group=args.processes,
                cross_shard_fraction=args.cross,
                conflict_rate=args.conflicts,
                shard_capacity=args.capacity,
                drop_rate=args.drop,
                delay_rate=args.delay,
                duplicate_rate=args.duplicate,
                kills=tuple(
                    (args.kill_start + args.kill_spacing * index, index,
                     args.downtime)
                    for index in range(args.shards)
                ) if args.kill else (),
                partitions=tuple(
                    (2.0 + 4.0 * index, index, index + 1, 2.0)
                    for index in range(args.partitions)
                ) if args.shards > 1 else (),
            )
            results = [
                run_federation(
                    base.with_seed(seed), strict=False, trace=obs.bus
                )
                for seed in args.seeds
            ]
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        for note in obs.finish():
            print(note, file=sys.stderr)
    title = "federation scaling sweep" if args.scaling else (
        "federation chaos sweep" if args.kill else "federation sweep"
    )
    print(format_table([result.row() for result in results], title=title))
    certified = sum(1 for result in results if result.certified)
    lost = sum(len(result.lost_decisions) for result in results)
    dups = sum(len(result.dup_applications) for result in results)
    residue = sum(len(result.in_doubt_residue) for result in results)
    lost_procs = sum(len(result.lost_processes) for result in results)
    print(
        f"\n{certified}/{len(results)} runs certified "
        f"(PRED + reducible + terminated + audit); "
        f"{lost} lost decisions, {dups} duplicated applications, "
        f"{residue} in-doubt residue, {lost_procs} lost processes "
        f"(all must be 0)"
    )
    if args.scaling and len(results) > 1:
        by_shards = {result.spec.shards: result for result in results}
        low = by_shards[min(by_shards)]
        high = by_shards[max(by_shards)]
        if low.throughput > 0:
            print(
                f"throughput x{high.throughput / low.throughput:.2f} at "
                f"{high.spec.shards} shards vs {low.spec.shards}"
            )
    healthy = (
        certified == len(results)
        and not (lost or dups or residue or lost_procs)
    )
    return 0 if healthy else 1


def _nemesis_spec(args: argparse.Namespace):
    from repro.nemesis import NemesisSpec

    groups = args.groups if args.groups else max(2 * args.shards, 2)
    return NemesisSpec(
        shards=args.shards,
        service_groups=groups,
        processes_per_group=args.processes,
        cross_shard_fraction=args.cross,
        conflict_rate=args.conflicts,
        backend=args.backend,
        seed=args.seed,
        horizon=args.horizon,
    )


def _nemesis_invariants(args: argparse.Namespace):
    """Invariant factory from flags (``None`` = the default registry)."""
    canary = getattr(args, "canary", None)
    if not canary:
        return None
    from repro.nemesis import CanaryInvariant, default_invariants

    families = tuple(
        name.strip() for name in canary.split(",") if name.strip()
    )
    threshold = getattr(args, "canary_threshold", 1)

    def factory():
        return default_invariants() + [
            CanaryInvariant(families=families, threshold=threshold)
        ]

    return factory


def _print_nemesis_coverage(coverage) -> None:
    from repro.nemesis import ALL_SITES

    payload = coverage.to_dict()
    fired = ", ".join(payload["fired"]) or "none"
    print(
        f"fault-site coverage: {payload['percent']:.0f}% "
        f"({len(payload['fired'])}/{len(ALL_SITES)} sites; "
        f"families: {', '.join(coverage.families_covered()) or 'none'})"
    )
    print(f"fired sites: {fired}")


def _cmd_nemesis_search(args: argparse.Namespace) -> int:
    from repro.nemesis import nemesis_search
    from repro.sim.certify import EXIT_OK, EXIT_VIOLATION

    obs = _ObsSession(args)
    try:
        result = nemesis_search(
            _nemesis_spec(args),
            plans=args.plans,
            seed=args.search_seed,
            actions=args.actions,
            invariants=_nemesis_invariants(args),
            max_shrink_runs=args.max_shrink_runs,
            bundle_dir=args.bundle_dir,
            bundle_trace=not args.no_bundle_trace,
            trace=obs.bus,
            metrics_registry=obs.registry,
        )
    except CorrectnessViolation as error:
        print(f"violation: {error}", file=sys.stderr)
        return EXIT_VIOLATION
    finally:
        for note in obs.finish():
            print(note, file=sys.stderr)
    print(result.summary())
    _print_nemesis_coverage(result.coverage)
    print(f"total plan executions: {result.total_runs}")
    if args.min_coverage and result.coverage.percent < args.min_coverage:
        print(
            f"coverage {result.coverage.percent:.0f}% below required "
            f"{args.min_coverage:.0f}%",
            file=sys.stderr,
        )
        return EXIT_VIOLATION
    if args.expect_violation:
        if not result.found:
            print(
                "expected a violation but the search came up clean",
                file=sys.stderr,
            )
            return EXIT_VIOLATION
        return EXIT_OK
    return EXIT_VIOLATION if result.found else EXIT_OK


def _cmd_nemesis_run(args: argparse.Namespace) -> int:
    from repro.nemesis import FaultPlan, run_plan
    from repro.sim.certify import EXIT_OK, EXIT_USAGE, EXIT_VIOLATION

    with open(args.plan, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    # Accept either a bare plan file or a full bundle.
    if payload.get("format") == "repro/nemesis-bundle":
        payload = payload["plan"]
    try:
        plan = FaultPlan.from_dict(payload)
    except (KeyError, ValueError) as error:
        print(f"error: not a fault plan: {error}", file=sys.stderr)
        return EXIT_USAGE
    factory = _nemesis_invariants(args)
    obs = _ObsSession(args)
    try:
        result = run_plan(
            _nemesis_spec(args),
            plan,
            invariants=factory() if factory is not None else None,
            trace=obs.bus,
            metrics_registry=obs.registry,
        )
    finally:
        for note in obs.finish():
            print(note, file=sys.stderr)
    if result.violation is not None:
        print(f"violation: {result.violation.describe()}")
    else:
        print(
            f"clean run: certified="
            f"{bool(result.certification and result.certification.certified)}"
            f" audit={result.audit_clean} rounds={result.rounds}"
        )
    _print_nemesis_coverage(result.coverage)
    return EXIT_OK if result.clean else EXIT_VIOLATION


def _cmd_nemesis_replay(args: argparse.Namespace) -> int:
    from repro.nemesis import replay_bundle
    from repro.sim.certify import EXIT_OK, EXIT_VIOLATION

    obs = _ObsSession(args)
    try:
        report = replay_bundle(
            args.bundle,
            runs=args.runs,
            invariants=_nemesis_invariants(args),
            trace=obs.bus,
            metrics_registry=obs.registry,
        )
    finally:
        for note in obs.finish():
            print(note, file=sys.stderr)
    print(report.describe())
    if report.reproduced:
        print(f"reproduced: identical violation in {args.runs}/{args.runs} replays")
        return EXIT_OK
    print("NOT reproduced", file=sys.stderr)
    return EXIT_VIOLATION


def _cmd_explain(args: argparse.Namespace) -> int:
    records = read_trace(args.trace)
    if args.check:
        errors = validate_stream(records)
        if errors:
            for line in errors[:20]:
                print(f"invalid: {line}", file=sys.stderr)
            if len(errors) > 20:
                print(
                    f"... and {len(errors) - 20} more problems",
                    file=sys.stderr,
                )
            return 1
        print(f"trace OK: {len(records)} events")
        if args.target is None:
            return 0
    explanation = explain_trace(records, target=args.target)
    if explanation is None:
        who = args.target or "any process"
        print(
            f"no blocking/rejecting/aborting decision recorded for {who}",
            file=sys.stderr,
        )
        return 1
    print(explanation.render())
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    records = read_trace(args.trace)
    console = OpsConsole(interval=args.interval, out=sys.stdout)
    for record in records:
        console.handle(TraceEvent.from_dict(record))
    print(console.render())
    return 0


def _cmd_slow(args: argparse.Namespace) -> int:
    records = read_trace(args.trace)
    paths = critical_paths(records)
    if not paths:
        print("no process spans in trace", file=sys.stderr)
        return 1
    if args.process is not None:
        path = paths.get(args.process)
        if path is None:
            print(
                f"no process {args.process!r} in trace "
                f"({len(paths)} processes recorded)",
                file=sys.stderr,
            )
            return 1
    else:
        path = max(paths.values(), key=lambda p: (p.duration, p.process))
    dominant = path.dominant
    if dominant is None:
        print(
            f"{path.process}: zero-duration span, nothing to attribute",
            file=sys.stderr,
        )
        return 1
    rows = [
        {
            "phase": phase,
            "time": f"{time:.2f}",
            "share": f"{time / path.duration:.1%}"
            if path.duration > 0
            else "-",
            "slices": path.counts.get(phase, 0),
        }
        for phase, time in sorted(
            path.phases.items(), key=lambda item: -item[1]
        )
    ]
    print(
        format_table(
            rows,
            columns=["phase", "time", "share", "slices"],
            title=(
                f"{path.process}: {path.duration:.2f}t end-to-end "
                f"[{path.start:.2f}, {path.end:.2f}]"
            ),
        )
    )
    print(
        f"\ndominant phase: {dominant} "
        f"({path.phases[dominant]:.2f}t, "
        f"{path.phases[dominant] / path.duration:.0%} of end-to-end)"
    )
    if dominant in ("queue-wait", "graph-admission"):
        explanation = explain_trace(records, target=path.process)
        decision = (
            explanation.decision if explanation is not None else None
        )
        if decision is not None and not decision.waiting_for:
            # The *last* decision may blame nobody by name (e.g. an
            # in-flight edge-exchange barrier); fall back to the most
            # recent deferral that names concrete predecessors.
            for record in reversed(records):
                if (
                    record.get("kind") == "deferred"
                    and record.get("process") == path.process
                    and (record.get("data") or {}).get("waiting_for")
                ):
                    data = record.get("data") or {}
                    print(
                        f"waiting on: "
                        f"{', '.join(data['waiting_for'])} "
                        f"(rule {data.get('rule') or '?'}: "
                        f"{data.get('reason') or ''})"
                    )
                    break
            else:
                print(
                    f"waiting on: (no named blocker) "
                    f"(rule {decision.rule or '?'}: "
                    f"{decision.reason or ''})"
                )
        elif decision is not None:
            print(
                f"waiting on: {', '.join(decision.waiting_for)} "
                f"(rule {decision.rule or '?'}: {decision.reason or ''})"
            )
        if explanation is not None:
            for pair in explanation.conflict_pairs():
                print(f"  conflicting predecessor: {pair[0]} @ {pair[1]}")
    if args.fleet:
        table = attribution(paths)
        print()
        print(
            format_table(
                [
                    {
                        "phase": phase,
                        "total": f"{row['total']:.2f}",
                        "share": f"{row['share']:.1%}",
                        "p50": f"{row['p50']:.2f}",
                        "p95": f"{row['p95']:.2f}",
                        "p99": f"{row['p99']:.2f}",
                        "procs": int(row["processes"]),
                    }
                    for phase, row in table.items()
                ],
                columns=[
                    "phase", "total", "share", "p50", "p95", "p99", "procs",
                ],
                title=f"fleet attribution ({len(paths)} processes)",
            )
        )
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    with open(args.file, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    kind = payload.get("format")
    if kind == "repro/process":
        from repro.core.serialize import process_from_dict

        print(process_to_dot(process_from_dict(payload)))
        return 0
    if kind == "repro/schedule":
        print(schedule_to_dot(schedule_from_dict(payload)))
        return 0
    print(f"error: unknown format {kind!r}", file=sys.stderr)
    return 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Transactional process management (PODS'99 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="classify a schedule JSON file")
    check.add_argument("schedule", help="path to a serialized schedule")
    check.set_defaults(handler=_cmd_check)

    render = commands.add_parser("render", help="pretty-print a process")
    render.add_argument("process", help="path to a serialized process")
    render.add_argument(
        "--executions",
        action="store_true",
        help="also enumerate the valid executions",
    )
    render.set_defaults(handler=_cmd_render)

    workload = commands.add_parser(
        "workload", help="run a random workload under a discipline"
    )
    workload.add_argument("--processes", type=int, default=5)
    workload.add_argument("--conflicts", type=float, default=0.1)
    workload.add_argument("--failures", type=float, default=0.0)
    workload.add_argument("--seed", type=int, default=0)
    workload.add_argument(
        "--scheduler", choices=sorted(SCHEDULERS), default="pred"
    )
    workload.add_argument(
        "--order", choices=["strong", "weak"], default="strong"
    )
    workload.add_argument(
        "--backend",
        choices=["memory", "sqlite", "procpool"],
        default="memory",
        help="store backend behind every subsystem (sqlite: real "
        "fsync-on-commit files; procpool: an external worker process)",
    )
    workload.add_argument("--show-history", action="store_true")
    workload.add_argument(
        "--perf-counters",
        action="store_true",
        help="print the incremental scheduling core's perf counters "
        "(conflict-cache hits, index lookups, graph/topo maintenance, "
        "certification cost)",
    )
    _add_obs_arguments(workload)
    workload.set_defaults(handler=_cmd_workload)

    demo = commands.add_parser("demo", help="run the CIM demonstration")
    demo.add_argument(
        "--fail-test",
        action="store_true",
        help="make the test activity fail (§2.2's recovery scenario)",
    )
    demo.set_defaults(handler=_cmd_demo)

    dot = commands.add_parser(
        "dot", help="export a process/schedule JSON file as Graphviz DOT"
    )
    dot.add_argument("file", help="path to a serialized process or schedule")
    dot.set_defaults(handler=_cmd_dot)

    sweep = commands.add_parser(
        "sweep", help="compare disciplines over a conflict/failure grid"
    )
    sweep.add_argument(
        "--conflicts", type=float, nargs="+", default=[0.0, 0.1, 0.3]
    )
    sweep.add_argument("--failures", type=float, nargs="+", default=[0.0])
    sweep.add_argument(
        "--disciplines", nargs="*", choices=sorted(SCHEDULERS), default=None
    )
    sweep.add_argument("--processes", type=int, default=5)
    sweep.add_argument("--seed", type=int, default=7)
    sweep.add_argument("--order", choices=["strong", "weak"], default="strong")
    sweep.set_defaults(handler=_cmd_sweep)

    chaos = commands.add_parser(
        "chaos",
        help="seeded chaos runs through the resilience layer",
    )
    chaos.add_argument(
        "--mix",
        choices=["all", "aborts", "latency", "hangs", "crashes", "mixed"],
        default="all",
        help="named fault mix (default: the full standard sweep)",
    )
    chaos.add_argument("--processes", type=int, default=8)
    chaos.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    chaos.add_argument(
        "--abort-rate", type=float, default=None, help="override abort rate"
    )
    chaos.add_argument(
        "--latency-rate",
        type=float,
        default=None,
        help="override latency-spike rate",
    )
    chaos.add_argument(
        "--hang-rate", type=float, default=None, help="override hang rate"
    )
    chaos.add_argument(
        "--crash-rate",
        type=float,
        default=None,
        help="override crash-stop rate",
    )
    chaos.add_argument(
        "--timeout",
        type=float,
        default=3.0,
        help="per-invocation timeout (virtual time)",
    )
    chaos.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="retry budget per activity before ◁-degradation",
    )
    chaos.add_argument(
        "--breaker-threshold",
        type=int,
        default=2,
        help="consecutive failures before a breaker opens",
    )
    chaos.add_argument(
        "--breaker-reset",
        type=float,
        default=8.0,
        help="open-window length before the half-open probe",
    )
    chaos.add_argument(
        "--backend",
        choices=["memory", "sqlite", "procpool"],
        default="memory",
        help="store backend behind every subsystem; certification must "
        "be identical over every choice",
    )
    chaos.add_argument(
        "--no-certify",
        action="store_true",
        help="report instead of raising when a run fails certification",
    )
    _add_obs_arguments(chaos)
    chaos.set_defaults(handler=_cmd_chaos)

    crashpoints = commands.add_parser(
        "crashpoints",
        help="crash after every LSN (and every recovery step), certify",
    )
    crashpoints.add_argument("--processes", type=int, default=4)
    crashpoints.add_argument("--conflicts", type=float, default=0.08)
    crashpoints.add_argument("--seeds", type=int, nargs="+", default=[0])
    crashpoints.add_argument(
        "--abort-rate",
        type=float,
        default=0.25,
        help="pre-crash chaos abort injection rate",
    )
    crashpoints.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        help="auto-checkpoint the WAL every N appends (default: never)",
    )
    crashpoints.add_argument(
        "--stride",
        type=int,
        default=1,
        help="crash after every Nth LSN (1 = every single one)",
    )
    crashpoints.add_argument(
        "--recovery-stride",
        type=int,
        default=1,
        help=(
            "sweep second-crash-during-recovery at every Nth crash point "
            "(0 disables)"
        ),
    )
    crashpoints.add_argument(
        "--no-file-faults",
        action="store_true",
        help="skip the torn-tail / bit-flip FileWAL torture",
    )
    crashpoints.add_argument(
        "--backend",
        choices=["memory", "sqlite", "procpool"],
        default="memory",
        help="store backend behind every subsystem; sqlite adds the "
        "disk-fault torture, procpool one real-SIGKILL recovery run",
    )
    _add_obs_arguments(crashpoints)
    crashpoints.set_defaults(handler=_cmd_crashpoints)

    overload = commands.add_parser(
        "overload",
        help="open-loop overload sweep through bounded admission",
    )
    overload.add_argument("--processes", type=int, default=24)
    overload.add_argument("--conflicts", type=float, default=0.03)
    overload.add_argument(
        "--loads",
        type=float,
        nargs="+",
        default=None,
        help=(
            "offered loads (proc/t); default sweeps 0.5x-4x the "
            "estimated capacity"
        ),
    )
    overload.add_argument("--seeds", type=int, nargs="+", default=[0])
    overload.add_argument(
        "--max-active",
        type=int,
        default=4,
        help="concurrent admitted processes (admission bound)",
    )
    overload.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        help="admission queue depth bound",
    )
    overload.add_argument(
        "--queue-age",
        type=float,
        default=10.0,
        help="evict queued offers older than this (virtual time)",
    )
    overload.add_argument(
        "--shed-policy",
        choices=["reject-new", "shed-youngest-brec"],
        default="shed-youngest-brec",
    )
    overload.add_argument(
        "--no-certify",
        action="store_true",
        help="report instead of raising when a run fails certification",
    )
    _add_obs_arguments(overload)
    overload.set_defaults(handler=_cmd_overload)

    federation = commands.add_parser(
        "federation",
        help="sharded federation: scaling and shard-kill chaos sweeps",
    )
    federation.add_argument(
        "--shards", type=int, default=3, help="scheduler shards"
    )
    federation.add_argument(
        "--processes", type=int, default=2, help="processes per service group"
    )
    federation.add_argument(
        "--cross",
        type=float,
        default=0.35,
        help="fraction of processes with a cross-shard footprint",
    )
    federation.add_argument(
        "--conflicts",
        type=float,
        default=0.05,
        help="probability that two services conflict",
    )
    federation.add_argument(
        "--capacity", type=int, default=4, help="per-shard activity capacity"
    )
    federation.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    federation.add_argument(
        "--drop", type=float, default=0.0, help="message drop rate"
    )
    federation.add_argument(
        "--delay", type=float, default=0.0, help="message delay rate"
    )
    federation.add_argument(
        "--duplicate", type=float, default=0.0, help="message duplicate rate"
    )
    federation.add_argument(
        "--partitions",
        type=int,
        default=0,
        help="number of timed network-partition windows to inject",
    )
    federation.add_argument(
        "--kill",
        action="store_true",
        help="kill and recover every shard once (staggered)",
    )
    federation.add_argument(
        "--kill-start",
        type=float,
        default=4.0,
        help="virtual time of the first shard kill",
    )
    federation.add_argument(
        "--kill-spacing",
        type=float,
        default=8.0,
        help="virtual time between successive shard kills",
    )
    federation.add_argument(
        "--downtime",
        type=float,
        default=4.0,
        help="how long a killed shard stays down",
    )
    federation.add_argument(
        "--scaling",
        action="store_true",
        help="run the service-disjoint scaling sweep (1..--shards shards) "
        "instead of the chaos workload",
    )
    _add_obs_arguments(federation)
    federation.set_defaults(handler=_cmd_federation)

    nemesis = commands.add_parser(
        "nemesis",
        help="unified fault simulation: search, run and replay fault plans",
    )
    nemesis_commands = nemesis.add_subparsers(
        dest="nemesis_command", required=True
    )

    def _add_nemesis_spec_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--shards", type=int, default=2, help="scheduler shards"
        )
        sub.add_argument(
            "--groups",
            type=int,
            default=0,
            help="service groups (default: 2x shards)",
        )
        sub.add_argument(
            "--processes",
            type=int,
            default=2,
            help="processes per service group",
        )
        sub.add_argument(
            "--cross",
            type=float,
            default=0.25,
            help="fraction of processes with a cross-shard footprint",
        )
        sub.add_argument(
            "--conflicts",
            type=float,
            default=0.05,
            help="probability that two services conflict",
        )
        sub.add_argument(
            "--backend",
            choices=["memory", "sqlite", "procpool"],
            default="memory",
            help="subsystem backend under test",
        )
        sub.add_argument(
            "--seed", type=int, default=0, help="workload seed"
        )
        sub.add_argument(
            "--horizon",
            type=float,
            default=24.0,
            help="virtual-time horizon fault actions are drawn from",
        )
        sub.add_argument(
            "--canary",
            default=None,
            metavar="FAM1,FAM2",
            help="arm the canary invariant for these fault families "
            "(a deterministic fault-injection-of-the-injector fixture)",
        )
        sub.add_argument(
            "--canary-threshold",
            type=int,
            default=1,
            help="faults per family before the canary fires",
        )

    nemesis_search = nemesis_commands.add_parser(
        "search",
        help="explore seeded random fault plans; shrink + bundle on "
        "violation",
    )
    _add_nemesis_spec_arguments(nemesis_search)
    nemesis_search.add_argument(
        "--plans", type=int, default=20, help="fault plans to explore"
    )
    nemesis_search.add_argument(
        "--search-seed", type=int, default=0, help="search campaign seed"
    )
    nemesis_search.add_argument(
        "--actions", type=int, default=8, help="fault actions per plan"
    )
    nemesis_search.add_argument(
        "--max-shrink-runs",
        type=int,
        default=128,
        help="replay budget for the delta-debugging shrinker",
    )
    nemesis_search.add_argument(
        "--bundle-dir",
        default=None,
        metavar="DIR",
        help="write a repro bundle here when a violation is found",
    )
    nemesis_search.add_argument(
        "--no-bundle-trace",
        action="store_true",
        help="skip the trace/explain artefacts in the bundle",
    )
    nemesis_search.add_argument(
        "--expect-violation",
        action="store_true",
        help="invert success: exit 0 only when a violation IS found "
        "(for canary fixtures in CI)",
    )
    nemesis_search.add_argument(
        "--min-coverage",
        type=float,
        default=0.0,
        help="fail unless fault-site coverage reaches this percentage",
    )
    _add_obs_arguments(nemesis_search)
    nemesis_search.set_defaults(handler=_cmd_nemesis_search)

    nemesis_run = nemesis_commands.add_parser(
        "run", help="execute one fault plan JSON against the system"
    )
    nemesis_run.add_argument(
        "plan", help="path to a fault-plan JSON (or a bundle.json)"
    )
    _add_nemesis_spec_arguments(nemesis_run)
    _add_obs_arguments(nemesis_run)
    nemesis_run.set_defaults(handler=_cmd_nemesis_run)

    nemesis_replay = nemesis_commands.add_parser(
        "replay",
        help="re-execute a repro bundle; verify the identical violation",
    )
    nemesis_replay.add_argument(
        "bundle", help="bundle directory or bundle.json path"
    )
    nemesis_replay.add_argument(
        "--runs", type=int, default=2, help="number of replays"
    )
    nemesis_replay.add_argument(
        "--canary",
        default=None,
        metavar="FAM1,FAM2",
        help="arm the canary invariant (must match the bundle's search)",
    )
    nemesis_replay.add_argument(
        "--canary-threshold", type=int, default=1, help=argparse.SUPPRESS
    )
    _add_obs_arguments(nemesis_replay)
    nemesis_replay.set_defaults(handler=_cmd_nemesis_replay)

    explain = commands.add_parser(
        "explain",
        help="explain a scheduling decision from an exported trace",
    )
    explain.add_argument(
        "trace", help="path to a JSONL trace (from a --trace run)"
    )
    explain.add_argument(
        "target",
        nargs="?",
        default=None,
        help="process or activity id (default: first blocked process)",
    )
    explain.add_argument(
        "--check",
        action="store_true",
        help="validate the trace against the event schema first",
    )
    explain.set_defaults(handler=_cmd_explain)

    top = commands.add_parser(
        "top",
        help="replay a trace through the live ops console",
    )
    top.add_argument(
        "trace", help="path to a JSONL trace (from a --trace run)"
    )
    top.add_argument(
        "--interval",
        type=float,
        default=5.0,
        help="virtual-time period between snapshots",
    )
    top.set_defaults(handler=_cmd_top)

    slow = commands.add_parser(
        "slow",
        help="attribute a process's commit latency to phases",
    )
    slow.add_argument(
        "trace", help="path to a JSONL trace (from a --trace run)"
    )
    slow.add_argument(
        "process",
        nargs="?",
        default=None,
        help="process id (default: the slowest recorded process)",
    )
    slow.add_argument(
        "--fleet",
        action="store_true",
        help="also print the fleet-wide per-phase attribution table",
    )
    slow.set_defaults(handler=_cmd_slow)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
