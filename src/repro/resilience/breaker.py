"""Per-service circuit breakers.

A :class:`CircuitBreaker` is the classic closed / open / half-open
state machine over *virtual* time:

* **closed** — calls flow; consecutive failures are counted and reset
  on success.  Reaching ``failure_threshold`` trips the breaker.
* **open** — calls are refused without touching the subsystem; after
  ``reset_timeout`` virtual time the next request is admitted as a
  probe (the breaker moves to half-open).
* **half-open** — probes flow; ``success_threshold`` consecutive
  successes close the breaker (a *recovery*), any failure re-opens it.

The scheduler consumes breaker state through its degradation hook: an
open breaker on a preferred activity's service makes the PRED scheduler
switch to the next ◁-alternative instead of burning the retry budget
against a subsystem that is known to be down.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

__all__ = ["BreakerState", "BreakerConfig", "CircuitBreaker", "BreakerBoard"]


class BreakerState(enum.Enum):
    """Lifecycle of one circuit breaker."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs shared by the breakers of one board."""

    #: Consecutive failures that trip a closed breaker.
    failure_threshold: int = 3
    #: Virtual time an open breaker refuses calls before probing.
    reset_timeout: float = 10.0
    #: Consecutive half-open successes that close the breaker.
    success_threshold: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be at least 1, "
                f"got {self.failure_threshold}"
            )
        if self.reset_timeout < 0:
            raise ValueError(
                f"reset_timeout must be non-negative, got {self.reset_timeout}"
            )
        if self.success_threshold < 1:
            raise ValueError(
                f"success_threshold must be at least 1, "
                f"got {self.success_threshold}"
            )


class CircuitBreaker:
    """Failure-counting state machine guarding one service."""

    def __init__(self, service: str, config: Optional[BreakerConfig] = None):
        self.service = service
        self.config = config or BreakerConfig()
        self.state = BreakerState.CLOSED
        self._failures = 0
        self._half_open_successes = 0
        #: Virtual time at which an open breaker admits a probe.
        self.reopen_at = 0.0
        #: Lifetime counters (surfaced by the chaos harness).
        self.trips = 0
        self.recoveries = 0
        self.fast_fails = 0

    # -- queries ---------------------------------------------------------------

    def allow(self, now: float) -> bool:
        """May a call to the service proceed at virtual time ``now``?

        Moves an expired open breaker to half-open (the caller's request
        becomes the probe).  Counts refused calls in ``fast_fails``.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now >= self.reopen_at:
                self.state = BreakerState.HALF_OPEN
                self._half_open_successes = 0
                return True
            self.fast_fails += 1
            return False
        return True  # HALF_OPEN: probes flow (sequential world)

    # -- outcome reports -----------------------------------------------------

    def record_success(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._half_open_successes += 1
            if self._half_open_successes >= self.config.success_threshold:
                self.state = BreakerState.CLOSED
                self._failures = 0
                self.recoveries += 1
            return
        self._failures = 0

    def record_failure(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._trip(now)
            return
        self._failures += 1
        if (
            self.state is BreakerState.CLOSED
            and self._failures >= self.config.failure_threshold
        ):
            self._trip(now)

    def _trip(self, now: float) -> None:
        self.state = BreakerState.OPEN
        self.reopen_at = now + self.config.reset_timeout
        self._failures = 0
        self._half_open_successes = 0
        self.trips += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker({self.service!r}, {self.state.value}, "
            f"trips={self.trips})"
        )


class BreakerBoard:
    """Lazily-created breaker per service, with aggregate counters."""

    def __init__(self, config: Optional[BreakerConfig] = None) -> None:
        self.config = config or BreakerConfig()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def get(self, service: str) -> CircuitBreaker:
        breaker = self._breakers.get(service)
        if breaker is None:
            breaker = CircuitBreaker(service, self.config)
            self._breakers[service] = breaker
        return breaker

    def __iter__(self) -> Iterator[CircuitBreaker]:
        return iter(self._breakers.values())

    def __len__(self) -> int:
        return len(self._breakers)

    @property
    def trips(self) -> int:
        return sum(breaker.trips for breaker in self._breakers.values())

    @property
    def recoveries(self) -> int:
        return sum(breaker.recoveries for breaker in self._breakers.values())

    @property
    def fast_fails(self) -> int:
        return sum(breaker.fast_fails for breaker in self._breakers.values())

    def open_breakers(self) -> Iterator[CircuitBreaker]:
        for breaker in self._breakers.values():
            if breaker.state is BreakerState.OPEN:
                yield breaker

    def states(self) -> Dict[str, str]:
        """service -> state value, for diagnostics and tests."""
        return {
            service: breaker.state.value
            for service, breaker in self._breakers.items()
        }
