"""Invocation policies: timeouts and bounded retries with backoff.

A :class:`RetryPolicy` bounds how long one service invocation may take
(``timeout``, in virtual time) and how retries are paced: exponential
backoff with a cap plus *deterministic* seeded jitter.  Jitter is
derived by hashing ``(seed, service, attempt)`` rather than drawn from
a shared RNG, so a chaos run replayed with the same seed produces the
same virtual-time trajectory regardless of scheduling order — the
discrete-event simulation stays reproducible.

``max_attempts`` is the escalation point, not a hard stop: the paper's
guaranteed-termination property requires retriable activities to
eventually commit, so when the budget is exhausted the resilience layer
degrades to a ◁-alternative where one exists and otherwise keeps
retrying at the capped delay (the injected-failure policies bound
consecutive failures, so this always terminates).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["RetryPolicy", "deterministic_jitter"]


def deterministic_jitter(seed: int, service: str, attempt: int) -> float:
    """A reproducible uniform draw in ``[0, 1)`` for one retry slot.

    Stable across processes and Python versions (unlike ``hash``),
    because it goes through SHA-256 of the identifying triple.
    """
    digest = hashlib.sha256(
        f"{seed}:{service}:{attempt}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-service invocation budget: timeout plus paced retries."""

    #: Virtual time the invoker waits before abandoning a call.
    timeout: float = 8.0
    #: Retry budget before escalating (degrade if a ◁-alternative
    #: exists; otherwise keep retrying at the capped delay).
    max_attempts: int = 4
    #: Delay before the first retry.
    base_delay: float = 0.5
    #: Exponential growth factor per attempt.
    multiplier: float = 2.0
    #: Ceiling on the computed delay (before jitter).
    max_delay: float = 16.0
    #: Symmetric jitter as a fraction of the computed delay.
    jitter: float = 0.2
    #: Seed for the deterministic jitter.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_delay(self, service: str, attempt: int) -> float:
        """Virtual-time delay before retry number ``attempt``.

        ``attempt`` is the 1-based attempt that just failed; the delay
        paces the next one.  Deterministic given (seed, service,
        attempt).
        """
        exponential = self.base_delay * self.multiplier ** max(0, attempt - 1)
        delay = min(exponential, self.max_delay)
        if self.jitter and delay > 0:
            fraction = deterministic_jitter(self.seed, service, attempt)
            delay += delay * self.jitter * (2.0 * fraction - 1.0)
        return max(delay, 0.0)

    def exhausted(self, attempt: int) -> bool:
        """Whether ``attempt`` failures used up the retry budget."""
        return attempt >= self.max_attempts
