"""The resilience manager: the scheduler's one-stop failure-handling API.

Combines the invocation policies (:mod:`repro.resilience.policy`) and
the per-service circuit breakers (:mod:`repro.resilience.breaker`) into
the object :class:`~repro.core.scheduler.TransactionalProcessScheduler`
consults around every subsystem invocation:

* :meth:`timeout_for` — the invoker's patience, passed down to
  :meth:`repro.subsystems.subsystem.Subsystem.invoke`;
* :meth:`breaker_allows` — the degradation hook's trigger: an open
  breaker on a preferred activity's service means *switch to the next
  ◁-alternative* instead of burning retries;
* :meth:`on_success` / :meth:`on_failure` — outcome reports that feed
  the breakers and pace retries with backoff (per-process
  ``retry-not-before`` deadlines in virtual time);
* :meth:`ready` / :meth:`next_deadline` — the waiting interface.  The
  plain synchronous scheduler advances the manager's own clock across
  stalls (:meth:`advance_to_next_deadline`); the discrete-event runner
  instead attaches its queue clock (:meth:`attach_clock`) and turns the
  deadlines into wake-up events, so both drivers share one semantics.

Everything is measured in virtual time and the jitter is deterministic,
so resilience behaviour is replayable given the seeds.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.errors import ServiceTimeout, SubsystemUnavailable
from repro.resilience.breaker import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
)
from repro.resilience.policy import RetryPolicy

__all__ = ["ResilienceManager"]


class _OwnedClock:
    """Minimal forward-only clock for manager-driven (non-DES) runs.

    Duck-typed compatible with :class:`repro.sim.clock.VirtualClock`
    (kept separate to avoid a core → sim import cycle).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, time: float) -> None:
        if time < self._now:
            raise ValueError(
                f"virtual time cannot move backwards: {time} < {self._now}"
            )
        self._now = time


class ResilienceManager:
    """Timeouts, retry pacing and circuit breaking for one scheduler."""

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        per_service: Optional[Mapping[str, RetryPolicy]] = None,
        breaker: Optional[BreakerConfig] = None,
        clock=None,
        protected: Optional[Iterable[str]] = None,
    ) -> None:
        self.policy = policy or RetryPolicy()
        self._per_service: Dict[str, RetryPolicy] = dict(per_service or {})
        self.breakers = BreakerBoard(breaker)
        self.clock = clock if clock is not None else _OwnedClock()
        #: When the manager owns its clock it may advance it across
        #: scheduler stalls; an attached (simulation) clock is advanced
        #: by the event queue only.
        self.owns_clock = clock is None
        #: Restrict breaker protection to these services (``None`` =
        #: all).  Retry pacing and timeouts always apply.
        self._protected = frozenset(protected) if protected is not None else None
        #: Per-process virtual time before which no retry is dispatched.
        self._retry_at: Dict[str, float] = {}
        self.counters: Dict[str, int] = {
            "retries": 0,
            "timeouts": 0,
            "unavailable": 0,
            "degradations": 0,
            "retry_budget_exhausted": 0,
        }
        #: Optional structured trace bus (wired by the scheduler's
        #: ``attach_trace``); breaker transitions, retry backoff and
        #: fast-fails are emitted on it.
        self.trace = None

    # -- tracing --------------------------------------------------------------

    _STATE_EVENTS = {
        BreakerState.OPEN: "breaker_open",
        BreakerState.HALF_OPEN: "breaker_half_open",
        BreakerState.CLOSED: "breaker_closed",
    }

    def _emit_transition(
        self, service: str, before: BreakerState, breaker
    ) -> None:
        """Emit a breaker state-transition event (traced runs only)."""
        after = breaker.state
        if after is not before:
            self.trace.emit(
                self._STATE_EVENTS[after],
                service=service,
                previous=before.value,
                reopen_at=getattr(breaker, "reopen_at", 0.0),
            )

    @property
    def _tracing(self) -> bool:
        trace = self.trace
        return trace is not None and trace.enabled

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now

    def attach_clock(self, clock) -> None:
        """Share an externally-driven clock (the DES runner's queue)."""
        self.clock = clock
        self.owns_clock = False

    # -- policy lookup --------------------------------------------------------

    def policy_for(self, service: str) -> RetryPolicy:
        return self._per_service.get(service, self.policy)

    def timeout_for(self, service: str) -> float:
        return self.policy_for(service).timeout

    # -- admission ------------------------------------------------------------

    def ready(self, process_id: str) -> bool:
        """Is the process past its retry-not-before deadline?"""
        return self._retry_at.get(process_id, 0.0) <= self.now

    def breaker_allows(self, service: str) -> bool:
        """Closed/half-open breaker (or unprotected service) → proceed."""
        if self._protected is not None and service not in self._protected:
            return True
        breaker = self.breakers.get(service)
        if not self._tracing:
            return breaker.allow(self.now)
        before = breaker.state
        allowed = breaker.allow(self.now)
        self._emit_transition(service, before, breaker)
        return allowed

    def note_fast_fail(self, process_id: str, service: str) -> None:
        """An open breaker refused the call: wait out the open window."""
        breaker = self.breakers.get(service)
        self._retry_at[process_id] = max(
            self._retry_at.get(process_id, 0.0), breaker.reopen_at
        )
        if self._tracing:
            self.trace.emit(
                "fast_fail",
                process=process_id,
                service=service,
                reopen_at=breaker.reopen_at,
            )

    # -- outcome reports -----------------------------------------------------

    def on_success(self, process_id: str, service: str) -> None:
        breaker = self.breakers.get(service)
        if self._tracing:
            before = breaker.state
            breaker.record_success(self.now)
            self._emit_transition(service, before, breaker)
        else:
            breaker.record_success(self.now)
        self._retry_at.pop(process_id, None)

    def on_failure(
        self,
        process_id: str,
        service: str,
        attempt: int,
        error: Exception,
        will_retry: bool,
    ) -> None:
        """Feed a failed invocation into breakers and retry pacing.

        ``attempt`` is the 1-based attempt that failed; ``will_retry``
        says whether the activity repeats (retriable activities and
        compensations) rather than switching paths or aborting.
        """
        now = self.now
        tracing = self._tracing
        breaker = self.breakers.get(service)
        before = breaker.state if tracing else None
        breaker.record_failure(now)
        if tracing:
            self._emit_transition(service, before, breaker)
        elapsed = getattr(error, "elapsed", 0.0)
        if isinstance(error, ServiceTimeout):
            self.counters["timeouts"] += 1
        elif isinstance(error, SubsystemUnavailable):
            self.counters["unavailable"] += 1
        if will_retry:
            self.counters["retries"] += 1
            policy = self.policy_for(service)
            if policy.exhausted(attempt):
                self.counters["retry_budget_exhausted"] += 1
            delay = policy.backoff_delay(service, attempt)
            self._retry_at[process_id] = now + elapsed + delay
            if tracing:
                self.trace.emit(
                    "retry",
                    process=process_id,
                    service=service,
                    attempt=attempt,
                    delay=delay,
                    not_before=self._retry_at[process_id],
                )
        elif elapsed:
            # Even a path switch pays for the time burnt waiting.
            self._retry_at[process_id] = now + elapsed

    def on_unavailable(
        self,
        process_id: str,
        service: str,
        outage: SubsystemUnavailable,
    ) -> None:
        """A crash-stopped subsystem refused the call.

        Unlike a failed invocation this is *transient*: the activity is
        not failed, the process just waits out the outage (the scheduler
        may degrade to a ◁-alternative instead).  The breaker still
        records the refusal so sibling processes fast-fail or degrade
        without touching the downed subsystem at all.
        """
        now = self.now
        breaker = self.breakers.get(service)
        if self._tracing:
            before = breaker.state
            breaker.record_failure(now)
            self._emit_transition(service, before, breaker)
        else:
            breaker.record_failure(now)
        self.counters["unavailable"] += 1
        self._retry_at[process_id] = max(
            self._retry_at.get(process_id, 0.0),
            now + max(outage.retry_after, 0.0),
        )

    def note_degradation(self, process_id: str, service: str) -> None:
        """The scheduler took a ◁-alternative instead of invoking."""
        self.counters["degradations"] += 1
        self._retry_at.pop(process_id, None)

    # -- waiting --------------------------------------------------------------

    def next_deadline(self) -> Optional[float]:
        """Earliest future time at which blocked work becomes eligible.

        Considers retry-not-before deadlines and open breakers' reopen
        times; ``None`` when nothing is waiting on the clock.
        """
        now = self.now
        deadlines = [t for t in self._retry_at.values() if t > now]
        deadlines.extend(
            breaker.reopen_at
            for breaker in self.breakers.open_breakers()
            if breaker.reopen_at > now
        )
        return min(deadlines) if deadlines else None

    def advance_to_next_deadline(self) -> bool:
        """Jump an owned clock to the next deadline; ``True`` if moved.

        The synchronous scheduler calls this when no instance can
        progress: time passes, backoff windows close, open breakers
        reach their probe time.  A no-op (``False``) when the clock is
        externally driven or nothing is waiting.
        """
        if not self.owns_clock:
            return False
        deadline = self.next_deadline()
        if deadline is None:
            return False
        self.clock.advance_to(deadline)
        return True

    # -- reporting ------------------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        """Counters plus breaker aggregates, for metrics rows."""
        snapshot = dict(self.counters)
        snapshot["breaker_trips"] = self.breakers.trips
        snapshot["breaker_recoveries"] = self.breakers.recoveries
        snapshot["breaker_fast_fails"] = self.breakers.fast_fails
        return snapshot
