"""Resilience layer: timeouts, backoff, circuit breakers, degradation.

The paper's flex process model already encodes graceful degradation —
the preference order ◁ names the alternative execution paths to take
when a preferred activity cannot commit.  This package turns that
static order into an operational degradation policy under real failure
classes (latency spikes, hangs, crash-stopped subsystems):

* :mod:`repro.resilience.policy` — per-service invocation budgets:
  timeouts and bounded retries with exponential backoff and
  deterministic seeded jitter (virtual-clock based, replayable);
* :mod:`repro.resilience.breaker` — per-service closed/open/half-open
  circuit breakers;
* :mod:`repro.resilience.manager` — the facade the scheduler consults:
  an open breaker on a preferred activity's service triggers a
  proactive switch to the next ◁-alternative, preserving guaranteed
  termination without burning the retry budget.

The chaos harness (:mod:`repro.sim.chaos`) sweeps fault mixes over
workloads and certifies that every produced history stays PRED.
"""

from repro.resilience.breaker import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)
from repro.resilience.manager import ResilienceManager
from repro.resilience.policy import RetryPolicy, deterministic_jitter

__all__ = [
    "BreakerBoard",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "ResilienceManager",
    "RetryPolicy",
    "deterministic_jitter",
]
