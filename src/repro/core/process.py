"""The process model (paper §3.1, Definition 5).

A process ``P = (A, ≪, ◁)`` consists of

* a set of activities ``A`` drawn from the global service alphabet,
* a *precedence order* ``≪`` — an irreflexive, transitive, acyclic
  partial order over ``A`` with a temporal semantics: ``a ≪ b`` means
  ``b`` may only start after ``a`` committed, and
* a *preference order* ``◁`` defined over connectors (direct-precedence
  edges) leaving the same activity, establishing *alternative execution
  paths*: if ``(h ≪ j) ◁ (h ≪ k)`` then ``k`` may only execute after
  ``j`` failed, or after ``j`` executed and was compensated together
  with everything that succeeded it.

We represent ``≪`` by its direct edges (the transitive reduction the
builder supplies) and expose the transitive closure through
:meth:`Process.precedes`.  The preference order is represented per
source activity as an ordered tuple of *alternative branches*; Def. 5's
requirement that transitively associated connectors be totally ordered
is enforced by construction (a tuple is a total order).

Successors of an activity fall in two classes:

* **alternative successors** — listed in the activity's preference
  tuple; exactly one of them executes in any single run;
* **unconditional successors** — not listed in any preference tuple;
  they follow whenever their predecessor commits (parallel AND-splits,
  §3.6 "unrestricted parallelism").

The :class:`Process` class is a *template*: pure structure, no runtime
state.  Runtime state lives in :class:`repro.core.instance.ProcessInstance`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.activity import ActivityDef, ActivityKind
from repro.errors import InvalidProcessError, UnknownActivityError

__all__ = ["Process", "ProcessBuilder"]


class Process:
    """An immutable process template ``P = (A, ≪, ◁)``.

    Instances are normally created through :class:`ProcessBuilder` or
    the :mod:`repro.core.flex` DSL; the constructor validates the
    Definition-5 requirements and pre-computes the closure structures
    used by checkers and the scheduler.

    Parameters
    ----------
    process_id:
        Unique identifier (the ``i`` in ``P_i``).
    activities:
        The activity declarations forming ``A``.
    precedence:
        Direct edges of ``≪`` as ``(before, after)`` activity-name pairs.
    preference:
        Mapping from an activity name to the ordered tuple of its
        alternative successor names (highest preference first) — the
        representation of ``◁``.
    validate:
        When ``False``, skip Definition-5 validation.  Only used by
        tests that construct deliberately malformed processes.
    """

    def __init__(
        self,
        process_id: str,
        activities: Iterable[ActivityDef],
        precedence: Iterable[Tuple[str, str]] = (),
        preference: Optional[Mapping[str, Sequence[str]]] = None,
        validate: bool = True,
    ) -> None:
        self.process_id = process_id
        self._activities: Dict[str, ActivityDef] = {}
        for definition in activities:
            if definition.name in self._activities:
                raise InvalidProcessError(
                    f"duplicate activity {definition.name!r} in process "
                    f"{process_id!r}"
                )
            self._activities[definition.name] = definition

        self._edges: Set[Tuple[str, str]] = set()
        for before, after in precedence:
            self._require(before)
            self._require(after)
            if before == after:
                raise InvalidProcessError(
                    f"precedence order must be irreflexive; got "
                    f"{before!r} ≪ {before!r} in process {process_id!r}"
                )
            self._edges.add((before, after))

        self._preference: Dict[str, Tuple[str, ...]] = {}
        for source, branches in (preference or {}).items():
            self._require(source)
            ordered = tuple(branches)
            if len(set(ordered)) != len(ordered):
                raise InvalidProcessError(
                    f"preference order of {source!r} lists a successor twice"
                )
            for branch in ordered:
                self._require(branch)
                if (source, branch) not in self._edges:
                    raise InvalidProcessError(
                        f"preference order of {source!r} refers to "
                        f"{branch!r}, but {source!r} ≪ {branch!r} is not a "
                        f"connector of process {process_id!r}"
                    )
            if len(ordered) < 2:
                raise InvalidProcessError(
                    f"preference order of {source!r} must order at least two "
                    f"alternative connectors"
                )
            self._preference[source] = ordered

        self._successors: Dict[str, Tuple[str, ...]] = {}
        self._predecessors: Dict[str, Tuple[str, ...]] = {}
        self._build_adjacency()
        self._descendants_cache: Dict[str, FrozenSet[str]] = {}

        if validate:
            self._check_acyclic()
            self._check_alternative_exclusivity()

    # -- construction helpers ------------------------------------------------

    def _require(self, name: str) -> None:
        if name not in self._activities:
            raise UnknownActivityError(
                f"activity {name!r} is not declared in process "
                f"{self.process_id!r}"
            )

    def _build_adjacency(self) -> None:
        succ: Dict[str, List[str]] = {name: [] for name in self._activities}
        pred: Dict[str, List[str]] = {name: [] for name in self._activities}
        for before, after in sorted(self._edges):
            succ[before].append(after)
            pred[after].append(before)
        self._successors = {name: tuple(values) for name, values in succ.items()}
        self._predecessors = {name: tuple(values) for name, values in pred.items()}

    def _check_acyclic(self) -> None:
        order = self._topological_order()
        if len(order) != len(self._activities):
            raise InvalidProcessError(
                f"precedence order of process {self.process_id!r} is cyclic"
            )

    def _check_alternative_exclusivity(self) -> None:
        """Alternative branches must not be reachable from one another.

        If ``j`` and ``k`` are alternative successors of ``h``, then a
        path ``j ⇝ k`` would make ``k`` both an alternative to ``j`` and
        a consequence of it — an inconsistent specification.
        """
        for source, branches in self._preference.items():
            for index, branch in enumerate(branches):
                for other in branches[index + 1 :]:
                    if self.precedes(branch, other) or self.precedes(other, branch):
                        raise InvalidProcessError(
                            f"alternative successors {branch!r} and {other!r} "
                            f"of {source!r} must be mutually unreachable in "
                            f"process {self.process_id!r}"
                        )

    def _topological_order(self) -> List[str]:
        in_degree = {name: len(self._predecessors[name]) for name in self._activities}
        frontier = sorted(name for name, degree in in_degree.items() if degree == 0)
        order: List[str] = []
        while frontier:
            current = frontier.pop(0)
            order.append(current)
            for successor in self._successors[current]:
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    frontier.append(successor)
            frontier.sort()
        return order

    # -- basic queries -------------------------------------------------------

    @property
    def activity_names(self) -> Tuple[str, ...]:
        """All activity names in deterministic (topological) order."""
        return tuple(self._topological_order())

    def __len__(self) -> int:
        return len(self._activities)

    def __contains__(self, name: str) -> bool:
        return name in self._activities

    def activity(self, name: str) -> ActivityDef:
        """Look up an activity declaration by name."""
        try:
            return self._activities[name]
        except KeyError:
            raise UnknownActivityError(
                f"activity {name!r} is not declared in process "
                f"{self.process_id!r}"
            ) from None

    def activities(self) -> Iterator[ActivityDef]:
        """Iterate activity declarations in topological order."""
        for name in self._topological_order():
            yield self._activities[name]

    def direct_successors(self, name: str) -> Tuple[str, ...]:
        self._require(name)
        return self._successors[name]

    def direct_predecessors(self, name: str) -> Tuple[str, ...]:
        self._require(name)
        return self._predecessors[name]

    def edges(self) -> Iterator[Tuple[str, str]]:
        """Iterate the direct connectors of ``≪`` deterministically."""
        return iter(sorted(self._edges))

    def alternatives(self, name: str) -> Tuple[str, ...]:
        """Ordered alternative successors of ``name`` (may be empty)."""
        self._require(name)
        return self._preference.get(name, ())

    def preference_sources(self) -> Iterator[str]:
        """Activities that carry a preference order (choice points)."""
        return iter(sorted(self._preference))

    def unconditional_successors(self, name: str) -> Tuple[str, ...]:
        """Direct successors that are not alternative branches."""
        branches = set(self.alternatives(name))
        return tuple(
            successor
            for successor in self.direct_successors(name)
            if successor not in branches
        )

    def is_alternative_branch(self, source: str, branch: str) -> bool:
        return branch in self.alternatives(source)

    def roots(self) -> Tuple[str, ...]:
        """Activities with no predecessor (the process entry points)."""
        return tuple(
            name
            for name in self._topological_order()
            if not self._predecessors[name]
        )

    def sinks(self) -> Tuple[str, ...]:
        """Activities with no successor (the process exit points)."""
        return tuple(
            name
            for name in self._topological_order()
            if not self._successors[name]
        )

    # -- order queries ---------------------------------------------------

    def precedes(self, before: str, after: str) -> bool:
        """``True`` iff ``before ≪ after`` in the transitive closure."""
        self._require(before)
        self._require(after)
        return after in self.descendants(before)

    def descendants(self, name: str) -> FrozenSet[str]:
        """All activities reachable from ``name`` (exclusive)."""
        self._require(name)
        cached = self._descendants_cache.get(name)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        stack = list(self._successors[name])
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._successors[current])
        result = frozenset(seen)
        self._descendants_cache[name] = result
        return result

    def ancestors(self, name: str) -> FrozenSet[str]:
        """All activities from which ``name`` is reachable (exclusive)."""
        self._require(name)
        seen: Set[str] = set()
        stack = list(self._predecessors[name])
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._predecessors[current])
        return frozenset(seen)

    def unordered(self, left: str, right: str) -> bool:
        """``True`` iff the two activities are incomparable under ``≪``."""
        return (
            left != right
            and not self.precedes(left, right)
            and not self.precedes(right, left)
        )

    # -- derived structure -----------------------------------------------

    def kind(self, name: str) -> ActivityKind:
        return self.activity(name).kind

    def non_compensatable_names(self) -> Tuple[str, ...]:
        """Pivot and retriable activities in topological order."""
        return tuple(
            name
            for name in self._topological_order()
            if not self._activities[name].kind.is_compensatable
        )

    def services(self) -> FrozenSet[str]:
        """The set of (forward) services invoked by this process."""
        return frozenset(
            definition.service  # type: ignore[misc]
            for definition in self._activities.values()
        )

    def branch_activities(self, source: str, branch: str) -> FrozenSet[str]:
        """Activities belonging to the alternative ``branch`` of ``source``.

        The branch consists of the branch head and everything reachable
        from it that is not reachable from a different alternative of
        the same choice point — used by recovery to decide what must be
        compensated when switching alternatives.
        """
        if branch not in self.alternatives(source):
            raise InvalidProcessError(
                f"{branch!r} is not an alternative successor of {source!r}"
            )
        return frozenset({branch} | self.descendants(branch))

    def renamed(self, process_id: str) -> "Process":
        """A copy of this template under a different process id.

        Schedulers use this to run several instances of one template
        concurrently: each instance gets its own process id so schedule
        events stay unambiguous.
        """
        if process_id == self.process_id:
            return self
        return Process(
            process_id,
            self._activities.values(),
            self._edges,
            self._preference,
            validate=False,  # structure already validated once
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Process({self.process_id!r}, |A|={len(self._activities)}, "
            f"|≪|={len(self._edges)}, choice_points={len(self._preference)})"
        )


class ProcessBuilder:
    """Fluent builder for :class:`Process` templates.

    Example
    -------
    The paper's process ``P_1`` (Figure 2)::

        p1 = (
            ProcessBuilder("P1")
            .compensatable("a1")
            .pivot("a2")
            .compensatable("a3")
            .pivot("a4")
            .retriable("a5")
            .retriable("a6")
            .precede("a1", "a2")
            .precede("a2", "a3")
            .precede("a3", "a4")
            .precede("a2", "a5")
            .precede("a5", "a6")
            .prefer("a2", ["a3", "a5"])
            .build()
        )
    """

    def __init__(self, process_id: str) -> None:
        self._process_id = process_id
        self._activities: List[ActivityDef] = []
        self._names: Set[str] = set()
        self._edges: List[Tuple[str, str]] = []
        self._preference: Dict[str, Sequence[str]] = {}

    def add(self, definition: ActivityDef) -> "ProcessBuilder":
        """Add a fully specified activity declaration."""
        if definition.name in self._names:
            raise InvalidProcessError(
                f"duplicate activity {definition.name!r} in builder for "
                f"{self._process_id!r}"
            )
        self._names.add(definition.name)
        self._activities.append(definition)
        return self

    def _add_kind(self, name: str, kind: ActivityKind, **kwargs) -> "ProcessBuilder":
        return self.add(ActivityDef(name=name, kind=kind, **kwargs))

    def compensatable(self, name: str, **kwargs) -> "ProcessBuilder":
        """Add a compensatable activity (``a^c``)."""
        return self._add_kind(name, ActivityKind.COMPENSATABLE, **kwargs)

    def pivot(self, name: str, **kwargs) -> "ProcessBuilder":
        """Add a pivot activity (``a^p``)."""
        return self._add_kind(name, ActivityKind.PIVOT, **kwargs)

    def retriable(self, name: str, **kwargs) -> "ProcessBuilder":
        """Add a retriable activity (``a^r``)."""
        return self._add_kind(name, ActivityKind.RETRIABLE, **kwargs)

    def precede(self, before: str, after: str) -> "ProcessBuilder":
        """Declare the connector ``before ≪ after``."""
        self._edges.append((before, after))
        return self

    def chain(self, *names: str) -> "ProcessBuilder":
        """Declare a chain ``n1 ≪ n2 ≪ … ≪ nk`` of connectors."""
        for before, after in zip(names, names[1:]):
            self.precede(before, after)
        return self

    def prefer(self, source: str, branches: Sequence[str]) -> "ProcessBuilder":
        """Declare the preference order ``◁`` among ``source``'s connectors.

        ``branches`` lists the alternative successors highest preference
        first: ``prefer("a2", ["a3", "a5"])`` encodes
        ``(a2 ≪ a3) ◁ (a2 ≪ a5)``.
        """
        self._preference[source] = list(branches)
        return self

    def build(self, validate: bool = True) -> Process:
        """Construct and validate the immutable :class:`Process`."""
        return Process(
            self._process_id,
            self._activities,
            self._edges,
            self._preference,
            validate=validate,
        )
