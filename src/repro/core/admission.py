"""Admission control for the transactional process scheduler.

The paper's guaranteed-termination property (Definition 5) cuts both
ways: every *admitted* process must be driven to a state in ``C(P)``,
so once a process passes its state-determining pivot it is in ``F-REC``
and may only move forward.  Under overload the only safe control point
is therefore the scheduler's *front door* — and the only safe victims
of load shedding are processes still in ``B-REC`` (no pivot committed),
whose cancellation is pure backward recovery.  This module holds the
pure data side of that policy:

* :class:`AdmissionConfig` — bounds on concurrently active processes
  and on the admission queue (depth, age), the shedding policy, and the
  breaker-driven backpressure threshold;
* :class:`WatchdogConfig` — starvation/livelock detection knobs;
* :class:`AdmissionDecision` — the scheduler's answer to one offer;
* :class:`QueuedArrival` — one process parked in the admission queue
  (it has **no** scheduler state yet: no WAL record, no locks, no
  instance — rejecting it later is free by construction).

The mechanics (queueing, shedding through the group-abort path, the
B-REC invariant, watchdog escalation) live in
:class:`~repro.core.scheduler.TransactionalProcessScheduler`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.process import Process
from repro.subsystems.failures import FailurePolicy

__all__ = [
    "SHED_POLICIES",
    "AdmissionConfig",
    "WatchdogConfig",
    "AdmissionOutcome",
    "AdmissionDecision",
    "QueuedArrival",
]


#: Valid load-shedding policies when the admission queue overflows:
#: ``reject-new`` turns the newest offer away; ``shed-youngest-brec``
#: additionally cancels the youngest still-backward-recoverable active
#: process to make room (never an F-REC one — see the scheduler's
#: shed invariant).
SHED_POLICIES = ("reject-new", "shed-youngest-brec")


@dataclass(frozen=True)
class AdmissionConfig:
    """Bounds and policy of the scheduler's admission front door."""

    #: Maximum concurrently active (non-terminal) processes; ``None``
    #: removes the bound (the queue then never fills).
    max_active: Optional[int] = 8
    #: Maximum parked offers before the shed policy kicks in.
    max_queue_depth: int = 64
    #: Maximum virtual time an offer may wait in the queue; older
    #: entries are rejected at the next pump (``None`` disables —
    #: note the age check needs a clock, i.e. a resilience layer or
    #: explicit ``now`` arguments).
    max_queue_age: Optional[float] = None
    #: What to do when the queue is full (see :data:`SHED_POLICIES`).
    shed_policy: str = "reject-new"
    #: Backpressure: when at least this fraction of known circuit
    #: breakers is open, new offers are rejected outright — the system
    #: is shedding load *because* downstream subsystems are failing,
    #: and queueing more work would only deepen the outage.  ``None``
    #: disables the signal.
    breaker_throttle_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_active is not None and self.max_active < 1:
            raise ValueError("max_active must be a positive int or None")
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if self.max_queue_age is not None and self.max_queue_age <= 0:
            raise ValueError("max_queue_age must be positive or None")
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}, "
                f"got {self.shed_policy!r}"
            )
        if self.breaker_throttle_fraction is not None and not (
            0.0 < self.breaker_throttle_fraction <= 1.0
        ):
            raise ValueError(
                "breaker_throttle_fraction must be in (0, 1] or None"
            )


@dataclass(frozen=True)
class WatchdogConfig:
    """Starvation/livelock watchdog thresholds (``None`` disables one).

    Rounds are scheduler dispatch rounds (one
    :meth:`~repro.core.scheduler.TransactionalProcessScheduler.dispatch_order`
    call); flaps are failed invocations, compensation failures and
    ◁-degradations of a single process — the signature of a process
    cycling through retry/branch-switch loops without converging.
    """

    #: Rounds without progress before a WAITING process is boosted to
    #: the front of the dispatch order.
    starvation_rounds: Optional[int] = 200
    #: Flaps before a process is escalated to serial execution: it gets
    #: top dispatch priority and admission pauses until it terminates,
    #: so the offender finishes without fresh contention feeding the
    #: loop.
    livelock_flaps: Optional[int] = 50

    def __post_init__(self) -> None:
        if self.starvation_rounds is not None and self.starvation_rounds < 1:
            raise ValueError("starvation_rounds must be positive or None")
        if self.livelock_flaps is not None and self.livelock_flaps < 1:
            raise ValueError("livelock_flaps must be positive or None")


class AdmissionOutcome(enum.Enum):
    """What happened to one offered process."""

    ADMITTED = "admitted"
    QUEUED = "queued"
    REJECTED = "rejected"


@dataclass(frozen=True)
class AdmissionDecision:
    """The scheduler's answer to one :meth:`offer` call."""

    outcome: AdmissionOutcome
    #: The instance id the process runs (or will run) under; ``None``
    #: for rejections.
    instance_id: Optional[str]
    reason: str = ""

    @property
    def admitted(self) -> bool:
        return self.outcome is AdmissionOutcome.ADMITTED

    @property
    def queued(self) -> bool:
        return self.outcome is AdmissionOutcome.QUEUED

    @property
    def rejected(self) -> bool:
        return self.outcome is AdmissionOutcome.REJECTED


@dataclass
class QueuedArrival:
    """One offer parked in the admission queue.

    Deliberately carries *no* scheduler state: the process is only
    submitted (WAL record, instance, conflict bookkeeping) when it is
    actually admitted, so a queued offer that is later rejected leaves
    no trace at all.
    """

    process: Process
    failures: Optional[FailurePolicy]
    #: Virtual time of the offer (drives the age limit).
    offered_at: float
    #: Instance id reserved at offer time so callers can correlate the
    #: eventual run with their arrival records.
    instance_id: str = ""
    metadata: dict = field(default_factory=dict)
