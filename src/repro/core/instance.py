"""Runtime state of a single process execution (paper §3.1).

A :class:`ProcessInstance` is the inversion-of-control counterpart of
the reference interpreter in :mod:`repro.core.flex`: instead of running
the process to completion under a fixed failure scenario, it exposes one
action at a time (:meth:`ProcessInstance.next_action`) and is told the
outcome (:meth:`on_committed`, :meth:`on_failed`, :meth:`on_compensated`)
by whoever drives it — the transactional process scheduler, a baseline
scheduler, or a test harness.

The instance tracks the notions of §3.1:

* the **recovery state**: ``B-REC`` (backward-recoverable) until the
  state-determining activity — the first non-compensatable activity —
  has committed, ``F-REC`` (forward-recoverable) afterwards;
* the **completion** ``C(P)``: the activities recovery must execute.
  In ``B-REC`` these are the compensations of all committed activities
  in reverse order; in ``F-REC`` they are local backward recovery to the
  last committed non-compensatable activity followed by the
  lowest-preference all-retriable forward path (Example 2);
* **alternative switching**: when a non-retriable activity fails, the
  instance compensates back to the innermost choice point that still
  has a lower-preference alternative and continues there; if none
  exists it aborts by full backward recovery — which well-formedness
  guarantees is always possible at that point.

Deferred commits (Lemma 1) are modelled by the ``hardened`` parameter of
:meth:`recovery_state` and :meth:`completion`: a non-compensatable
activity whose subsystem transaction is merely *prepared* (not yet
committed through 2PC) does not put the process into ``F-REC`` — it can
still be rolled back natively, which is exactly why the paper defers
those commits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import (
    AbstractSet,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.activity import ActivityDef, ActivityId, Direction
from repro.core.flex import (
    FlexActivity,
    FlexChoice,
    FlexSeq,
    Step,
    StepKind,
    parse_flex,
)
from repro.core.process import Process
from repro.errors import (
    AlreadyTerminatedError,
    InvalidProcessError,
    NotWellFormedError,
    UnknownActivityError,
)

__all__ = [
    "RecoveryState",
    "InstanceStatus",
    "ActionType",
    "Action",
    "Completion",
    "ProcessInstance",
]


class RecoveryState(enum.Enum):
    """Recovery mode of a process (paper §3.1)."""

    B_REC = "backward-recoverable"
    F_REC = "forward-recoverable"


class InstanceStatus(enum.Enum):
    """Lifecycle status of a process instance."""

    RUNNING = "running"
    #: Switching to a lower-preference alternative: compensations of the
    #: failed branch are being executed.
    SWITCHING = "switching"
    #: An abort was requested; the completion ``C(P)`` is being executed.
    RECOVERING = "recovering"
    #: Terminated successfully (possibly through forward recovery).
    COMMITTED = "committed"
    #: Terminated by backward recovery, all effects compensated.
    ABORTED = "aborted"

    @property
    def is_terminal(self) -> bool:
        return self in (InstanceStatus.COMMITTED, InstanceStatus.ABORTED)


class ActionType(enum.Enum):
    """What the driver must do next for this instance."""

    #: Invoke the forward activity (``action.activity``).
    INVOKE = "invoke"
    #: Invoke the compensating activity ``a^{-1}``.
    COMPENSATE = "compensate"
    #: Nothing left to do: the instance reached ``status``.
    FINISHED = "finished"


@dataclass(frozen=True)
class Action:
    """One unit of work requested from the driver."""

    type: ActionType
    activity: Optional[str] = None
    #: 1-based attempt counter for the pending invocation.
    attempt: int = 1

    @property
    def activity_id(self) -> ActivityId:
        if self.activity is None:
            raise InvalidProcessError("finished action carries no activity")
        direction = (
            Direction.COMPENSATION
            if self.type is ActionType.COMPENSATE
            else Direction.FORWARD
        )
        return ActivityId("", self.activity, direction)

    def __str__(self) -> str:
        if self.type is ActionType.FINISHED:
            return "<finished>"
        suffix = "^-1" if self.type is ActionType.COMPENSATE else ""
        return f"{self.type.value} {self.activity}{suffix} (attempt {self.attempt})"


@dataclass(frozen=True)
class Completion:
    """The completion ``C(P)`` of a process instance (paper §3.1).

    ``compensations`` lists activities to compensate, most recent first
    (reverse execution order); ``forward`` lists the retriable forward
    recovery path in execution order.  ``state`` records the recovery
    state the completion was computed in: a ``B-REC`` completion has an
    empty ``forward`` part and terminates the process as aborted, while
    an ``F-REC`` completion always terminates it as committed (the
    paper: once the abort activity is replaced by the completion, the
    process "can be considered as committed").
    """

    compensations: Tuple[str, ...]
    forward: Tuple[str, ...]
    state: RecoveryState = RecoveryState.B_REC

    @property
    def terminal_status(self) -> InstanceStatus:
        if self.state is RecoveryState.F_REC:
            return InstanceStatus.COMMITTED
        return InstanceStatus.ABORTED

    @property
    def is_empty(self) -> bool:
        return not self.compensations and not self.forward

    def activity_ids(self, process_id: str) -> Tuple[ActivityId, ...]:
        """The completion as schedule-level activity identities, in order."""
        ids = [
            ActivityId(process_id, name, Direction.COMPENSATION)
            for name in self.compensations
        ]
        ids.extend(ActivityId(process_id, name) for name in self.forward)
        return tuple(ids)


class _ChoiceMark:
    """Bookkeeping for an entered choice: which branch, what to undo."""

    __slots__ = ("choice", "branch_index", "committed_mark")

    def __init__(self, choice: FlexChoice, branch_index: int, committed_mark: int):
        self.choice = choice
        self.branch_index = branch_index
        self.committed_mark = committed_mark


class _Frame:
    """A sequence being executed, with the index of the next item.

    ``choice_mark`` is set on frames that execute a choice branch and
    carries the information needed to switch to the next alternative.
    """

    __slots__ = ("seq", "index", "choice_mark")

    def __init__(self, seq: FlexSeq, choice_mark: Optional[_ChoiceMark] = None):
        self.seq = seq
        self.index = 0
        self.choice_mark = choice_mark


class ProcessInstance:
    """Driver-facing state machine for one execution of a process."""

    def __init__(self, process: Process, instance_id: Optional[str] = None) -> None:
        self.process = process
        self.instance_id = instance_id or process.process_id
        self._tree = parse_flex(process)
        self._frames: List[_Frame] = [_Frame(self._tree)]
        self._committed: List[ActivityDef] = []
        self._steps: List[Step] = []
        self._status = InstanceStatus.RUNNING
        self._attempt = 1
        #: Compensations queued by a branch switch or an abort, most
        #: recent activity first.
        self._pending_compensations: List[str] = []
        #: Forward-recovery activities queued by an abort in ``F-REC``.
        self._pending_forward: List[str] = []
        #: Set when the instance terminates through an abort request.
        self._aborted_by_request = False
        #: Branch switch to perform once pending compensations drain.
        self._pending_switch: Optional[Tuple[int, _ChoiceMark]] = None
        #: Whether a running recovery ends in forward completion.
        self._recovered_forward = False

    # -- introspection -----------------------------------------------------

    @property
    def status(self) -> InstanceStatus:
        return self._status

    @property
    def finished_via_abort(self) -> bool:
        """``True`` iff termination resulted from an abort request."""
        return self._aborted_by_request and self._status.is_terminal

    def committed_sequence(self) -> Tuple[str, ...]:
        """Names of currently-committed forward activities, in order."""
        return tuple(definition.name for definition in self._committed)

    def trace(self) -> Tuple[Step, ...]:
        """Full execution trace including failures and compensations."""
        return tuple(self._steps)

    def definition(self, name: str) -> ActivityDef:
        return self.process.activity(name)

    def recovery_state(
        self, hardened: Optional[AbstractSet[str]] = None
    ) -> RecoveryState:
        """Current recovery state (paper §3.1).

        ``hardened`` restricts which non-compensatable activities count
        as committed: when the scheduler defers subsystem commits
        (Lemma 1), a prepared-but-uncommitted pivot keeps the process in
        ``B-REC``.  ``None`` means every executed activity counts.
        """
        for definition in self._committed:
            if definition.kind.is_compensatable:
                continue
            if hardened is None or definition.name in hardened:
                return RecoveryState.F_REC
        return RecoveryState.B_REC

    def completion(
        self, hardened: Optional[AbstractSet[str]] = None
    ) -> Completion:
        """Compute the completion ``C(P)`` for the current state.

        In ``B-REC``: compensations of all committed compensatable
        activities in reverse order (non-compensatable activities that
        are executed but not hardened are rolled back natively by their
        subsystem and do not appear here).

        In ``F-REC``: compensations back to the last hardened
        non-compensatable activity, then the lowest-preference retriable
        forward path from that position (Example 2).
        """
        anchor_index = -1
        for index, definition in enumerate(self._committed):
            if definition.kind.is_compensatable:
                continue
            if hardened is None or definition.name in hardened:
                anchor_index = index
        compensations = tuple(
            definition.name
            for definition in reversed(self._committed[anchor_index + 1 :])
            if definition.kind.is_compensatable
        )
        if anchor_index < 0:
            return Completion(
                compensations=compensations,
                forward=(),
                state=RecoveryState.B_REC,
            )
        anchor = self._committed[anchor_index].name
        forward = self._forward_recovery_path(anchor)
        return Completion(
            compensations=compensations,
            forward=forward,
            state=RecoveryState.F_REC,
        )

    def hypothetical_completion(
        self,
        activity_name: str,
        hardened: Optional[AbstractSet[str]] = None,
    ) -> Completion:
        """The completion ``C(P)`` as if ``activity_name`` just committed.

        Used by the scheduler's admission control: before executing an
        activity it must know what recovery would have to do *afterwards*
        (paper §3.5 — the completed schedule of every prefix counts).
        A hypothetically committed non-compensatable activity counts as
        hardened, because admission is deciding whether the resulting
        state is safe at all.
        """
        definition = self.definition(activity_name)
        if not definition.kind.is_compensatable:
            return Completion(
                compensations=(),
                forward=self._forward_recovery_path(activity_name),
                state=RecoveryState.F_REC,
            )
        current = self.completion(hardened=hardened)
        return Completion(
            compensations=(activity_name,) + current.compensations,
            forward=current.forward,
            state=current.state,
        )

    def _forward_recovery_path(self, anchor: str) -> Tuple[str, ...]:
        """Retriable path from just after ``anchor`` to process end.

        Walks the structure tree, descending into the lowest-preference
        branch of any choice encountered — well-formedness guarantees
        that branch consists only of retriable activities.
        """
        path: List[str] = []

        def collect(seq: FlexSeq, start: int) -> None:
            for item in seq.items[start:]:
                if isinstance(item, FlexActivity):
                    if not item.kind.is_retriable:
                        raise NotWellFormedError(
                            f"forward recovery of {self.instance_id!r} met "
                            f"non-retriable activity {item.name!r}; process "
                            f"is not well formed"
                        )
                    path.append(item.name)
                else:
                    collect(item.branches[-1], 0)

        def locate(seq: FlexSeq) -> bool:
            for index, item in enumerate(seq.items):
                if isinstance(item, FlexActivity):
                    if item.name == anchor:
                        collect(seq, index + 1)
                        return True
                else:
                    for branch in item.branches:
                        if locate(branch):
                            return True
            return False

        if not locate(self._tree):  # pragma: no cover - anchor is committed
            raise UnknownActivityError(
                f"activity {anchor!r} not found in process "
                f"{self.process.process_id!r}"
            )
        return tuple(path)

    # -- the action interface ----------------------------------------------

    def next_action(self) -> Action:
        """The next unit of work the driver must perform.

        The same action is returned until the driver reports an outcome;
        retriable failures increment the attempt counter of the repeated
        action.
        """
        if self._status.is_terminal:
            return Action(ActionType.FINISHED)
        if self._pending_compensations:
            return Action(
                ActionType.COMPENSATE,
                self._pending_compensations[0],
                attempt=self._attempt,
            )
        if self._status is InstanceStatus.SWITCHING:
            self._perform_switch()
            return self.next_action()
        if self._status is InstanceStatus.RECOVERING:
            if self._pending_forward:
                return Action(
                    ActionType.INVOKE,
                    self._pending_forward[0],
                    attempt=self._attempt,
                )
            self._finish(
                InstanceStatus.COMMITTED
                if self._recovered_forward
                else InstanceStatus.ABORTED
            )
            return Action(ActionType.FINISHED)
        item = self._current_item()
        if item is None:
            self._finish(InstanceStatus.COMMITTED)
            return Action(ActionType.FINISHED)
        if isinstance(item, FlexChoice):
            self._enter_choice(item)
            return self.next_action()
        return Action(ActionType.INVOKE, item.name, attempt=self._attempt)

    def _current_item(self) -> Optional[Union[FlexActivity, FlexChoice]]:
        while self._frames:
            frame = self._frames[-1]
            if frame.index < len(frame.seq.items):
                return frame.seq.items[frame.index]
            self._frames.pop()
        return None

    def _enter_choice(self, item: FlexChoice) -> None:
        frame = self._frames[-1]
        frame.index += 1  # the choice itself is consumed
        mark = _ChoiceMark(item, 0, len(self._committed))
        self._frames.append(_Frame(item.branches[0], choice_mark=mark))

    def on_committed(self, name: str) -> None:
        """Report that the pending invocation/compensation committed."""
        action = self._expect_pending(name)
        self._attempt = 1
        if action.type is ActionType.COMPENSATE:
            self._steps.append(Step(name, StepKind.COMPENSATED))
            self._pending_compensations.pop(0)
            popped = self._committed.pop()
            if popped.name != name:  # pragma: no cover - LIFO invariant
                raise InvalidProcessError(
                    f"compensation order violated: compensated {name!r} but "
                    f"last committed activity is {popped.name!r}"
                )
            return
        self._steps.append(Step(name, StepKind.COMMITTED))
        if self._status is InstanceStatus.RECOVERING:
            self._pending_forward.pop(0)
            self._committed.append(self.definition(name))
            return
        self._committed.append(self.definition(name))
        self._frames[-1].index += 1

    def on_failed(self, name: str) -> None:
        """Report that the pending invocation aborted in its subsystem.

        Retriable activities (and compensations, which are retriable by
        definition) simply repeat with an incremented attempt counter.
        A failed compensatable or pivot activity triggers backtracking
        to the innermost choice point with a remaining alternative, or
        full backward recovery if none exists.
        """
        action = self._expect_pending(name)
        definition = self.definition(name)
        self._steps.append(Step(name, StepKind.FAILED, attempts=self._attempt))
        if action.type is ActionType.COMPENSATE or definition.kind.is_retriable:
            self._attempt += 1
            return
        self._attempt = 1
        self._backtrack()

    def on_compensated(self, name: str) -> None:
        """Alias of :meth:`on_committed` for compensation actions."""
        self.on_committed(name)

    def _expect_pending(self, name: str) -> Action:
        if self._status.is_terminal:
            raise AlreadyTerminatedError(
                f"instance {self.instance_id!r} already terminated "
                f"({self._status.value})"
            )
        action = self.next_action()
        if action.type is ActionType.FINISHED or action.activity != name:
            raise InvalidProcessError(
                f"out-of-order report for {name!r}; expected {action}"
            )
        return action

    # -- failure handling and recovery --------------------------------------

    def can_degrade(self) -> bool:
        """Is a proactive switch to a lower ◁-alternative possible now?

        ``True`` when the instance is running normally and unwinding to
        the innermost choice point with a remaining alternative crosses
        only compensatable committed activities — i.e. exactly when
        :meth:`degrade` would cleanly enter the next branch under the
        preference order rather than aborting the process.  Used by the
        scheduler's circuit-breaker degradation hook.
        """
        if self._status is not InstanceStatus.RUNNING:
            return False
        if self._pending_compensations or self._pending_switch:
            return False
        for frame in reversed(self._frames):
            mark = frame.choice_mark
            if (
                mark is not None
                and mark.branch_index + 1 < len(mark.choice.branches)
            ):
                undo = self._committed[mark.committed_mark :]
                return all(d.kind.is_compensatable for d in undo)
        return False

    def degrade(self, name: str) -> None:
        """Switch to the next ◁-alternative without invoking ``name``.

        The resilience layer's proactive counterpart of a failed
        invocation: when the circuit breaker for the pending activity's
        service is open, the scheduler refuses the doomed invocation
        and backtracks to the innermost choice point with a remaining
        alternative — the same path :meth:`on_failed` takes for a
        non-retriable failure, but available for *any* pending forward
        activity (including retriable ones whose retry budget ran dry).
        The refusal is recorded as a failed step in the trace.
        """
        action = self._expect_pending(name)
        if action.type is not ActionType.INVOKE:
            raise InvalidProcessError(
                f"cannot degrade {name!r}: only pending forward "
                f"invocations may be degraded, not {action}"
            )
        if not self.can_degrade():
            raise InvalidProcessError(
                f"instance {self.instance_id!r} has no ◁-alternative to "
                f"degrade to at {name!r}"
            )
        self._steps.append(Step(name, StepKind.FAILED, attempts=self._attempt))
        self._attempt = 1
        self._backtrack()

    def _backtrack(self) -> None:
        """Unwind to the innermost choice with a remaining alternative."""
        while self._frames:
            frame = self._frames[-1]
            mark = frame.choice_mark
            if mark is not None and mark.branch_index + 1 < len(mark.choice.branches):
                undo = self._committed[mark.committed_mark :]
                if any(not d.kind.is_compensatable for d in undo):
                    raise NotWellFormedError(  # pragma: no cover - WF invariant
                        f"cannot switch alternatives of {self.instance_id!r}: "
                        f"a non-compensatable activity committed inside the "
                        f"failed branch"
                    )
                self._pending_compensations = [d.name for d in reversed(undo)]
                self._pending_switch = (mark.branch_index + 1, mark)
                self._frames.pop()
                self._status = InstanceStatus.SWITCHING
                return
            self._frames.pop()
        # no alternative anywhere: full backward recovery
        if any(not d.kind.is_compensatable for d in self._committed):
            raise NotWellFormedError(  # pragma: no cover - WF invariant
                f"process {self.instance_id!r} failed in F-REC without an "
                f"alternative; it is not well formed"
            )
        self._pending_compensations = [
            definition.name for definition in reversed(self._committed)
        ]
        self._pending_forward = []
        self._recovered_forward = False
        self._status = InstanceStatus.RECOVERING

    def _perform_switch(self) -> None:
        """Enter the next alternative branch once compensations drained."""
        if self._pending_switch is None:  # pragma: no cover - defensive
            raise InvalidProcessError("no branch switch pending")
        branch_index, mark = self._pending_switch
        self._pending_switch = None
        new_mark = _ChoiceMark(mark.choice, branch_index, len(self._committed))
        self._frames.append(
            _Frame(mark.choice.branches[branch_index], choice_mark=new_mark)
        )
        self._status = InstanceStatus.RUNNING

    def request_abort(self, hardened: Optional[AbstractSet[str]] = None) -> Completion:
        """Abort the process: queue its completion ``C(P)`` for execution.

        Returns the completion so the driver knows what work follows.
        In ``B-REC`` the completion compensates everything; in ``F-REC``
        it performs local backward recovery and then the retriable
        forward path (paper §3.1: the abort of a process in ``F-REC``
        considers only the lowest-priority, all-retriable alternative).

        Permitted also on an instance that already reached a terminal
        *logical* state: until the driver records the process's commit
        ``C_i``, the process counts as active (Definition 8 2(b)) and
        may still be caught by a group or cascading abort.  The
        completion is then recomputed from the current committed state —
        empty for an instance that fully backward-recovered, the
        remaining forward path otherwise.
        """
        completion = self.completion(hardened=hardened)
        self._aborted_by_request = True
        self._pending_compensations = list(completion.compensations)
        self._pending_forward = list(completion.forward)
        self._recovered_forward = completion.state is RecoveryState.F_REC
        self._pending_switch = None
        self._frames = []
        self._attempt = 1
        # Drop executed-but-not-hardened non-compensatable activities from
        # the committed list: their prepared subsystem transactions are
        # rolled back natively and need no compensation.
        if hardened is not None:
            self._committed = [
                definition
                for definition in self._committed
                if definition.kind.is_compensatable or definition.name in hardened
            ]
        self._status = InstanceStatus.RECOVERING
        if completion.is_empty:
            self._finish(completion.terminal_status)
        return completion

    def _finish(self, status: InstanceStatus) -> None:
        self._status = status
        self._frames = []

    # -- replay --------------------------------------------------------------

    @classmethod
    def replay(
        cls,
        process: Process,
        outcomes: Iterable[Tuple[str, bool]],
    ) -> "ProcessInstance":
        """Reconstruct an instance by replaying invocation outcomes.

        ``outcomes`` is a sequence of ``(activity_name, success)`` pairs
        in the order the driver observed them; compensations triggered by
        failures or switches are assumed successful and consumed
        implicitly.  Used by the offline checkers to rebuild instance
        state at any schedule prefix.
        """
        instance = cls(process)
        for name, success in outcomes:
            action = instance.next_action()
            while (
                action.type is ActionType.COMPENSATE
                and action.activity != name
            ):
                instance.on_committed(action.activity)
                action = instance.next_action()
            if action.type is ActionType.FINISHED:
                raise InvalidProcessError(
                    f"replay of {process.process_id!r} has trailing outcome "
                    f"for {name!r} after termination"
                )
            if action.activity != name:
                raise InvalidProcessError(
                    f"replay mismatch for {process.process_id!r}: expected "
                    f"{action.activity!r}, got {name!r}"
                )
            if success:
                instance.on_committed(name)
            else:
                instance.on_failed(name)
        return instance
