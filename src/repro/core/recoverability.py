"""Process-recoverability and Theorem 1 (paper §3.5, Definition 11).

Classical recoverability ("no transaction commits before transactions
it read from") must be adapted to processes, whose recovery depends on
the two states ``B-REC`` / ``F-REC``.  A schedule ``S`` is
**process-recoverable (Proc-REC)** if for every pair of conflicting
activities ``a_{i_k} ≪_S a_{j_l}`` of different processes:

1. ``C_i`` precedes ``C_j`` — commits follow the conflict order; and
2. the next non-compensatable activity of ``P_j`` following ``a_{j_l}``
   succeeds the next non-compensatable activity of ``P_i`` following
   ``a_{i_k}`` — i.e. state-determining elements also respect the
   conflict order, so a process never "out-runs" a conflicting
   predecessor into ``F-REC`` (the failure pattern of Example 8).

Conflicting pairs that the reduction *cancels* impose no constraint:
when an activity and its compensation annihilate under Definition 9's
compensation rule, nothing durable was transferred between the
processes, so neither clause applies to the pair.  Without this
carve-out Definition 11 can be outright unsatisfiable — two processes
that both execute, then both compensate, a conflicting activity (a
branch switch on each side) create conflict edges in *both* directions
among the cancelled events, so no commit order exists, yet the
schedule is PRED and Theorem 1 demands it be Proc-REC.

**Theorem 1**: PRED ⟹ serializable ∧ Proc-REC.  The checkers here are
independent of the PRED machinery so the implication can be certified
statistically over random schedules (benchmark T1 and the property
tests).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import AbstractSet, Dict, List, Optional, Tuple

from repro.core.activity import ActivityId
from repro.core.schedule import (
    ActivityEvent,
    CommitEvent,
    ProcessSchedule,
)

__all__ = [
    "ProcRecViolation",
    "ProcRecResult",
    "check_process_recoverability",
    "is_process_recoverable",
]


@dataclass(frozen=True)
class ProcRecViolation:
    """One violation of Definition 11, with the witnessing events."""

    rule: int  # 1 or 2, matching Definition 11's clauses
    first: ActivityEvent
    second: ActivityEvent
    detail: str

    def __str__(self) -> str:
        return f"Proc-REC 11.{self.rule} violated by ({self.first}, {self.second}): {self.detail}"


@dataclass(frozen=True)
class ProcRecResult:
    """Outcome of a process-recoverability check."""

    is_process_recoverable: bool
    violations: Tuple[ProcRecViolation, ...] = ()

    def __bool__(self) -> bool:
        return self.is_process_recoverable


def check_process_recoverability(schedule: ProcessSchedule) -> ProcRecResult:
    """Evaluate Definition 11 on a schedule.

    The schedule should be *complete* in the sense that conflicting
    processes eventually commit — Definition 11.1 compares commit
    positions, and a missing commit counts as "at infinity" only if the
    other commit is also missing.  For schedules with aborts or active
    processes, apply the check to the completed schedule
    (:func:`repro.core.completion.complete_schedule`), where every
    process commits.
    """
    commit_position: Dict[str, int] = {}
    for index, event in enumerate(schedule.events):
        if isinstance(event, CommitEvent):
            commit_position.setdefault(event.process_id, index)

    activities = schedule.activity_events()
    undone = _undone_forward_ids(schedule)
    violations: List[ProcRecViolation] = []

    for left_pos in range(len(activities)):
        i, left = activities[left_pos]
        if left.activity.forward in undone:
            continue
        for right_pos in range(left_pos + 1, len(activities)):
            j, right = activities[right_pos]
            if left.process_id == right.process_id:
                continue
            if not schedule.events_conflict(left, right):
                continue
            if right.activity.forward in undone:
                continue
            violation = _check_pair(schedule, commit_position, i, left, j, right)
            violations.extend(violation)

    return ProcRecResult(not violations, tuple(violations))


def _undone_forward_ids(schedule: ProcessSchedule) -> AbstractSet[ActivityId]:
    """Forward ids of activities the reduction undoes completely.

    An id qualifies when *every* forward invocation of the activity is
    cancelled against its compensation by Definition 9's compensation
    rule (a re-invocation that survives keeps the id constrained), or
    when the effect-free rule removes it.  Events of these ids transfer
    no durable effects, so Definition 11 places no requirement on pairs
    involving them.
    """
    from repro.core.reduction import reduce_schedule

    reduction = reduce_schedule(schedule)
    forward_counts = Counter(
        event.activity.forward
        for _, event in reduction.completed.activity_events()
        if not event.is_compensation
    )
    cancelled_counts = Counter(
        forward_id.forward for forward_id in reduction.cancelled_pairs
    )
    undone = {
        forward_id
        for forward_id, count in cancelled_counts.items()
        if count == forward_counts[forward_id]
    }
    undone.update(
        removed.forward for removed in reduction.removed_effect_free
    )
    return undone


def _check_pair(
    schedule: ProcessSchedule,
    commit_position: Dict[str, int],
    i: int,
    left: ActivityEvent,
    j: int,
    right: ActivityEvent,
) -> List[ProcRecViolation]:
    violations: List[ProcRecViolation] = []
    pid_i = left.process_id
    pid_j = right.process_id

    # 11.1: C_i must precede C_j.
    commit_i = commit_position.get(pid_i)
    commit_j = commit_position.get(pid_j)
    if commit_j is not None and (commit_i is None or commit_i > commit_j):
        violations.append(
            ProcRecViolation(
                rule=1,
                first=left,
                second=right,
                detail=(
                    f"C({pid_j}) at position {commit_j} precedes "
                    f"C({pid_i}) at position "
                    f"{'∞' if commit_i is None else commit_i}"
                ),
            )
        )

    # 11.2: the next non-compensatable of P_j after a_{j_l} must succeed
    # the next non-compensatable of P_i after a_{i_k}.
    next_i = _next_non_compensatable(schedule, pid_i, i)
    next_j = _next_non_compensatable(schedule, pid_j, j)
    if next_j is not None and next_i is not None and next_j[0] < next_i[0]:
        violations.append(
            ProcRecViolation(
                rule=2,
                first=left,
                second=right,
                detail=(
                    f"{next_j[1]} (position {next_j[0]}) precedes "
                    f"{next_i[1]} (position {next_i[0]})"
                ),
            )
        )
    return violations


def _next_non_compensatable(
    schedule: ProcessSchedule, process_id: str, after: int
) -> Optional[Tuple[int, ActivityEvent]]:
    """First non-compensatable forward activity of the process after
    position ``after`` in the schedule, or ``None``."""
    for index, event in schedule.activity_events():
        if index <= after or event.process_id != process_id:
            continue
        if event.is_compensation:
            continue
        if not event.kind.is_compensatable:
            return (index, event)
    return None


def is_process_recoverable(schedule: ProcessSchedule) -> bool:
    """``True`` iff the schedule satisfies Definition 11."""
    return check_process_recoverability(schedule).is_process_recoverable
