"""Well-formed flex structures and guaranteed termination (paper §3.1).

A single transactional process is *well defined* if it has **well-formed
flex structure** (ZNBB94): a sequence of compensatable activities,
followed by at most one pivot activity, followed by a sequence of
retriable activities; recursively, a pivot may instead be succeeded by
alternative well-formed flex structures provided the lowest-preference
alternative consists only of retriable activities.  Processes with
well-formed flex structure are *processes with guaranteed termination*:
at least one execution path can always be completed while all other
paths leave no effects (the generalisation of all-or-nothing atomicity).

This module provides three things:

* a **grammar parser** :func:`parse_flex` that checks a
  :class:`~repro.core.process.Process` graph against the well-formed
  grammar and returns its structure tree (:class:`FlexSeq`);
* a **DSL** (:func:`comp`, :func:`pivot`, :func:`retr`, :func:`seq`,
  :func:`choice`) for building well-formed processes structurally, with
  :func:`build_process` compiling a tree into a process graph;
* a **reference interpreter** (:func:`simulate`,
  :func:`enumerate_executions`) that executes a flex tree under a
  failure scenario and enumerates the distinct *valid executions* of a
  process (Figure 3).  The interpreter is deliberately independent of
  the runtime :class:`~repro.core.instance.ProcessInstance` so the two
  implementations can cross-check each other in tests.

Counting convention for "valid executions" (Example 1 / Figure 3): the
distinct committing effect traces are counted individually, and all
backward-recovery aborts count as one distinguished execution, since
abort in ``B-REC`` is the single lowest-preference behaviour.  Under
this convention the paper's process ``P_1`` has exactly four valid
executions.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.activity import ActivityDef, ActivityKind
from repro.core.process import Process, ProcessBuilder
from repro.errors import NotWellFormedError

__all__ = [
    "FlexActivity",
    "FlexChoice",
    "FlexSeq",
    "comp",
    "pivot",
    "retr",
    "seq",
    "choice",
    "build_process",
    "parse_flex",
    "is_well_formed",
    "assert_well_formed",
    "state_determining_activity",
    "Outcome",
    "Step",
    "StepKind",
    "ExecutionPath",
    "simulate",
    "enumerate_executions",
    "count_valid_executions",
]


# ---------------------------------------------------------------------------
# Structure tree
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlexActivity:
    """Leaf of the flex structure tree: one activity declaration."""

    definition: ActivityDef

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def kind(self) -> ActivityKind:
        return self.definition.kind


@dataclass(frozen=True)
class FlexChoice:
    """Alternative execution paths, highest preference first.

    By well-formedness the last branch consists only of retriable
    activities, guaranteeing forward recovery once the preceding pivot
    committed.
    """

    branches: Tuple["FlexSeq", ...]

    def __post_init__(self) -> None:
        if len(self.branches) < 2:
            raise NotWellFormedError(
                "a choice needs at least two alternative branches"
            )


@dataclass(frozen=True)
class FlexSeq:
    """Sequence of activities, possibly ending in a choice."""

    items: Tuple[Union[FlexActivity, FlexChoice], ...]

    def activities(self) -> Iterable[ActivityDef]:
        """All activity declarations in the subtree, depth first."""
        for item in self.items:
            if isinstance(item, FlexActivity):
                yield item.definition
            else:
                for branch in item.branches:
                    yield from branch.activities()

    def first_activity(self) -> Optional[FlexActivity]:
        for item in self.items:
            if isinstance(item, FlexActivity):
                return item
            for branch in item.branches:
                head = branch.first_activity()
                if head is not None:
                    return head
        return None


# ---------------------------------------------------------------------------
# Construction DSL
# ---------------------------------------------------------------------------


def comp(name: str, **kwargs) -> FlexActivity:
    """A compensatable activity leaf (``a^c``)."""
    return FlexActivity(ActivityDef(name=name, kind=ActivityKind.COMPENSATABLE, **kwargs))


def pivot(name: str, **kwargs) -> FlexActivity:
    """A pivot activity leaf (``a^p``)."""
    return FlexActivity(ActivityDef(name=name, kind=ActivityKind.PIVOT, **kwargs))


def retr(name: str, **kwargs) -> FlexActivity:
    """A retriable activity leaf (``a^r``)."""
    return FlexActivity(ActivityDef(name=name, kind=ActivityKind.RETRIABLE, **kwargs))


def seq(*items: Union[FlexActivity, FlexChoice, FlexSeq]) -> FlexSeq:
    """Sequential composition; nested sequences are flattened."""
    flat: List[Union[FlexActivity, FlexChoice]] = []
    for item in items:
        if isinstance(item, FlexSeq):
            flat.extend(item.items)
        else:
            flat.append(item)
    return FlexSeq(tuple(flat))


def choice(*branches: Union[FlexSeq, FlexActivity]) -> FlexChoice:
    """Alternative branches, highest preference first."""
    normalised = tuple(
        branch if isinstance(branch, FlexSeq) else seq(branch)
        for branch in branches
    )
    return FlexChoice(normalised)


def _validate_tree(tree: FlexSeq, *, top_level: bool) -> None:
    """Check a structure tree against the well-formed flex grammar.

    Grammar (ZNBB94, as stated in paper §3.1)::

        WF    ::= comp* Tail
        Tail  ::= ε | retr* | pivot Rest
        Rest  ::= ε | retr* | Choice
        Choice::= (WF, ..., WF, retr+)   # ordered; last branch all-retriable

    A choice may only appear as the final item of a sequence, directly
    after a pivot.
    """
    items = tree.items
    position = 0
    # compensatable prefix
    while position < len(items):
        item = items[position]
        if isinstance(item, FlexActivity) and item.kind.is_compensatable:
            position += 1
        else:
            break
    if position == len(items):
        return  # all-compensatable (or empty): trivially well formed
    item = items[position]
    if isinstance(item, FlexChoice):
        raise NotWellFormedError(
            "a choice may only follow a pivot activity (alternative "
            "execution paths hang off the activity whose failure they handle)"
        )
    if item.kind.is_retriable:
        _validate_retriable_suffix(items[position:])
        return
    # item is the pivot
    position += 1
    if position == len(items):
        return  # comp* pivot: well formed with empty retriable suffix
    rest = items[position]
    if isinstance(rest, FlexChoice):
        if position != len(items) - 1:
            raise NotWellFormedError(
                "a choice must be the final item of its sequence"
            )
        for branch in rest.branches[:-1]:
            _validate_tree(branch, top_level=False)
        _validate_retriable_suffix(rest.branches[-1].items)
        last = rest.branches[-1]
        if not last.items:
            raise NotWellFormedError(
                "the lowest-preference alternative must contain at least one "
                "retriable activity"
            )
        return
    _validate_retriable_suffix(items[position:])


def _validate_retriable_suffix(
    items: Sequence[Union[FlexActivity, FlexChoice]],
) -> None:
    for item in items:
        if isinstance(item, FlexChoice):
            raise NotWellFormedError(
                "alternative execution paths are unnecessary among retriable "
                "activities (they cannot fail) and are not well formed"
            )
        if not item.kind.is_retriable:
            raise NotWellFormedError(
                f"activity {item.name!r} of kind {item.kind.name.lower()} "
                f"appears where only retriable activities are allowed"
            )


def build_process(
    process_id: str,
    tree: FlexSeq,
    validate: bool = True,
) -> Process:
    """Compile a flex structure tree into a :class:`Process` graph.

    The compilation lays down chain connectors within sequences, hangs
    choice branches off the preceding pivot with the branch heads as
    alternative successors (the representation of ``◁``), and validates
    well-formedness unless ``validate=False``.
    """
    if validate:
        _validate_tree(tree, top_level=True)
    builder = ProcessBuilder(process_id)
    _compile_seq(tree, builder, predecessor=None)
    return builder.build(validate=validate)


def _compile_seq(
    tree: FlexSeq,
    builder: ProcessBuilder,
    predecessor: Optional[str],
) -> Optional[str]:
    """Emit activities/edges for a sequence; returns its last activity."""
    current = predecessor
    for item in tree.items:
        if isinstance(item, FlexActivity):
            builder.add(item.definition)
            if current is not None:
                builder.precede(current, item.name)
            current = item.name
        else:  # FlexChoice — grammar guarantees it is last, after a pivot
            if current is None:
                raise NotWellFormedError(
                    "a choice cannot open a process: it needs a preceding "
                    "activity whose failure selects among the branches"
                )
            heads: List[str] = []
            for branch in item.branches:
                head = branch.first_activity()
                if head is None:
                    raise NotWellFormedError("alternative branches must be non-empty")
                _compile_seq(branch, builder, predecessor=current)
                heads.append(head.name)
            builder.prefer(current, heads)
            return None  # choice terminates the sequence
    return current


# ---------------------------------------------------------------------------
# Parsing a process graph back into a structure tree
# ---------------------------------------------------------------------------


def parse_flex(process: Process) -> FlexSeq:
    """Parse a process graph into its well-formed flex structure tree.

    Raises :class:`NotWellFormedError` if the graph does not have
    well-formed flex structure (non-linear precedence outside choice
    points, choices not anchored at a pivot, missing all-retriable
    lowest-preference alternative, rejoining branches, …).
    """
    roots = process.roots()
    if len(process) == 0:
        return FlexSeq(())
    if len(roots) != 1:
        raise NotWellFormedError(
            f"process {process.process_id!r} has {len(roots)} entry "
            f"activities; well-formed flex structures are rooted chains"
        )
    tree, consumed = _parse_from(process, roots[0])
    if consumed != set(process.activity_names):
        leftover = sorted(set(process.activity_names) - consumed)
        raise NotWellFormedError(
            f"activities {leftover} of process {process.process_id!r} are "
            f"unreachable from the entry activity"
        )
    _validate_tree(tree, top_level=True)
    return tree


def _parse_from(process: Process, start: str) -> Tuple[FlexSeq, Set[str]]:
    items: List[Union[FlexActivity, FlexChoice]] = []
    consumed: Set[str] = set()
    current: Optional[str] = start
    while current is not None:
        items.append(FlexActivity(process.activity(current)))
        consumed.add(current)
        successors = process.direct_successors(current)
        alternatives = process.alternatives(current)
        if alternatives:
            if set(successors) != set(alternatives):
                raise NotWellFormedError(
                    f"activity {current!r} mixes alternative and "
                    f"unconditional successors, which is not well formed"
                )
            branches: List[FlexSeq] = []
            branch_sets: List[Set[str]] = []
            for head in alternatives:
                branch, branch_consumed = _parse_from(process, head)
                for earlier in branch_sets:
                    overlap = earlier & branch_consumed
                    if overlap:
                        raise NotWellFormedError(
                            f"alternative branches of {current!r} share "
                            f"activities {sorted(overlap)}; branches must be "
                            f"disjoint"
                        )
                branches.append(branch)
                branch_sets.append(branch_consumed)
                consumed |= branch_consumed
            items.append(FlexChoice(tuple(branches)))
            current = None
        elif len(successors) > 1:
            raise NotWellFormedError(
                f"activity {current!r} has parallel unconditional successors "
                f"{list(successors)}; well-formed flex structures are chains "
                f"with alternatives (flatten AND-parallelism first)"
            )
        elif successors:
            current = successors[0]
        else:
            current = None
    return FlexSeq(tuple(items)), consumed


def is_well_formed(process: Process) -> bool:
    """``True`` iff the process has well-formed flex structure."""
    try:
        parse_flex(process)
    except NotWellFormedError:
        return False
    return True


def assert_well_formed(process: Process) -> FlexSeq:
    """Parse and return the structure tree, raising if not well formed."""
    return parse_flex(process)


def state_determining_activity(process: Process) -> Optional[str]:
    """The state-determining activity ``s_{i_0}`` (paper §3.1).

    The first non-compensatable activity of the process: every activity
    preceding it is compensatable, so the process is backward-recoverable
    until ``s_{i_0}`` commits and forward-recoverable afterwards.
    Returns ``None`` for all-compensatable processes, which remain
    backward-recoverable throughout.
    """
    tree = parse_flex(process)
    for item in tree.items:
        if isinstance(item, FlexActivity):
            if not item.kind.is_compensatable:
                return item.name
        else:  # pragma: no cover - grammar places choices after pivots only
            break
    return None


# ---------------------------------------------------------------------------
# Reference interpreter: valid executions
# ---------------------------------------------------------------------------


class Outcome(enum.Enum):
    """Terminal outcome of a single process execution."""

    COMMIT = "commit"
    ABORT = "abort"


class StepKind(enum.Enum):
    """What happened at one step of an execution trace."""

    COMMITTED = "committed"
    FAILED = "failed"
    COMPENSATED = "compensated"


@dataclass(frozen=True)
class Step:
    """One step of an execution trace."""

    activity: str
    kind: StepKind
    attempts: int = 1

    def __str__(self) -> str:
        if self.kind is StepKind.COMPENSATED:
            return f"{self.activity}^-1"
        if self.kind is StepKind.FAILED:
            return f"{self.activity}(failed)"
        return self.activity


@dataclass(frozen=True)
class ExecutionPath:
    """A complete execution of a single process.

    ``steps`` records everything that happened, including failed
    attempts; ``effects`` is the subsequence of effectful occurrences
    (committed activities and compensations), which identifies the
    execution for Figure-3-style counting.
    """

    steps: Tuple[Step, ...]
    outcome: Outcome

    @property
    def effects(self) -> Tuple[str, ...]:
        committed = []
        for step in self.steps:
            if step.kind is StepKind.COMMITTED:
                committed.append(step.activity)
            elif step.kind is StepKind.COMPENSATED:
                committed.append(step.activity + "^-1")
        return tuple(committed)

    @property
    def committed_activities(self) -> Tuple[str, ...]:
        return tuple(
            step.activity
            for step in self.steps
            if step.kind is StepKind.COMMITTED
        )

    def is_effect_free(self) -> bool:
        """``True`` iff every committed activity was compensated again."""
        pending: List[str] = []
        for entry in self.effects:
            if entry.endswith("^-1"):
                original = entry[:-3]
                if pending and pending[-1] == original:
                    pending.pop()
                else:  # pragma: no cover - compensation always LIFO here
                    return False
            else:
                pending.append(entry)
        return not pending

    def __str__(self) -> str:
        inner = " ".join(str(step) for step in self.steps)
        return f"<{inner}> [{self.outcome.value}]"


class _Failure(Exception):
    """Internal unwinding signal: a non-retriable activity failed."""


#: A failure scenario maps ``(activity_name, attempt_number)`` to whether
#: that invocation aborts.  Attempt numbers start at 1.
FailureScenario = Callable[[str, int], bool]


def scenario_from_set(failing: Iterable[str]) -> FailureScenario:
    """Scenario where each listed activity fails on its first attempt.

    Retriable activities in the set fail once and then succeed on retry;
    other activities in the set fail terminally (Definition 4).
    """
    failing_set = frozenset(failing)

    def fails(name: str, attempt: int) -> bool:
        return name in failing_set and attempt == 1

    return fails


def simulate(
    process_or_tree: Union[Process, FlexSeq],
    failing: Union[FailureScenario, Iterable[str], None] = None,
) -> ExecutionPath:
    """Execute a well-formed process under a failure scenario.

    This is the reference semantics of §3.1: activities execute in
    precedence order; when a non-retriable activity fails, executed
    compensatable activities are compensated back (in reverse order) to
    the innermost choice point that still has a lower-preference
    alternative, which is then taken; if no alternative exists the
    process aborts by full backward recovery (only possible while it is
    in ``B-REC`` — guaranteed termination ensures this).
    """
    if isinstance(process_or_tree, Process):
        tree = parse_flex(process_or_tree)
    else:
        tree = process_or_tree
        _validate_tree(tree, top_level=True)
    if failing is None:
        scenario: FailureScenario = lambda name, attempt: False
    elif callable(failing):
        scenario = failing
    else:
        scenario = scenario_from_set(failing)

    steps: List[Step] = []
    committed: List[FlexActivity] = []

    def run_activity(item: FlexActivity) -> None:
        attempt = 1
        while scenario(item.name, attempt):
            steps.append(Step(item.name, StepKind.FAILED, attempts=attempt))
            if not item.kind.is_retriable:
                raise _Failure(item.name)
            attempt += 1
        steps.append(Step(item.name, StepKind.COMMITTED, attempts=attempt))
        committed.append(item)

    def compensate_back_to(mark: int) -> None:
        while len(committed) > mark:
            item = committed.pop()
            if not item.kind.is_compensatable:  # pragma: no cover - WF invariant
                raise NotWellFormedError(
                    f"backward recovery reached non-compensatable activity "
                    f"{item.name!r}; the process is not well formed"
                )
            steps.append(Step(item.name, StepKind.COMPENSATED))

    def run_seq(node: FlexSeq) -> None:
        for item in node.items:
            if isinstance(item, FlexActivity):
                run_activity(item)
            else:
                run_choice(item)

    def run_choice(node: FlexChoice) -> None:
        last_index = len(node.branches) - 1
        for index, branch in enumerate(node.branches):
            mark = len(committed)
            try:
                run_seq(branch)
                return
            except _Failure:
                compensate_back_to(mark)
                if index == last_index:  # pragma: no cover - WF invariant
                    raise

    try:
        run_seq(tree)
    except _Failure:
        compensate_back_to(0)
        return ExecutionPath(tuple(steps), Outcome.ABORT)
    return ExecutionPath(tuple(steps), Outcome.COMMIT)


def enumerate_executions(
    process_or_tree: Union[Process, FlexSeq],
    max_failures: Optional[int] = None,
) -> List[ExecutionPath]:
    """Enumerate the distinct executions of a well-formed process.

    Considers every failure scenario over the fallible (non-retriable)
    activities with at most ``max_failures`` failing activities
    (``None`` means all subsets) and returns the distinct executions by
    effect trace — committing executions individually, plus at most one
    distinguished backward-recovery abort execution (see module
    docstring for the counting convention).
    """
    if isinstance(process_or_tree, Process):
        tree = parse_flex(process_or_tree)
    else:
        tree = process_or_tree
    fallible = [
        definition.name
        for definition in tree.activities()
        if not definition.kind.is_retriable
    ]
    limit = len(fallible) if max_failures is None else min(max_failures, len(fallible))

    committing: Dict[Tuple[str, ...], ExecutionPath] = {}
    abort_path: Optional[ExecutionPath] = None
    for size in range(limit + 1):
        for failing in itertools.combinations(fallible, size):
            path = simulate(tree, scenario_from_set(failing))
            if path.outcome is Outcome.COMMIT:
                committing.setdefault(path.effects, path)
            elif abort_path is None or len(path.effects) > len(abort_path.effects):
                # keep the longest abort as the representative: it shows
                # the deepest backward recovery the process can perform
                abort_path = path
    ordered = [committing[key] for key in sorted(committing)]
    if abort_path is not None:
        ordered.append(abort_path)
    return ordered


def count_valid_executions(
    process_or_tree: Union[Process, FlexSeq],
    max_failures: Optional[int] = None,
) -> int:
    """Number of distinct valid executions (Example 1: four for ``P_1``)."""
    return len(enumerate_executions(process_or_tree, max_failures=max_failures))
