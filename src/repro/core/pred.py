"""Prefix-reducibility — the paper's correctness criterion (Definition 10).

``RED`` is not prefix closed: a schedule whose completion reduces today
may have had a prefix whose completion did not (Example 8).  A dynamic
scheduler must therefore guarantee **prefix-reducibility (PRED)**: every
prefix of the schedule — completed with the group abort of the processes
active *at that point* — must be reducible.

:func:`check_pred` evaluates the criterion offline, prefix by prefix,
and reports the first violating prefix together with its reduction
witness.  This checker is intentionally independent of the online
scheduler protocol so it can certify the protocol in tests, and its
cost (quadratic number of reductions) is measured by benchmark X4 —
motivating why the online scheduler enforces PRED constructively via
the paper's lemmas instead of re-checking it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.reduction import ReductionResult, reduce_schedule
from repro.core.schedule import ProcessSchedule

__all__ = ["PredResult", "check_pred", "is_prefix_reducible"]


@dataclass(frozen=True)
class PredResult:
    """Outcome of a PRED evaluation."""

    is_pred: bool
    #: Length of the first prefix that is not reducible, or ``None``.
    violating_prefix_length: Optional[int] = None
    #: Reduction outcome for the violating prefix, or ``None``.
    violation: Optional[ReductionResult] = None
    #: Number of prefixes checked (for cost accounting).
    prefixes_checked: int = 0

    def __bool__(self) -> bool:
        return self.is_pred

    def __str__(self) -> str:
        if self.is_pred:
            return f"PRED ({self.prefixes_checked} prefixes reducible)"
        return (
            f"not PRED: prefix of length {self.violating_prefix_length} "
            f"is not reducible ({self.violation})"
        )


def check_pred(schedule: ProcessSchedule, stop_early: bool = True) -> PredResult:
    """Evaluate prefix-reducibility (Definition 10).

    Every prefix of the schedule is completed (Definition 8) and reduced
    (Definition 9).  With ``stop_early`` (default) the check returns at
    the first irreducible prefix; otherwise all prefixes are evaluated
    (useful for cost benchmarking).
    """
    checked = 0
    first_violation: Optional[Tuple[int, ReductionResult]] = None
    for length in range(len(schedule) + 1):
        prefix = schedule.prefix(length)
        result = reduce_schedule(prefix)
        checked += 1
        if not result.is_reducible:
            if first_violation is None:
                first_violation = (length, result)
            if stop_early:
                break
    if first_violation is None:
        return PredResult(is_pred=True, prefixes_checked=checked)
    length, result = first_violation
    return PredResult(
        is_pred=False,
        violating_prefix_length=length,
        violation=result,
        prefixes_checked=checked,
    )


def is_prefix_reducible(schedule: ProcessSchedule) -> bool:
    """``True`` iff the schedule is PRED (Definition 10)."""
    return check_pred(schedule).is_pred
