"""The online transactional process scheduler (paper §3.5 and §4).

The paper proves that PRED schedules are exactly the correct ones, and
derives from Lemmas 1-3 the rules a *dynamic* scheduler must enforce —
re-checking PRED on every prefix would require completing and reducing
the schedule each time (benchmark X4 measures that cost).  This module
implements the constructive protocol:

R1 — **conflict ordering**: conflicting activities of different
     processes are serialised; executing ``b`` of ``P_j`` after a
     conflicting committed activity of ``P_i`` records the dependency
     ``P_i → P_j`` in the process serialization graph.

R2 — **completion-aware cycle prevention**: a request is deferred if
     the *completed prefix* it would create is irreducible — the check
     combines the recorded conflict edges with the "potential" edges
     that the forward-recovery paths of active processes' completions
     would force (§3.5: the completed schedule must always be
     considered; completions introduce conflicts S itself cannot show).

R3 — **Lemma 1 (execution side)**: a *non-compensatable* activity of
     ``P_j`` is deferred while any process with a conflict edge into
     ``P_j`` is still active — otherwise a later compensation of the
     predecessor would create an irreducible cycle (Example 8), and
     Proc-REC 11.2's ordering of state-determining activities would
     break.

R4 — **Lemma 1 (commit side) / deferred commit**: pivot and retriable
     activities execute with their subsystem transactions *prepared*;
     per-process groups commit atomically through 2PC once no
     conflicting active predecessor remains (the hardening guard — the
     literal content of Lemma 1).  Until hardened, a process remains
     effectively backward-recoverable and is a cheap abort victim;
     Definition 5's temporal semantics makes successors wait for the
     group, so rolled-back pivots never have executed successors.

R5 — **Lemma 2 / cascading aborts**: a compensation may only execute
     once every *later* conflicting activity of another active process
     has itself been compensated; the scheduler triggers the cascading
     aborts (§2.2's BOM-invalidation scenario) and thereby emits all
     compensations in reverse conflict order.

R6 — **Lemma 3**: forward-recovery (retriable) activities conflicting
     with pending compensations are deferred behind them — implied by
     R3/R5 plus the per-instance completion order.

R7 — **commit ordering (Proc-REC 11.1)**: a process commits only after
     every conflicting predecessor terminated.

Deadlocks among deferrals are resolved by aborting a victim —
preferably one with no hardened non-compensatable activity (its abort
is pure rollback), falling back to a hardened one whose abort swaps the
blocked remainder of its path for the guaranteed retriable
forward-recovery path.  Guaranteed termination makes every abort clean.

``paranoid=True`` re-validates the produced history against the
*offline* checker after every recorded event (incrementally — only
prefixes beyond the certified watermark are re-reduced, with a full
re-check after native rollbacks, which rewrite the past); the property
tests use it to certify the protocol.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.activity import ActivityDef, ActivityId, Direction
from repro.core.admission import (
    AdmissionConfig,
    AdmissionDecision,
    AdmissionOutcome,
    QueuedArrival,
    WatchdogConfig,
)
from repro.core.conflict import (
    ConflictRelation,
    NoConflicts,
    UnionConflicts,
    normalize_service,
)
from repro.core.instance import (
    Action,
    ActionType,
    InstanceStatus,
    ProcessInstance,
)
from repro.core.process import Process
from repro.core.schedule import (
    AbortEvent,
    ActivityEvent,
    CommitEvent,
    ProcessSchedule,
)
from repro.errors import (
    CorrectnessViolation,
    ProcessAbortedError,
    SchedulerClosedError,
    SchedulerError,
    SubsystemError,
    SubsystemUnavailable,
    TransactionAborted,
    UnknownProcessError,
    UnrecoverableStateError,
)
from repro.core.perf import PerfCounters
from repro.obs.explain import GRAPH_RULES, DecisionRecord
from repro.obs.metrics import MetricsRegistry
from repro.core.sergraph import IncrementalSerializationGraph
from repro.resilience.manager import ResilienceManager
from repro.subsystems.failures import FailurePolicy, NoFailures
from repro.subsystems.resource import WouldBlock
from repro.subsystems.services import noop_service
from repro.subsystems.subsystem import Subsystem, SubsystemRegistry
from repro.subsystems.twophase import Participant, TwoPhaseCoordinator
from repro.subsystems.wal import WriteAheadLog

__all__ = [
    "SchedulerRules",
    "ManagedStatus",
    "ManagedProcess",
    "TransactionalProcessScheduler",
]


@dataclass(frozen=True)
class SchedulerRules:
    """Protocol rule switches (ablated by benchmark X6).

    Disabling a rule removes the corresponding guarantee; the ablation
    benchmark then counts how many produced histories the offline
    checkers reject.
    """

    #: R3: defer non-compensatable activities conflicting with active
    #: processes (Lemma 1.2).
    defer_non_compensatable: bool = True
    #: R2: defer requests that would close a serialization-graph cycle.
    cycle_prevention: bool = True
    #: R5: cascade-abort processes whose activities must be compensated
    #: before a predecessor's compensation may run (Lemma 2).
    cascading_aborts: bool = True
    #: R7: order commits along the serialization graph (Proc-REC 11.1).
    commit_ordering: bool = True
    #: R4: 2PC-commit prepared pivot groups as soon as it is safe.
    eager_hardening: bool = True
    #: R4's safety condition: only harden when no conflicting active
    #: predecessor remains — the literal content of Lemma 1 ("the
    #: commits … have to be deferred … until P_i has committed").
    #: Disabling this is the ablation that reproduces Example 8 live.
    guard_hardening: bool = True
    #: Validate the produced history with the offline PRED checker after
    #: every recorded event (expensive; for certification tests).
    paranoid: bool = False


class ManagedStatus(enum.Enum):
    """Scheduler-side lifecycle of a managed process."""

    ACTIVE = "active"
    WAITING = "waiting"
    COMMITTED = "committed"
    ABORTED = "aborted"

    @property
    def is_terminal(self) -> bool:
        return self in (ManagedStatus.COMMITTED, ManagedStatus.ABORTED)


@dataclass
class _PreparedActivity:
    """A non-compensatable activity held prepared in its subsystem."""

    activity_name: str
    subsystem: Subsystem
    txn_id: str
    log_position: int


@dataclass
class _LogEntry:
    """One recorded activity event plus its runtime bookkeeping."""

    event: ActivityEvent
    #: The forward event this compensation cancels (compensations only).
    compensates: Optional[int] = None
    #: Set when a later compensation cancelled this forward event.
    compensated: bool = False
    #: Set when the prepared transaction was rolled back natively.
    rolled_back: bool = False

    @property
    def is_effective(self) -> bool:
        """Counts toward conflicts: present and not undone.

        A forward event that has been compensated and the compensation
        that cancelled it form an effect-free pair (Definition 2); the
        protocol's cascade rule guarantees the pair cancels cleanly
        under the compensation rule, so neither side contributes
        conflict edges anymore.
        """
        if self.rolled_back:
            return False
        if self.event.is_compensation:
            return self.compensates is None
        return not self.compensated

    @property
    def process_id(self) -> str:
        return self.event.process_id


@dataclass
class ManagedProcess:
    """Scheduler-side state for one submitted process instance."""

    instance: ProcessInstance
    failures: FailurePolicy
    status: ManagedStatus = ManagedStatus.ACTIVE
    #: Process ids whose termination this instance currently waits for.
    waiting_for: FrozenSet[str] = frozenset()
    waiting_reason: str = ""
    prepared: List[_PreparedActivity] = field(default_factory=list)
    #: Non-compensatable activities whose subsystem commit went through.
    hardened: Set[str] = field(default_factory=set)
    #: Log positions of this process's events, in order.
    log_positions: List[int] = field(default_factory=list)
    #: Set while the scheduler executes a requested/cascaded abort.
    abort_pending: bool = False
    abort_reason: str = ""
    #: Virtual time the process was offered / actually admitted
    #: (identical for direct :meth:`submit`).  Sojourn time = terminal
    #: time − ``offered_at`` includes the admission-queue wait.
    offered_at: float = 0.0
    admitted_at: float = 0.0
    #: Monotone admission order; the load shedder's notion of age
    #: ("youngest" = highest sequence number).
    admission_seq: int = 0
    #: Set when the load shedder cancelled this process (its abort then
    #: counts as shed, not as an ordinary application abort).
    shed: bool = False
    #: Watchdog state: last dispatch round with progress, whether the
    #: starvation watchdog boosted it, failure/degradation flap count,
    #: and whether the livelock watchdog escalated it to serial mode.
    last_progress_round: int = 0
    boosted: bool = False
    flaps: int = 0
    serialized: bool = False
    #: Memoised ``(trace_length, completion)`` for admission checks.
    _completion_cache: Optional[Tuple[int, object]] = None
    #: Memoised ``(trace_length, graph epoch, interned forward-recovery
    #: services)`` — the service set the completion would still run.
    _forward_services_cache: Optional[Tuple[int, int, FrozenSet[str]]] = None
    #: Last blocking decision recorded about this process (see
    #: ``repro.obs.explain``).
    last_decision: Optional[DecisionRecord] = None

    @property
    def process_id(self) -> str:
        return self.instance.instance_id

    @property
    def is_hardened(self) -> bool:
        """``True`` once any non-compensatable activity committed — the
        process is then in ``F-REC`` and no longer a cheap victim."""
        return bool(self.hardened)


class TransactionalProcessScheduler:
    """Synchronous reactor scheduling transactional processes.

    Usage::

        registry = SubsystemRegistry([...])
        scheduler = TransactionalProcessScheduler(registry, conflicts)
        scheduler.submit(process_a)
        scheduler.submit(process_b, failures=FailurePlan.fail_once(["x"]))
        scheduler.run()
        history = scheduler.history()      # a certified ProcessSchedule

    The scheduler interleaves processes round-robin (override with
    ``interleaving``), applying the admission rules R1-R7 before every
    activity dispatch.  :meth:`step` advances a single dispatch, which
    the discrete-event simulation uses to drive virtual time.
    """

    _instance_ids = itertools.count(1)

    def __init__(
        self,
        registry: Optional[SubsystemRegistry] = None,
        conflicts: Optional[ConflictRelation] = None,
        rules: Optional[SchedulerRules] = None,
        wal: Optional[WriteAheadLog] = None,
        use_semantic_conflicts: bool = True,
        auto_provision: bool = True,
        interleaving: Optional[Callable[[List[str]], List[str]]] = None,
        resilience: Optional[ResilienceManager] = None,
        checkpoint_interval: Optional[int] = None,
        admission: Optional[AdmissionConfig] = None,
        watchdogs: Optional[WatchdogConfig] = None,
        trace: Optional[object] = None,
        metrics: Optional[MetricsRegistry] = None,
        coordinator: Optional[TwoPhaseCoordinator] = None,
    ) -> None:
        self.registry = registry if registry is not None else SubsystemRegistry()
        self.rules = rules if rules is not None else SchedulerRules()
        self.wal = wal
        #: Optional resilience layer: timeouts, retry backoff, circuit
        #: breakers and the ◁-degradation hook.  ``None`` preserves the
        #: paper's bare protocol (immediate retries, no breakers).
        self.resilience = resilience
        self._auto_provision = auto_provision
        explicit = conflicts if conflicts is not None else NoConflicts()
        if use_semantic_conflicts:
            self.conflicts: ConflictRelation = UnionConflicts(
                (explicit, self.registry.semantic_conflicts())
            )
        else:
            self.conflicts = explicit
        self._managed: Dict[str, ManagedProcess] = {}
        self._log: List[_LogEntry] = []
        #: Injectable atomic-commitment coordinator: the federation
        #: layer substitutes a cross-shard coordinator here so pivot
        #: groups spanning shards commit through the message-based
        #: protocol instead of the local fast path.
        self._coordinator = (
            coordinator
            if coordinator is not None
            else TwoPhaseCoordinator(wal=wal)
        )
        self._interleaving = interleaving or (lambda ids: ids)
        self._closed = False
        #: Auto-checkpoint the WAL every N scheduler appends (``None``
        #: disables).  Checkpoints compact the log so restart replay
        #: cost is bounded by the interval, not total history length.
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be a positive int")
        self.checkpoint_interval = checkpoint_interval
        self._appends_since_checkpoint = 0
        #: While True, :meth:`_wal` is a no-op: recovery replays
        #: already-logged history through the normal bookkeeping paths,
        #: and re-appending those records would duplicate the log.
        self._replaying = False
        #: ``("activity", log_position)`` / ``("termination", event)``
        #: entries in global execution order — the source of
        #: :meth:`history`.
        self._timeline: List[Tuple[str, object]] = []
        self._termination_order: List[object] = []
        #: Paranoid-mode watermark: prefixes below it are certified.
        self._paranoid_upto = 0
        #: Metrics registry: one counter system shared by the perf
        #: facade, the admission layer and external exporters.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Perf counters of the incremental core (see core/perf.py) —
        #: a facade over :attr:`metrics`.
        self.perf = PerfCounters(registry=self.metrics)
        #: Incrementally maintained serialization graph + dependency
        #: indexes (see core/sergraph.py) — updated on every
        #: effectiveness transition of the log, never bulk-invalidated.
        self._graph = IncrementalSerializationGraph(
            self.conflicts, perf=self.perf
        )
        #: Conflict-relation version the graph was built against; a
        #: drift (mid-run declare/retract/register) forces a rebuild.
        self._conflict_version = self.conflicts.version
        #: Incremental paranoid-mode certifier and its timeline
        #: watermark (entries below it are certified).
        self._certifier = None
        self._certified_timeline = 0
        #: Bumped on every effectiveness transition of the log (append,
        #: rollback, compensation pairing) — admission caches keyed on
        #: it stay valid across the deferral storms in between.
        self._history_version = 0
        #: Bumped whenever the set of non-terminal processes changes
        #: (submission or terminal transition).
        self._active_version = 0
        #: Memoised forward-recovery potential edges of the recorded
        #: state (see :meth:`_potential_edges_base`).
        self._potential_cache: Optional[
            Tuple[tuple, Dict[str, FrozenSet[str]], Set[Tuple[str, str]]]
        ] = None
        #: Observers notified of scheduler events (see add_listener).
        self._listeners: List[Callable[[str, Dict[str, object]], None]] = []
        #: Latency-spike overhead per log position (virtual time the
        #: simulation runner adds on top of the service duration).
        self._latencies: Dict[int, float] = {}
        #: Admission control (``None`` keeps the unbounded front door)
        #: and the starvation/livelock watchdogs (``None`` disables).
        self.admission = admission
        self.watchdogs = watchdogs
        self._admission_queue: Deque[QueuedArrival] = deque()
        #: Instance ids reserved for queued offers (not yet submitted).
        self._reserved_ids: Set[str] = set()
        self._draining = False
        #: Monotone dispatch-round counter (watchdog time base).
        self._round = 0
        self._admission_counter = itertools.count(1)
        #: Instance ids the load shedder cancelled, in shed order.
        self.shed_ids: List[str] = []
        #: Diagnostic counters surfaced by benchmarks.
        self.stats: Dict[str, int] = {
            "dispatched": 0,
            "deferred": 0,
            "victim_aborts": 0,
            "cascading_aborts": 0,
            "hardenings": 0,
            "2pc_groups": 0,
            "degradations": 0,
            "retries": 0,
            "offered": 0,
            "admitted": 0,
            "queued": 0,
            "rejected": 0,
            "shed": 0,
            "starvation_boosts": 0,
            "livelock_escalations": 0,
        }
        #: Last blocking decision per instance id (explainability; see
        #: :meth:`explain` and ``repro.obs.explain``).  Rejected offers
        #: are keyed by the offered process id — they never get an
        #: instance.
        self.decisions: Dict[str, DecisionRecord] = {}
        #: Structured trace bus (``None`` → untraced; emission is
        #: guarded on ``trace.enabled`` so a disabled bus costs one
        #: attribute test on the hot path).
        self._trace: Optional[object] = None
        if trace is not None:
            self.attach_trace(trace)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(
        self,
        process: Process,
        instance_id: Optional[str] = None,
        failures: Optional[FailurePolicy] = None,
    ) -> str:
        """Admit a process for execution; returns its instance id.

        Only well-formed processes (guaranteed termination) are
        admitted — :class:`~repro.core.instance.ProcessInstance`
        validates the flex structure on construction.
        """
        if self._closed:
            raise SchedulerClosedError("scheduler has been shut down")
        identifier = instance_id or self._fresh_instance_id(process)
        if identifier in self._managed:
            raise SchedulerError(f"instance id {identifier!r} already in use")
        if self._auto_provision:
            self._provision_services(process)
        process = process.renamed(identifier)
        now = self._now()
        managed = ManagedProcess(
            instance=ProcessInstance(process, instance_id=identifier),
            failures=failures or NoFailures(),
            offered_at=now,
            admitted_at=now,
            admission_seq=next(self._admission_counter),
            last_progress_round=self._round,
        )
        self._managed[identifier] = managed
        self._reserved_ids.discard(identifier)
        self._graph.add_process(identifier)
        self._active_version += 1
        self._notify("submitted", process=identifier)
        self._wal({"type": "process_submit", "process": identifier})
        return identifier

    def _fresh_instance_id(self, process: Process) -> str:
        """An unused instance id for ``process`` (managed or reserved)."""
        taken = self._managed.keys() | self._reserved_ids
        if process.process_id not in taken:
            return process.process_id
        while True:
            candidate = f"{process.process_id}#{next(self._instance_ids)}"
            if candidate not in taken:
                return candidate

    def _now(self) -> float:
        """Current virtual time (0 without a resilience clock)."""
        if self.resilience is not None:
            return self.resilience.now
        return 0.0

    def _provision_services(self, process: Process) -> None:
        """Register no-op services for activities lacking a provider.

        Abstract scenarios (the paper's figures) declare activities with
        conflicts but without real services; provisioning keeps them
        runnable without boilerplate.
        """
        for definition in process.activities():
            subsystem = self._subsystem_for(definition, create=True)
            service = definition.service
            assert service is not None
            if not subsystem.provides(service):
                subsystem.register(noop_service(service))
            if definition.is_compensatable:
                inverse = definition.compensation_service
                assert inverse is not None
                if not subsystem.provides(inverse):
                    subsystem.register(noop_service(inverse))

    def _subsystem_for(self, definition: ActivityDef, create: bool = False) -> Subsystem:
        name = definition.subsystem
        if name in self.registry:
            return self.registry.get(name)
        service = definition.service
        assert service is not None
        for subsystem in self.registry.subsystems():
            if subsystem.provides(service):
                return subsystem
        if create:
            subsystem = self.registry.provision(name)
            if self.resilience is not None:
                # Crash-stopped subsystems recover by the clock; share
                # the resilience layer's virtual clock so outages end.
                subsystem.clock = self.resilience.clock
            if self._trace is not None:
                subsystem.trace = self._trace
            return subsystem
        raise SchedulerError(
            f"no subsystem for activity {definition.name!r} "
            f"(subsystem {name!r}, service {service!r})"
        )

    # ------------------------------------------------------------------
    # admission control & load shedding
    # ------------------------------------------------------------------

    def offer(
        self,
        process: Process,
        failures: Optional[FailurePolicy] = None,
        now: Optional[float] = None,
    ) -> AdmissionDecision:
        """The bounded front door: admit, queue or reject a process.

        Without an :class:`AdmissionConfig` this is plain
        :meth:`submit`.  With one, the offer is admitted while capacity
        is free, parked in the bounded admission queue otherwise, and
        rejected when the queue is full — under the
        ``shed-youngest-brec`` policy the youngest still
        backward-recoverable *active* process is cancelled first to
        make room (never an F-REC one; see :meth:`shed`).

        Rejections are decisions, not errors: a rejected process was
        never submitted, so it leaves no WAL record, no locks and no
        history — the cheap side of the paper's recovery asymmetry.
        """
        if self._closed:
            raise SchedulerClosedError("scheduler has been shut down")
        when = self._now() if now is None else now
        self.stats["offered"] += 1
        self._notify("offered", process=process.process_id)
        if self.admission is None:
            identifier = self.submit(process, failures=failures)
            admitted = self._managed[identifier]
            admitted.offered_at = when
            admitted.admitted_at = when
            self.stats["admitted"] += 1
            return AdmissionDecision(
                AdmissionOutcome.ADMITTED, identifier, "unbounded admission"
            )
        if self._draining:
            return self._reject(process, "draining: admission closed")
        backpressure = self._backpressure_reason()
        if backpressure is not None:
            return self._reject(process, backpressure)
        cfg = self.admission
        if (
            self._has_capacity()
            and not self._admission_queue
            and not self._admission_paused()
        ):
            identifier = self._admit(process, failures, when, when)
            return AdmissionDecision(
                AdmissionOutcome.ADMITTED, identifier, "capacity available"
            )
        if len(self._admission_queue) < cfg.max_queue_depth:
            return self._enqueue(process, failures, when)
        if cfg.shed_policy == "shed-youngest-brec":
            victim = self._shed_victim()
            if victim is not None:
                self.shed(
                    victim.process_id,
                    reason=(
                        f"admission queue full (depth "
                        f"{len(self._admission_queue)}); shedding youngest "
                        f"B-REC to make room for {process.process_id!r}"
                    ),
                )
                # The freed slot goes to the *head* of the queue, not to
                # the newcomer — shedding must not become queue jumping.
                self.pump_admission(now=when)
                if len(self._admission_queue) < cfg.max_queue_depth:
                    return self._enqueue(process, failures, when)
        return self._reject(
            process,
            f"admission queue full (depth {len(self._admission_queue)})",
        )

    def pump_admission(self, now: Optional[float] = None) -> List[str]:
        """Evict over-age queue entries, then admit while capacity lasts.

        Returns the instance ids admitted by this pump.  Drivers call
        it once per dispatch round; admission counts as progress.
        """
        if self.admission is None:
            return []
        when = self._now() if now is None else now
        cfg = self.admission
        if cfg.max_queue_age is not None:
            kept: Deque[QueuedArrival] = deque()
            while self._admission_queue:
                entry = self._admission_queue.popleft()
                age = when - entry.offered_at
                if age > cfg.max_queue_age:
                    self._reject_queued(
                        entry,
                        f"queue age {age:.3f} exceeded {cfg.max_queue_age}",
                    )
                else:
                    kept.append(entry)
            self._admission_queue = kept
        admitted: List[str] = []
        if self._draining or self._admission_paused():
            return admitted
        while self._admission_queue and self._has_capacity():
            entry = self._admission_queue.popleft()
            admitted.append(
                self._admit(
                    entry.process,
                    entry.failures,
                    entry.offered_at,
                    when,
                    instance_id=entry.instance_id,
                )
            )
        return admitted

    def _admit(
        self,
        process: Process,
        failures: Optional[FailurePolicy],
        offered_at: float,
        now: float,
        instance_id: Optional[str] = None,
    ) -> str:
        identifier = self.submit(
            process, instance_id=instance_id, failures=failures
        )
        managed = self._managed[identifier]
        managed.offered_at = offered_at
        managed.admitted_at = now
        self.stats["admitted"] += 1
        self._notify(
            "admitted",
            process=identifier,
            waited=now - offered_at,
        )
        return identifier

    def _enqueue(
        self,
        process: Process,
        failures: Optional[FailurePolicy],
        when: float,
    ) -> AdmissionDecision:
        entry = QueuedArrival(
            process=process,
            failures=failures,
            offered_at=when,
            instance_id=self._fresh_instance_id(process),
        )
        self._reserved_ids.add(entry.instance_id)
        self._admission_queue.append(entry)
        self.stats["queued"] += 1
        self._notify(
            "queued",
            process=entry.instance_id,
            depth=len(self._admission_queue),
        )
        return AdmissionDecision(
            AdmissionOutcome.QUEUED,
            entry.instance_id,
            f"queued at depth {len(self._admission_queue)}",
        )

    def _reject(self, process: Process, reason: str) -> AdmissionDecision:
        self.stats["rejected"] += 1
        self.decisions[process.process_id] = DecisionRecord(
            kind="rejected",
            rule="admission",
            reason=reason,
            process=process.process_id,
        )
        self._notify(
            "rejected",
            process=process.process_id,
            reason=reason,
            rule="admission",
        )
        return AdmissionDecision(AdmissionOutcome.REJECTED, None, reason)

    def _reject_queued(self, entry: QueuedArrival, reason: str) -> None:
        self._reserved_ids.discard(entry.instance_id)
        self.stats["rejected"] += 1
        self.decisions[entry.instance_id] = DecisionRecord(
            kind="rejected",
            rule="admission",
            reason=reason,
            process=entry.instance_id,
        )
        self._notify(
            "rejected",
            process=entry.instance_id,
            reason=reason,
            rule="admission",
        )

    def shed(self, instance_id: str, reason: str = "load shed") -> None:
        """Cancel an admitted process to relieve overload.

        **Invariant (the paper's recovery asymmetry):** only a process
        still in ``B-REC`` may be shed — its cancellation is pure
        backward recovery through the existing abort path, so it is
        fully compensated and the history stays PRED.  Once any pivot
        committed the process is in ``F-REC`` and Definition 5 obliges
        the scheduler to drive it forward to ``C(P)``; attempting to
        shed it is a protocol bug and raises
        :class:`~repro.errors.CorrectnessViolation`.
        """
        managed = self.managed(instance_id)
        if managed.status.is_terminal:
            raise ProcessAbortedError(instance_id, "already terminated")
        if managed.is_hardened:
            raise CorrectnessViolation(
                f"refusing to shed {instance_id!r}: a pivot already "
                f"committed (F-REC) — the process must run forward to C(P)"
            )
        managed.shed = True
        self.shed_ids.append(instance_id)
        self.stats["shed"] += 1
        self.decisions[instance_id] = DecisionRecord(
            kind="shed", rule="load-shed", reason=reason, process=instance_id
        )
        self._notify(
            "shed", process=instance_id, reason=reason, rule="load-shed"
        )
        self._begin_abort(managed, reason=f"load shed: {reason}", cascade=False)

    def _shed_victim(self) -> Optional[ManagedProcess]:
        """The youngest sheddable (B-REC, *blocked*) process, if any.

        Only WAITING processes are eligible: cancelling work that is
        actively progressing would churn admission — each admitted
        replacement is younger still and would be the next victim.
        Shedding a blocked B-REC process instead frees its locks and
        its capacity slot while its cancellation is still pure rollback.
        """
        candidates = [
            managed
            for managed in self._managed.values()
            if managed.status is ManagedStatus.WAITING
            and not managed.is_hardened
            and not managed.abort_pending
            and not managed.shed
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda managed: managed.admission_seq)

    def drain(self) -> None:
        """Enter quiesce mode: stop admission, finish what is in flight.

        Every queued offer is rejected (it was never submitted, so
        nothing needs compensation), subsequent offers are rejected at
        the door, and the admitted processes run to their completion
        ``C(P)`` through the normal scheduling loop — keep calling
        :meth:`run` (or stepping) until :attr:`drained`.
        """
        if self._draining:
            return
        self._draining = True
        self._notify("draining", pending=len(self._admission_queue))
        while self._admission_queue:
            self._reject_queued(
                self._admission_queue.popleft(), "draining: admission closed"
            )

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def drained(self) -> bool:
        """Quiesced: draining was requested and all work reached C(P)."""
        return self._draining and self.all_terminated()

    def queue_depth(self) -> int:
        """Offers currently parked in the admission queue."""
        return len(self._admission_queue)

    def _has_capacity(self) -> bool:
        cfg = self.admission
        if cfg is None or cfg.max_active is None:
            return True
        # Shed processes no longer count against capacity: their
        # remaining work is bounded backward recovery, and the slot
        # they held funds the admission that relieves the overload.
        active = sum(
            1
            for managed in self._managed.values()
            if not managed.status.is_terminal and not managed.shed
        )
        return active < cfg.max_active

    def _admission_paused(self) -> bool:
        """Livelock escalation quiesces admission until the offender
        terminates — serial execution without starving its cascade."""
        return any(
            managed.serialized and not managed.status.is_terminal
            for managed in self._managed.values()
        )

    def _backpressure_reason(self) -> Optional[str]:
        cfg = self.admission
        if (
            cfg is None
            or cfg.breaker_throttle_fraction is None
            or self.resilience is None
        ):
            return None
        board = self.resilience.breakers
        total = len(board)
        if total == 0:
            return None
        open_count = sum(1 for _ in board.open_breakers())
        if open_count / total >= cfg.breaker_throttle_fraction:
            return (
                f"backpressure: {open_count}/{total} circuit breakers open"
            )
        return None

    # ------------------------------------------------------------------
    # starvation / livelock watchdogs
    # ------------------------------------------------------------------

    def dispatch_order(self) -> List[str]:
        """Non-terminal instance ids in dispatch-priority order.

        Advances the watchdog round: long-WAITING processes age into a
        priority boost (starvation watchdog) and processes stuck in
        retry/branch-switch loops escalate to serial execution
        (livelock watchdog).  The caller's ``interleaving`` ordering is
        preserved within each priority class, so drivers that do not
        care about watchdogs see the familiar order.
        """
        self._round += 1
        self._check_watchdogs()
        order = self._interleaving(
            [
                pid
                for pid, managed in self._managed.items()
                if not managed.status.is_terminal
            ]
        )

        def priority(pid: str) -> Tuple[int, int]:
            managed = self._managed[pid]
            return (
                0 if managed.serialized else 1,
                0 if managed.boosted else 1,
            )

        return sorted(order, key=priority)

    def _check_watchdogs(self) -> None:
        cfg = self.watchdogs
        if cfg is None:
            return
        for managed in self._managed.values():
            if managed.status.is_terminal:
                continue
            starved_for = self._round - managed.last_progress_round
            if (
                cfg.starvation_rounds is not None
                and not managed.boosted
                and starved_for > cfg.starvation_rounds
            ):
                managed.boosted = True
                self.stats["starvation_boosts"] += 1
                self._notify(
                    "starved",
                    process=managed.process_id,
                    rounds=starved_for,
                    reason=managed.waiting_reason,
                )
            if (
                cfg.livelock_flaps is not None
                and not managed.serialized
                and managed.flaps >= cfg.livelock_flaps
            ):
                managed.serialized = True
                self.stats["livelock_escalations"] += 1
                self._notify(
                    "livelock",
                    process=managed.process_id,
                    flaps=managed.flaps,
                )

    def _note_flap(self, managed: ManagedProcess) -> None:
        """Count one failure/degradation toward livelock detection."""
        managed.flaps += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def managed(self, instance_id: str) -> ManagedProcess:
        try:
            return self._managed[instance_id]
        except KeyError:
            raise UnknownProcessError(
                f"no managed process {instance_id!r}"
            ) from None

    def statuses(self) -> Dict[str, ManagedStatus]:
        return {pid: managed.status for pid, managed in self._managed.items()}

    def instance_ids(self) -> List[str]:
        return list(self._managed)

    def is_terminated(self, instance_id: str) -> bool:
        return self.managed(instance_id).status.is_terminal

    def all_terminated(self) -> bool:
        return all(
            managed.status.is_terminal for managed in self._managed.values()
        )

    def history(self) -> ProcessSchedule:
        """The certified schedule produced so far.

        Contains every committed activity event (rolled-back prepared
        invocations are excluded — they never happened, atomically
        speaking) plus the termination events, in execution order.
        """
        schedule = ProcessSchedule(
            (managed.instance.process for managed in self._managed.values()),
            self.conflicts,
        )
        for kind, payload in self._timeline:
            if kind == "activity":
                entry = self._log[payload]  # type: ignore[index]
                if not entry.rolled_back:
                    schedule.append(entry.event)
            else:
                schedule.append(payload)  # type: ignore[arg-type]
        return schedule

    def timeline_length(self) -> int:
        """Number of timeline entries (simulation hook)."""
        return len(self._timeline)

    def timeline_event(self, index: int):
        """The event at a timeline position (simulation hook)."""
        kind, payload = self._timeline[index]
        if kind == "activity":
            return self._log[payload].event  # type: ignore[index]
        return payload

    def timeline_latency(self, index: int) -> float:
        """Injected latency-spike overhead of a timeline event."""
        kind, payload = self._timeline[index]
        if kind == "activity":
            return self._latencies.get(payload, 0.0)  # type: ignore[arg-type]
        return 0.0

    def step_instance(self, instance_id: str) -> bool:
        """Alias of :meth:`step` (uniform driver interface)."""
        return self.step(instance_id)

    def resolve_stall(self) -> None:
        """Public stall hook for external drivers (victim abort)."""
        self._resolve_stall()

    # ------------------------------------------------------------------
    # the scheduling loop
    # ------------------------------------------------------------------

    def run(self, max_rounds: int = 100_000) -> ProcessSchedule:
        """Run until every submitted process terminated.

        Returns the produced history.  Raises
        :class:`UnrecoverableStateError` if no progress is possible and
        no abort victim can be found (a protocol bug by construction).
        """
        rounds = 0
        while not (self.all_terminated() and not self._admission_queue):
            rounds += 1
            if rounds > max_rounds:
                raise SchedulerError(
                    f"no convergence after {max_rounds} scheduling rounds"
                )
            progressed = self.step_round()
            if not progressed:
                self._resolve_stall()
        return self.history()

    def step_round(self) -> bool:
        """One round-robin pass; returns whether any instance progressed."""
        progressed = bool(self.pump_admission())
        for pid in self.dispatch_order():
            managed = self._managed.get(pid)
            if managed is None or managed.status.is_terminal:
                continue
            if self.step(pid):
                progressed = True
        return progressed

    def step(self, instance_id: str) -> bool:
        """Try to advance one instance by one action; returns progress."""
        managed = self.managed(instance_id)
        if managed.status.is_terminal:
            return False
        progressed = self._step(managed)
        if progressed:
            # Progress resets the starvation watchdog for this instance.
            managed.last_progress_round = self._round
            managed.boosted = False
        return progressed

    def _step(self, managed: ManagedProcess) -> bool:
        instance_id = managed.process_id
        action = managed.instance.next_action()
        if action.type is ActionType.FINISHED:
            return self._try_terminate(managed)
        # Retry pacing: a failed invocation set a retry-not-before
        # deadline (backoff); until the virtual clock reaches it the
        # instance does not progress.  Stall resolution (or the DES
        # runner's wake-up events) advances time across the wait.
        if self.resilience is not None and not self.resilience.ready(
            instance_id
        ):
            return False
        if action.type is ActionType.COMPENSATE:
            return self._try_compensate(managed, action)
        return self._try_invoke(managed, action)

    # -- admission: forward activities -----------------------------------

    def _try_invoke(self, managed: ManagedProcess, action: Action) -> bool:
        assert action.activity is not None
        definition = managed.instance.definition(action.activity)
        pid = managed.process_id

        # Definition 5's temporal semantics: a successor may only start
        # after its predecessors *committed*.  While the process has a
        # prepared (deferred-commit, Lemma 1) non-compensatable group,
        # its continuation waits for that group to harden — which also
        # guarantees that a natively rolled-back pivot never has executed
        # successors, keeping every produced history a legal execution.
        # Without eager hardening the gate itself commits the group
        # lazily once Lemma 1's condition is met.
        if managed.prepared:
            blockers = self._active_predecessors(pid)
            if not blockers or not self.rules.guard_hardening:
                if self._harden(managed):
                    blockers = set()
            if managed.prepared:
                self._defer(
                    managed,
                    blockers,
                    f"deferred commit: {action.activity!r} waits for the "
                    f"prepared group "
                    f"{[p.activity_name for p in managed.prepared]} to commit",
                    rule="R4-deferred-commit",
                    activity=action.activity,
                    service=definition.service,
                )
                return False

        # Distinct conflicting processes suffice here (positions don't
        # matter for R5/R6 and Lemma 1), so ask the cheaper index query.
        assert definition.service is not None
        self.perf.index_lookups += 1
        active_conflicts = {
            other_pid
            for other_pid in self._graph_sync().conflicting_processes_after(
                definition.service, pid, -1
            )
            if not self._managed[other_pid].status.is_terminal
        }

        # R5/R6: conflicting predecessors that are currently recovering
        # will compensate their activities; wait for them (Lemma 3).
        recovering = {
            other_pid
            for other_pid in active_conflicts
            if self._managed[other_pid].instance.status
            in (InstanceStatus.RECOVERING, InstanceStatus.SWITCHING)
        }
        if recovering and self.rules.cascading_aborts:
            self._defer(
                managed,
                recovering,
                f"recovery priority: {sorted(recovering)} compensate before "
                f"{action.activity!r} may run",
                rule="R6-recovery-priority",
                activity=action.activity,
                service=definition.service,
            )
            return False

        # R3 (Lemma 1): every non-compensatable activity of P_j must
        # succeed the commit C_i of each process P_i that has a conflict
        # edge into P_j — whether from an earlier conflicting pair or
        # created by this very request.  Executing it earlier would let
        # P_i's recovery compensate an activity P_j's pivot depends on,
        # closing an irreducible cycle (Example 8), and would violate
        # Proc-REC 11.2's ordering of state-determining activities.
        if self.rules.defer_non_compensatable and not definition.is_compensatable:
            predecessors = self._active_predecessors(pid) | active_conflicts
            if predecessors:
                self._defer(
                    managed,
                    predecessors,
                    f"Lemma 1: non-compensatable {action.activity!r} "
                    f"deferred until active conflict predecessors "
                    f"{sorted(predecessors)} commit",
                    rule="R3-lemma1",
                    activity=action.activity,
                    service=definition.service,
                )
                return False

        # R2: never close a cycle — neither among the recorded conflict
        # edges nor through the forward-recovery paths that completing
        # the prefix would force (paper §3.5: the completed schedule of
        # every prefix must stay reducible, and completions introduce
        # conflicts S itself does not show).
        if self.rules.cycle_prevention:
            cycle = self._completion_cycle(managed, action.activity, definition)
            if cycle:
                self._defer(
                    managed,
                    cycle - {pid},
                    f"cycle prevention: executing {action.activity!r} would "
                    f"make the completed prefix irreducible (cycle "
                    f"{sorted(cycle)})",
                    rule="R2-cycle-prevention",
                    activity=action.activity,
                    service=definition.service,
                    detail={"cycle": sorted(cycle)},
                )
                return False

        # Degradation hook: an open circuit breaker on the preferred
        # activity's service means the subsystem is known to be failing
        # — switch to the next ◁-alternative proactively instead of
        # burning the retry budget against it.  Where no alternative
        # exists (or unwinding would cross a hardened pivot) the
        # process waits out the breaker's open window instead;
        # guaranteed termination is preserved either way.
        manager = self.resilience
        if manager is not None and not manager.breaker_allows(
            definition.service  # type: ignore[arg-type]
        ):
            if managed.instance.can_degrade():
                self._degrade(
                    managed,
                    action.activity,
                    definition.service,  # type: ignore[arg-type]
                    reason="circuit open",
                )
                return True
            manager.note_fast_fail(pid, definition.service)  # type: ignore[arg-type]
            self._defer(
                managed,
                set(),
                f"circuit open for service {definition.service!r}",
                rule="breaker-open",
                activity=action.activity,
                service=definition.service,
            )
            return False

        # Execute at the subsystem; non-compensatable activities are
        # held prepared (R4, deferred commit).
        subsystem = self._subsystem_for(definition)
        hold = not definition.is_compensatable
        timeout = (
            manager.timeout_for(definition.service)  # type: ignore[arg-type]
            if manager is not None
            else None
        )
        try:
            invocation = subsystem.invoke(
                definition.service,  # type: ignore[arg-type]
                params=definition.params,
                hold=hold,
                attempt=action.attempt,
                failures=managed.failures,
                timeout=timeout,
            )
        except WouldBlock as block:
            holders = self._processes_holding(block.holders) - {pid}
            self._defer(
                managed,
                holders or set(block.holders),
                f"lock wait on {block.key!r} held by {sorted(holders)}",
                rule="lock-wait",
                activity=action.activity,
                service=definition.service,
                detail={"lock": str(block.key)},
            )
            return False
        except TransactionAborted as failure:
            # A crash-stopped subsystem is a *transient* condition, not
            # a failed invocation: with the resilience layer active the
            # process degrades to a ◁-alternative if one is reachable,
            # or waits out the outage (the clock guarantees it ends).
            if (
                isinstance(failure, SubsystemUnavailable)
                and manager is not None
                and failure.retry_after != float("inf")
            ):
                manager.on_unavailable(
                    pid,
                    definition.service,  # type: ignore[arg-type]
                    failure,
                )
                if managed.instance.can_degrade():
                    self._degrade(
                        managed,
                        action.activity,
                        definition.service,  # type: ignore[arg-type]
                        reason="subsystem unavailable",
                    )
                    return True
                self._defer(
                    managed,
                    set(),
                    f"subsystem down for service {definition.service!r}",
                    rule="unavailable",
                    activity=action.activity,
                    service=definition.service,
                )
                return False
            will_retry = definition.is_retriable
            if manager is not None:
                manager.on_failure(
                    pid,
                    definition.service,  # type: ignore[arg-type]
                    action.attempt,
                    failure,
                    will_retry,
                )
                if will_retry:
                    self.stats["retries"] += 1
                # Retry budget exhausted on a retriable activity: take
                # the ◁-alternative if one is reachable, rather than
                # hammering a subsystem that keeps failing.
                if (
                    will_retry
                    and manager.policy_for(
                        definition.service  # type: ignore[arg-type]
                    ).exhausted(action.attempt)
                    and managed.instance.can_degrade()
                ):
                    self._degrade(
                        managed,
                        action.activity,
                        definition.service,  # type: ignore[arg-type]
                        reason="retry budget exhausted",
                    )
                    return True
            managed.instance.on_failed(action.activity)
            self._note_flap(managed)
            self._clear_wait(managed)
            self._notify(
                "failed",
                process=pid,
                activity=action.activity,
                attempt=action.attempt,
            )
            self._wal(
                {
                    "type": "activity_failed",
                    "process": pid,
                    "activity": action.activity,
                    "attempt": action.attempt,
                }
            )
            return True
        if manager is not None:
            manager.on_success(pid, definition.service)  # type: ignore[arg-type]

        position = self._record_event(managed, action.activity, Direction.FORWARD)
        if invocation.latency:
            self._latencies[position] = invocation.latency
        if hold:
            managed.prepared.append(
                _PreparedActivity(
                    activity_name=action.activity,
                    subsystem=subsystem,
                    txn_id=invocation.txn_id,
                    log_position=position,
                )
            )
        managed.instance.on_committed(action.activity)
        self._clear_wait(managed)
        self.stats["dispatched"] += 1
        self._after_event()
        return True

    # -- admission: compensations ------------------------------------------

    def _try_compensate(self, managed: ManagedProcess, action: Action) -> bool:
        assert action.activity is not None
        definition = managed.instance.definition(action.activity)
        pid = managed.process_id

        # R5 (Lemma 2): every later conflicting, still-effective activity
        # of another active process must be compensated first — trigger
        # the cascading aborts and wait.
        forward_position = self._last_effective_position(pid, action.activity)
        dependents = self._conflicting_successors(
            pid, definition.service, forward_position
        )
        if dependents and self.rules.cascading_aborts:
            cascaded = False
            for other_pid in sorted(dependents):
                other = self._managed[other_pid]
                if not other.abort_pending and not other.status.is_terminal:
                    self._begin_abort(
                        other,
                        reason=(
                            f"cascading abort: {pid} compensates "
                            f"{action.activity!r} which {other_pid} depends on"
                        ),
                        cascade=True,
                    )
                    cascaded = True
            self._defer(
                managed,
                dependents,
                f"Lemma 2: dependents {sorted(dependents)} must compensate "
                f"before {action.activity!r}^-1",
                rule="R5-lemma2",
                activity=action.activity,
                service=definition.service,
            )
            # Triggering a cascade is progress even though this
            # compensation itself must wait.
            return cascaded

        subsystem = self._subsystem_for(definition)
        inverse = definition.compensation_service
        assert inverse is not None
        manager = self.resilience
        timeout = (
            manager.timeout_for(inverse) if manager is not None else None
        )
        try:
            subsystem.invoke(
                inverse,
                params=definition.params,
                hold=False,
                attempt=action.attempt,
                failures=managed.failures,
                timeout=timeout,
            )
        except WouldBlock as block:
            holders = self._processes_holding(block.holders) - {pid}
            self._defer(
                managed,
                holders or set(block.holders),
                f"compensation lock wait on {block.key!r}",
                rule="lock-wait",
                activity=action.activity,
                service=inverse,
                detail={"lock": str(block.key)},
            )
            return False
        except TransactionAborted as failure:
            # Compensations are retriable by definition: count the
            # failure and try again next round (paced by backoff when
            # the resilience layer is active — compensations must run,
            # so breakers never refuse them, but retries still pace).
            if (
                isinstance(failure, SubsystemUnavailable)
                and manager is not None
                and failure.retry_after != float("inf")
            ):
                # Transient outage: the compensation is not failed, the
                # process just waits for the subsystem to recover.
                manager.on_unavailable(pid, inverse, failure)
                self._defer(
                    managed,
                    set(),
                    f"subsystem down for compensation {inverse!r}",
                    rule="unavailable",
                    activity=action.activity,
                    service=inverse,
                )
                return False
            if manager is not None:
                manager.on_failure(
                    pid, inverse, action.attempt, failure, will_retry=True
                )
                self.stats["retries"] += 1
            managed.instance.on_failed(action.activity)
            self._note_flap(managed)
            self._wal(
                {
                    "type": "compensation_failed",
                    "process": pid,
                    "activity": action.activity,
                    "attempt": action.attempt,
                }
            )
            return True
        if manager is not None:
            manager.on_success(pid, inverse)

        self._record_event(managed, action.activity, Direction.COMPENSATION)
        managed.instance.on_committed(action.activity)
        self._clear_wait(managed)
        self._after_event()
        return True

    # -- termination --------------------------------------------------------

    def _try_terminate(self, managed: ManagedProcess) -> bool:
        pid = managed.process_id
        final = managed.instance.status
        if final is InstanceStatus.COMMITTED:
            # R7: wait for all conflicting predecessors to terminate.
            if self.rules.commit_ordering:
                predecessors = self._active_predecessors(pid)
                if predecessors:
                    self._defer(
                        managed,
                        predecessors,
                        f"commit ordering: C({pid}) waits for "
                        f"{sorted(predecessors)}",
                        rule="R7-commit-ordering",
                    )
                    return False
            if not self._harden(managed):
                return False
            managed.status = ManagedStatus.COMMITTED
            self._active_version += 1
            self._timeline.append(("termination", CommitEvent(pid)))
            self._termination_order.append(CommitEvent(pid))
            self._notify("terminated", process=pid, status="committed")
            self._wal({"type": "process_commit", "process": pid})
        else:
            # B-REC abort: roll back any prepared (never-hardened)
            # non-compensatable invocations natively.
            self._rollback_prepared(managed)
            managed.status = ManagedStatus.ABORTED
            self._active_version += 1
            self._timeline.append(("termination", AbortEvent(pid)))
            self._termination_order.append(AbortEvent(pid))
            self._notify("terminated", process=pid, status="aborted")
            self._wal({"type": "process_abort", "process": pid})
        self._clear_wait(managed)
        self._after_event(validate=False)
        return True

    # -- aborts ----------------------------------------------------------------

    def abort(self, instance_id: str, reason: str = "requested") -> None:
        """Request the abort of a process (guaranteed-termination abort).

        The completion ``C(P)`` executes through the normal scheduling
        loop; call :meth:`run` (or keep stepping) to drain it.
        """
        managed = self.managed(instance_id)
        if managed.status.is_terminal:
            raise ProcessAbortedError(instance_id, "already terminated")
        self._begin_abort(managed, reason=reason, cascade=False)

    def _begin_abort(
        self, managed: ManagedProcess, reason: str, cascade: bool
    ) -> None:
        # Until C_i is recorded the process counts as active
        # (Definition 8 2(b)) — a logically finished instance can still
        # be caught by a cascading abort and re-enters recovery.
        if managed.abort_pending or managed.status.is_terminal:
            return
        managed.abort_pending = True
        managed.abort_reason = reason
        # Keep the more specific shed/victim decision when this abort
        # realises one; otherwise record the abort itself.
        existing = self.decisions.get(managed.process_id)
        if existing is None or existing.kind == "deferred":
            self.decisions[managed.process_id] = DecisionRecord(
                kind="abort",
                rule="abort",
                reason=reason,
                process=managed.process_id,
                detail={"cascade": cascade},
            )
        self._notify(
            "abort_begun",
            process=managed.process_id,
            reason=reason,
            cascade=cascade,
        )
        if cascade:
            self.stats["cascading_aborts"] += 1
        hardened = frozenset(managed.hardened)
        # Prepared-but-unhardened non-compensatables are rolled back
        # natively, so the completion must not forward-recover past them.
        self._rollback_prepared(managed)
        managed.instance.request_abort(hardened=hardened)
        self._clear_wait(managed)
        self._wal(
            {
                "type": "abort_requested",
                "process": managed.process_id,
                "reason": reason,
                "cascade": cascade,
            }
        )

    def _rollback_prepared(self, managed: ManagedProcess) -> None:
        if managed.prepared:
            # Rolling back rewrites the recorded past: every prefix must
            # be re-certified in paranoid mode (the incremental
            # certifier is discarded); the serialization graph only
            # *loses* the rolled-back events and is updated in place.
            self._reset_certifier()
        for prepared in managed.prepared:
            prepared.subsystem.rollback_prepared(prepared.txn_id)
            self._mark_rolled_back(prepared.log_position)
            self._wal(
                {
                    "type": "activity_rollback",
                    "process": managed.process_id,
                    "activity": prepared.activity_name,
                    "txn": prepared.txn_id,
                }
            )
        managed.prepared.clear()

    # -- degradation (resilience hook) ---------------------------------------------

    def _degrade(
        self,
        managed: ManagedProcess,
        activity_name: Optional[str],
        service: str,
        reason: str,
    ) -> None:
        """Proactively switch the instance to its next ◁-alternative.

        The flex structure's preference order becomes the degradation
        policy: the preferred activity is refused (circuit open, or its
        retry budget ran dry) and the instance backtracks to the
        innermost choice point with a remaining alternative — the
        compensations it queues flow through the normal scheduling
        rules, so the produced history stays PRED.
        """
        assert activity_name is not None
        managed.instance.degrade(activity_name)
        self._clear_wait(managed)
        self.stats["degradations"] += 1
        self._note_flap(managed)
        if self.resilience is not None:
            self.resilience.note_degradation(managed.process_id, service)
        self._notify(
            "degraded",
            process=managed.process_id,
            activity=activity_name,
            service=service,
            reason=reason,
        )
        self._wal(
            {
                "type": "degraded",
                "process": managed.process_id,
                "activity": activity_name,
                "service": service,
                "reason": reason,
            }
        )

    # -- hardening (R4) -----------------------------------------------------------

    def _maybe_harden_all(self) -> None:
        if not self.rules.eager_hardening:
            return
        for managed in self._managed.values():
            # Aborting processes harden too: the retriable activities of
            # an F-REC completion are prepared like any other
            # non-compensatable work and must eventually commit.
            if managed.status.is_terminal or not managed.prepared:
                continue
            if self.rules.guard_hardening and self._active_predecessors(
                managed.process_id
            ):
                continue
            # Hardening never changes the certified (offline) view —
            # admission already counted the prepared group as committed
            # when the activities executed — so it is always safe here.
            self._harden(managed)

    def _harden(self, managed: ManagedProcess) -> bool:
        """2PC-commit the process's prepared group; returns success."""
        if not managed.prepared:
            return True
        participants = [
            Participant(prepared.subsystem, prepared.txn_id)
            for prepared in managed.prepared
        ]
        group = self._coordinator.commit_group(
            participants, group_id=f"harden:{managed.process_id}"
        )
        self.stats["2pc_groups"] += 1
        if not group.committed:
            # A vetoed group is rolled back by the coordinator; the
            # invocations never happened, so the process aborts.  This
            # also rewrites the past, so re-certify from scratch.  The
            # rollback is durable: without the log records, a forward
            # re-execution of a vetoed leg (F-REC after the abort)
            # would be indistinguishable from the vetoed one in the
            # recovered timeline.
            self._reset_certifier()
            for prepared in managed.prepared:
                self._mark_rolled_back(prepared.log_position)
                self._wal(
                    {
                        "type": "activity_rollback",
                        "process": managed.process_id,
                        "activity": prepared.activity_name,
                        "txn": prepared.txn_id,
                    }
                )
            if managed.abort_pending:
                # The veto rolled back legs of an already-running
                # completion C(P) (the process was aborting when it
                # hardened, e.g. the retriable forward path of F-REC).
                # _begin_abort would no-op on abort_pending, leaving the
                # instance's stale pending path to skip the rolled-back
                # activities — silently losing forward work the history
                # then cannot explain.  Re-plan the completion from the
                # surviving committed state instead: the rolled-back
                # (retriable) legs re-execute.  Any leg the coordinator
                # could not reach (the veto cause) is still prepared and
                # holds its locks — apply the abort decision to it
                # directly, or the re-executed activity deadlocks on its
                # own orphan (presumed abort delivers the same outcome).
                for prepared in managed.prepared:
                    try:
                        prepared.subsystem.rollback_prepared(
                            prepared.txn_id
                        )
                    except SubsystemError:
                        pass  # leg already resolved by the coordinator
                managed.prepared.clear()
                managed.instance.request_abort(
                    hardened=frozenset(managed.hardened)
                )
                self._clear_wait(managed)
            else:
                managed.prepared.clear()
                self._begin_abort(
                    managed,
                    reason=f"2PC group vetoed by {group.veto}",
                    cascade=False,
                )
            return False
        for prepared in managed.prepared:
            managed.hardened.add(prepared.activity_name)
        managed.prepared.clear()
        self.stats["hardenings"] += 1
        self._notify(
            "hardened",
            process=managed.process_id,
            group=group.group_id,
        )
        self._wal(
            {
                "type": "hardened",
                "process": managed.process_id,
                "group": group.group_id,
            }
        )
        return True

    # -- stall resolution ----------------------------------------------------------

    def _resolve_stall(self) -> None:
        """No instance progressed: break a deferral deadlock.

        With an active resilience layer the stall may simply mean every
        instance is waiting on the virtual clock (backoff windows, open
        breakers); then time is advanced to the next deadline instead
        of sacrificing a victim.  Under the discrete-event runner the
        clock is externally driven and this advance is a no-op — the
        runner schedules the wake-up events itself.

        Victim selection: a non-terminal, non-hardened process on a
        wait cycle (preferring fewest effective events); non-hardened
        processes are effectively in ``B-REC`` (their pivots are merely
        prepared) so their abort is pure backward recovery.
        """
        if (
            self.resilience is not None
            and self.resilience.advance_to_next_deadline()
        ):
            return
        waiting = {
            pid: managed
            for pid, managed in self._managed.items()
            if not managed.status.is_terminal
        }
        if not waiting:
            return
        cycle = self._find_wait_cycle(waiting)
        candidates = cycle if cycle else set(waiting)
        # Prefer an effectively backward-recoverable victim (nothing
        # hardened: its abort is pure rollback); fall back to a hardened
        # one, whose abort replaces the remaining — possibly blocked —
        # path by its guaranteed retriable forward-recovery path.
        victims = [
            waiting[pid]
            for pid in sorted(candidates)
            if not waiting[pid].is_hardened and not waiting[pid].abort_pending
        ]
        if not victims:
            victims = [
                waiting[pid]
                for pid in sorted(candidates)
                if not waiting[pid].abort_pending
            ]
        if not victims:
            raise UnrecoverableStateError(
                f"stalled with no abortable victim; waits: "
                f"{ {pid: sorted(m.waiting_for) for pid, m in waiting.items()} }"
            )
        victim = min(
            victims, key=lambda managed: len(managed.log_positions)
        )
        self.stats["victim_aborts"] += 1
        self.decisions[victim.process_id] = DecisionRecord(
            kind="victim",
            rule="deadlock-victim",
            reason=f"deadlock victim (cycle {sorted(candidates)})",
            process=victim.process_id,
            detail={"cycle": sorted(candidates)},
        )
        self._notify(
            "victim",
            process=victim.process_id,
            cycle=sorted(candidates),
            rule="deadlock-victim",
        )
        self._begin_abort(
            victim,
            reason=f"deadlock victim (cycle {sorted(candidates)})",
            cascade=False,
        )

    def _find_wait_cycle(
        self, waiting: Mapping[str, ManagedProcess]
    ) -> Set[str]:
        graph = {
            pid: {
                target
                for target in managed.waiting_for
                if target in waiting
            }
            for pid, managed in waiting.items()
        }
        # Kahn-style peel on out-degrees: strip nodes with no outgoing
        # wait edges in a single pass over the edges; what remains
        # participates in (or feeds) a cycle.  Equivalent to the
        # fixpoint strip but O(V + E) instead of O(V²) per round.
        out_degree = {pid: len(targets) for pid, targets in graph.items()}
        reverse: Dict[str, List[str]] = {pid: [] for pid in graph}
        for pid, targets in graph.items():
            for target in targets:
                reverse[target].append(pid)
        peel = deque(
            pid for pid, degree in out_degree.items() if degree == 0
        )
        alive = set(graph)
        while peel:
            node = peel.popleft()
            alive.discard(node)
            for waiter in reverse[node]:
                out_degree[waiter] -= 1
                if out_degree[waiter] == 0:
                    peel.append(waiter)
        return alive

    # -- dependency graph ------------------------------------------------------------
    #
    # All dependency queries answer from the incrementally maintained
    # serialization graph and its inverted indexes (core/sergraph.py).
    # The legacy full-log scans are kept as ``*_scan`` / ``_edges_recompute``
    # reference implementations: the shadow-check property tests prove
    # the incremental structures bit-identical to them after arbitrary
    # operation sequences.

    def _graph_sync(self) -> IncrementalSerializationGraph:
        """The incremental graph, rebuilt if the conflict relation moved."""
        version = self.conflicts.version
        if version != self._conflict_version:
            self._conflict_version = version
            self._rebuild_graph()
        return self._graph

    def _rebuild_graph(self) -> None:
        entries = [
            (
                position,
                entry.process_id,
                entry.event.activity.activity_name,
                entry.event.conflict_service,
                not entry.event.is_compensation,
            )
            for position, entry in enumerate(self._log)
            if entry.is_effective
        ]
        self._graph.rebuild(list(self._managed), entries)

    def _mark_rolled_back(self, position: int) -> None:
        """Mark a log entry rolled back and unindex it."""
        entry = self._log[position]
        if not entry.rolled_back:
            if entry.is_effective:
                self._graph_sync().remove_event(position)
            entry.rolled_back = True
            self._history_version += 1
            self._notify(
                "rolled_back",
                process=entry.process_id,
                activity=entry.event.activity.activity_name,
                position=position,
            )

    def _conflicting_predecessors(
        self, pid: str, service: Optional[str]
    ) -> List[Tuple[str, int]]:
        """Effective events of other processes conflicting with ``service``."""
        assert service is not None
        self.perf.index_lookups += 1
        return self._graph_sync().conflicting_events(service, pid)

    def _conflicting_predecessors_scan(
        self, pid: str, service: Optional[str]
    ) -> List[Tuple[str, int]]:
        """Reference full-log scan (shadow checks only)."""
        assert service is not None
        self.perf.log_scans += 1
        found: List[Tuple[str, int]] = []
        for position, entry in enumerate(self._log):
            if entry.process_id == pid or not entry.is_effective:
                continue
            if self.conflicts.conflicts(entry.event.conflict_service, service):
                found.append((entry.process_id, position))
        return found

    def _conflicting_successors(
        self, pid: str, service: Optional[str], after: Optional[int]
    ) -> Set[str]:
        """Processes whose conflicting work after ``after`` blocks a
        compensation at that position (Lemma 2's precondition).

        A later *forward* event blocks until it is compensated itself
        (an effective compensation is always an orphan — its partner
        forward event left the index when the pair cancelled — so every
        indexed event past ``after`` blocks).  Answered from the
        per-service index: only processes whose *latest* conflicting
        position exceeds ``after`` qualify.
        """
        assert service is not None
        start = -1 if after is None else after
        self.perf.index_lookups += 1
        graph = self._graph_sync()
        return {
            other_pid
            for other_pid in graph.conflicting_processes_after(
                service, pid, start
            )
            if not self._managed[other_pid].status.is_terminal
        }

    def _conflicting_successors_scan(
        self, pid: str, service: Optional[str], after: Optional[int]
    ) -> Set[str]:
        """Reference full-log scan (shadow checks only)."""
        assert service is not None
        start = -1 if after is None else after
        self.perf.log_scans += 1
        dependents: Set[str] = set()
        for position, entry in enumerate(self._log):
            if position <= start or entry.process_id == pid:
                continue
            if not entry.is_effective:
                continue
            if (
                entry.event.is_compensation
                and entry.compensates is not None
                and entry.compensates > start
            ):
                continue
            other = self._managed[entry.process_id]
            if other.status.is_terminal:
                continue
            if self.conflicts.conflicts(entry.event.conflict_service, service):
                dependents.add(entry.process_id)
        return dependents

    def _last_effective_position(
        self, pid: str, activity_name: str
    ) -> Optional[int]:
        self.perf.index_lookups += 1
        return self._graph_sync().last_forward_position(pid, activity_name)

    def _last_effective_position_scan(
        self, pid: str, activity_name: str
    ) -> Optional[int]:
        """Reference backwards scan (shadow checks only)."""
        self.perf.log_scans += 1
        for position in range(len(self._log) - 1, -1, -1):
            entry = self._log[position]
            if (
                entry.process_id == pid
                and entry.event.activity.activity_name == activity_name
                and not entry.event.is_compensation
                and not entry.rolled_back
                and not entry.compensated
            ):
                return position
        return None

    def _edges(self) -> Dict[str, Set[str]]:
        """Current process serialization graph over effective events.

        The incrementally maintained graph — callers only read it, or
        copy before extending.
        """
        return self._graph_sync().adjacency()

    def _edges_recompute(self) -> Dict[str, Set[str]]:
        """Reference O(E²) pairwise rebuild (shadow checks only)."""
        self.perf.log_scans += 1
        graph: Dict[str, Set[str]] = {pid: set() for pid in self._managed}
        effective = [
            entry for entry in self._log if entry.is_effective
        ]
        for left_index in range(len(effective)):
            left = effective[left_index]
            for right_index in range(left_index + 1, len(effective)):
                right = effective[right_index]
                if left.process_id == right.process_id:
                    continue
                if self.conflicts.conflicts(
                    left.event.conflict_service, right.event.conflict_service
                ):
                    graph[left.process_id].add(right.process_id)
        return graph

    def _has_path(self, source: str, target: str) -> bool:
        if source == target:
            return False
        # Reachability over the incremental graph; the maintained
        # topological order prunes the search (or settles it outright
        # when the order already separates the endpoints).
        return self._graph_sync().has_path(source, target)

    def _completion_of(self, managed: ManagedProcess):
        """The instance's completion, memoised per trace length.

        Admission consults every active process's completion on every
        request; the completion only changes when the instance's trace
        does, so a (length, value) memo eliminates the repeated tree
        walks.
        """
        length = len(managed.instance.trace())
        cached = managed._completion_cache
        if cached is not None and cached[0] == length:
            return cached[1]
        completion = managed.instance.completion()
        managed._completion_cache = (length, completion)
        return completion

    def _forward_services(
        self,
        hypothetical_pid: Optional[str] = None,
        hypothetical_activity: Optional[str] = None,
    ) -> Dict[str, FrozenSet[str]]:
        """Per active process: services its completion would still run.

        These are the forward-recovery activities Definition 8 forces
        into the completed schedule of the current prefix — conflicts
        with them are the "conflicts not known from S alone" of §3.5.
        For the requesting process the completion is evaluated *after*
        the hypothetical activity, since admission decides the post-state.

        Service names come back *interned* into the graph's conflict
        universe (so potential-edge tests can use the adjacency matrix)
        and are memoised per (trace length, interning epoch) on each
        managed process — a completion only changes when the trace does.
        """
        graph = self._graph_sync()
        epoch = graph.epoch
        forward: Dict[str, FrozenSet[str]] = {}
        for other_pid, other in self._managed.items():
            if other.status.is_terminal:
                continue
            # Completions are evaluated with every executed activity
            # counted as committed (hardened=None): the recorded history
            # cannot express "prepared", so the offline certifier sees
            # exactly this view and admission must match it.
            if other_pid == hypothetical_pid and hypothetical_activity:
                completion = other.instance.hypothetical_completion(
                    hypothetical_activity
                )
                services = self._interned_forward(graph, other, completion)
            else:
                length = len(other.instance.trace())
                cached = other._forward_services_cache
                if (
                    cached is not None
                    and cached[0] == length
                    and cached[1] == epoch
                ):
                    services = cached[2]
                else:
                    services = self._interned_forward(
                        graph, other, self._completion_of(other)
                    )
                    other._forward_services_cache = (length, epoch, services)
            if services:
                forward[other_pid] = services
        return forward

    @staticmethod
    def _interned_forward(
        graph, managed: ManagedProcess, completion
    ) -> FrozenSet[str]:
        """Interned services of a completion's forward-recovery path."""
        services = set()
        for name in completion.forward:
            service = managed.instance.definition(name).service
            assert service is not None
            services.add(graph.ensure_service(service))
        return frozenset(services)

    def _potential_edges_base(
        self, graph: IncrementalSerializationGraph
    ) -> Tuple[Dict[str, FrozenSet[str]], Set[Tuple[str, str]]]:
        """Forward-recovery potential edges of the *recorded* state.

        ``src → dst`` whenever an executed effective service of ``src``
        conflicts with a service active ``dst``'s completion would still
        run (§3.5's "conflicts not known from S alone"), minus pairs
        already ordered by a recorded edge.  The set only changes when
        the history or the active set does, so the O(P²) pair sweep is
        amortized over history mutations instead of being paid by every
        admission request — deferral storms under contention re-ask
        with an unchanged log.  Returns ``(forward services per active
        process, potential edges)``.
        """
        key = (self._history_version, graph.epoch, self._active_version)
        cached = self._potential_cache
        if cached is not None and cached[0] == key:
            return cached[1], cached[2]
        forward = self._forward_services()
        edges: Set[Tuple[str, str]] = set()
        if forward:
            base = graph.adjacency()
            for src_pid in graph.process_services():
                signature = graph.service_signature(src_pid)
                if not signature:
                    continue
                reachable = graph.reachable_services(signature)
                src_edges = base.get(src_pid, ())
                for dst_pid, targets in forward.items():
                    if dst_pid == src_pid or dst_pid in src_edges:
                        continue
                    if not reachable.isdisjoint(targets):
                        edges.add((src_pid, dst_pid))
        self._potential_cache = (key, forward, edges)
        return forward, edges

    def _completion_cycle(
        self,
        managed: ManagedProcess,
        activity_name: str,
        definition: ActivityDef,
    ) -> Set[str]:
        """Processes on a cycle the hypothetical execution would force.

        The graph combines (a) the real conflict edges over effective
        events including the hypothetical one, and (b) *potential* edges
        ``P → Q`` for every executed effective event of ``P`` conflicting
        with a forward-recovery service of active ``Q`` — that order is
        forced in the completed schedule of the resulting prefix.
        Returns the cycle's nodes (empty when the prefix stays safe).
        """
        pid = managed.process_id
        service = definition.service
        assert service is not None
        graph = self._graph_sync()
        base = graph.adjacency()

        # Hypothetical edges the request would add on top of the
        # recorded graph: (a) conflict edges from every effective
        # conflicting predecessor into the requester, (b) potential
        # forward-recovery edges P → Q for every executed service of P
        # (plus the hypothetical one) conflicting with a service Q's
        # completion would still run.
        new_edges: Set[Tuple[str, str]] = set()
        self.perf.index_lookups += 1
        for other_pid in graph.conflicting_processes_after(service, pid, -1):
            if pid not in base.get(other_pid, ()):
                new_edges.add((other_pid, pid))

        # Potential edges among the *other* processes depend only on the
        # recorded state — they come from the amortized cache.  Only the
        # requester's row (it as source, with the hypothetical service)
        # and column (it as destination, with its post-request
        # completion) are request-specific.
        forward, potential = self._potential_edges_base(graph)
        hypothetical = graph.ensure_service(service)
        for edge in potential:
            if pid not in edge:
                new_edges.add(edge)

        signature = graph.service_signature(pid) | {hypothetical}
        reachable = graph.reachable_services(signature)
        src_edges = base.get(pid, ())
        for dst_pid, targets in forward.items():
            if dst_pid == pid or dst_pid in src_edges:
                continue
            if (pid, dst_pid) in new_edges:
                continue
            if not reachable.isdisjoint(targets):
                new_edges.add((pid, dst_pid))

        targets = self._interned_forward(
            graph,
            managed,
            managed.instance.hypothetical_completion(activity_name),
        )
        if targets:
            for src_pid in graph.process_services():
                if src_pid == pid:
                    continue
                src_signature = graph.service_signature(src_pid)
                if not src_signature:
                    continue
                if pid in base.get(src_pid, ()) or (src_pid, pid) in new_edges:
                    continue
                if not graph.reachable_services(src_signature).isdisjoint(
                    targets
                ):
                    new_edges.add((src_pid, pid))

        # Fast path: a valid topological order in which every
        # hypothetical edge goes strictly forward certifies the combined
        # graph acyclic — no cycle through anything, so none through
        # ``pid``.  Otherwise fall back to the DFS witness search.
        if graph.order_permits(new_edges):
            self.perf.cycle_fast_path += 1
            return set()
        self.perf.cycle_dfs += 1
        extra: Dict[str, Set[str]] = {}
        for src_pid, dst_pid in new_edges:
            extra.setdefault(src_pid, set()).add(dst_pid)
        # A new cycle must pass through the requesting process.
        return self._cycle_through(base, extra, pid)

    @staticmethod
    def _cycle_through(
        base: Dict[str, Set[str]],
        extra: Dict[str, Set[str]],
        pid: str,
    ) -> Set[str]:
        """Nodes of a cycle through ``pid`` in ``base ∪ extra``, if any.

        The two adjacency maps are merged lazily per visited node, so the
        (usually large) recorded graph is never copied wholesale.
        """
        empty: Set[str] = set()

        def successors(node: str) -> List[str]:
            recorded = base.get(node, empty)
            added = extra.get(node)
            if added:
                return sorted(recorded | added)
            return sorted(recorded)

        # DFS from pid back to pid, tracking the path.
        stack: List[Tuple[str, List[str]]] = [
            (target, [pid]) for target in successors(pid)
        ]
        seen: Set[str] = set()
        while stack:
            current, path = stack.pop()
            if current == pid:
                return set(path)
            if current in seen:
                continue
            seen.add(current)
            for target in successors(current):
                stack.append((target, path + [current]))
        return set()

    def _active_predecessors(self, pid: str) -> Set[str]:
        """Active processes with a conflict edge into ``pid``."""
        self.perf.index_lookups += 1
        return {
            other_pid
            for other_pid in self._graph_sync().predecessors(pid)
            if not self._managed[other_pid].status.is_terminal
        }

    def _processes_holding(self, txn_ids: FrozenSet[str]) -> Set[str]:
        owners: Set[str] = set()
        for managed in self._managed.values():
            for prepared in managed.prepared:
                if prepared.txn_id in txn_ids:
                    owners.add(managed.process_id)
        return owners

    # -- bookkeeping --------------------------------------------------------------------

    def _record_event(
        self, managed: ManagedProcess, activity_name: str, direction: Direction
    ) -> int:
        process = managed.instance.process
        definition = process.activity(activity_name)
        if direction is Direction.COMPENSATION:
            service = definition.compensation_service
        else:
            service = definition.service
        assert service is not None
        event = ActivityEvent(
            activity=ActivityId(managed.process_id, activity_name, direction),
            service=service,
            conflict_service=definition.service,  # type: ignore[arg-type]
            kind=definition.kind,
            effect_free=definition.effect_free,
        )
        entry = _LogEntry(event=event)
        position = len(self._log)
        graph = self._graph_sync()
        if direction is Direction.COMPENSATION:
            forward_position = self._last_effective_position(
                managed.process_id, activity_name
            )
            if forward_position is not None:
                # The pair cancels: the forward partner leaves the
                # indexes together with its edges, and the compensation
                # itself (non-orphan → ineffective) is never indexed.
                entry.compensates = forward_position
                self._log[forward_position].compensated = True
                graph.remove_event(forward_position)
        self._log.append(entry)
        if entry.is_effective:
            graph.add_event(
                position,
                managed.process_id,
                activity_name,
                event.conflict_service,
                is_forward=not event.is_compensation,
            )
        managed.log_positions.append(position)
        self._history_version += 1
        self._timeline.append(("activity", position))
        self._notify(
            "activity",
            process=managed.process_id,
            activity=activity_name,
            direction=direction.exponent,
            service=service,
            position=position,
        )
        self._wal(
            {
                "type": "activity_commit",
                "process": managed.process_id,
                "activity": activity_name,
                "direction": direction.exponent,
                "service": service,
                "prepared": not definition.is_compensatable
                and direction is Direction.FORWARD,
            }
        )
        return position

    def _defer(
        self,
        managed: ManagedProcess,
        waiting_for: Set[str],
        reason: str,
        rule: str = "",
        activity: Optional[str] = None,
        service: Optional[str] = None,
        detail: Optional[Dict[str, object]] = None,
    ) -> None:
        # A blocked process is re-polled every cycle and re-defers with
        # the same decision; only a *change* of decision within one
        # waiting episode is a new fact worth tracing.
        repeat = managed.status is ManagedStatus.WAITING
        managed.status = ManagedStatus.WAITING
        managed.waiting_for = frozenset(waiting_for)
        managed.waiting_reason = reason
        record = DecisionRecord(
            kind="deferred",
            rule=rule,
            reason=reason,
            process=managed.process_id,
            activity=activity,
            service=service,
            waiting_for=tuple(sorted(waiting_for)),
            detail=dict(detail) if detail else {},
        )
        repeat = repeat and managed.last_decision == record
        managed.last_decision = record
        self.decisions[managed.process_id] = record
        self.stats["deferred"] += 1
        trace = self._trace
        traced = (
            trace is not None
            and trace.enabled  # type: ignore[attr-defined]
            and not repeat
        )
        if not traced and not self._listeners:
            return
        extra: Dict[str, object] = dict(record.detail)
        if traced and service is not None and rule in GRAPH_RULES:
            # Only when a sink listens: resolve the concrete conflicting
            # (activity, service) predecessors from the graph so the
            # trace event is self-contained for offline `explain`.
            extra["conflicts"] = self.conflict_pairs(
                managed.process_id, service
            )
        payload: Dict[str, object] = dict(
            process=managed.process_id,
            activity=activity,
            waiting_for=sorted(waiting_for),
            reason=reason,
            rule=rule,
            service=service,
            **extra,
        )
        # Listeners (watchdogs, counters) still see every deferral;
        # only the trace stream is deduplicated.
        for listener in self._listeners:
            listener("deferred", dict(payload))
        if traced:
            trace.emit_payload("deferred", payload)  # type: ignore[attr-defined]

    def _clear_wait(self, managed: ManagedProcess) -> None:
        if managed.status is ManagedStatus.WAITING:
            managed.status = ManagedStatus.ACTIVE
        managed.waiting_for = frozenset()
        managed.waiting_reason = ""

    def _after_event(self, validate: bool = True) -> None:
        self._maybe_harden_all()
        if validate and self.rules.paranoid:
            self._paranoid_check()

    def _reset_certifier(self) -> None:
        """Discard certification state: the recorded past was rewritten
        (native rollback / 2PC veto), so every prefix must re-certify."""
        self._paranoid_upto = 0
        self._certifier = None
        self._certified_timeline = 0

    def _paranoid_check(self) -> None:
        """Certify the produced history against the offline checker.

        Incremental: appending an event leaves all earlier prefixes
        unchanged, so only timeline entries beyond the certified
        watermark are fed to the :class:`~repro.core.reduction.
        PrefixCertifier`, which keeps the growing history and the
        per-process replica states across prefixes instead of
        re-replaying the whole history per prefix.  A native rollback
        rewrites the past (the rolled-back event vanishes from every
        prefix), which discards the certifier — :meth:`_reset_certifier`.
        """
        from time import perf_counter

        from repro.core.reduction import PrefixCertifier

        started = perf_counter()
        if self._certifier is None:
            self._certifier = PrefixCertifier(self.conflicts)
            self._certified_timeline = 0
        certifier = self._certifier
        for index in range(self._certified_timeline, len(self._timeline)):
            kind, payload = self._timeline[index]
            if kind == "activity":
                entry = self._log[payload]  # type: ignore[index]
                if entry.rolled_back:
                    continue  # excluded from the certified history
                event = entry.event
            else:
                event = payload  # type: ignore[assignment]
            certifier.add_process(
                self._managed[event.process_id].instance.process
            )
            result = certifier.observe(event)
            self.perf.certified_prefixes += 1
            if not result.is_reducible:
                raise CorrectnessViolation(
                    f"paranoid check failed: prefix of length "
                    f"{len(certifier)} of the produced history is not "
                    f"reducible ({result})"
                )
        self._certified_timeline = len(self._timeline)
        self._paranoid_upto = len(certifier) + 1
        self.perf.certify_ms += (perf_counter() - started) * 1000.0

    def _wal(self, record: Dict[str, object]) -> None:
        if self.wal is None or self._replaying:
            return
        self.wal.append(record)
        if self.checkpoint_interval is not None:
            self._appends_since_checkpoint += 1
            if self._appends_since_checkpoint >= self.checkpoint_interval:
                self.checkpoint()

    def checkpoint(self) -> Optional[int]:
        """Checkpoint the WAL: snapshot the scan state and compact.

        Folds the retained log into a
        :class:`~repro.subsystems.recovery.WalScanState`, prunes events
        of terminated processes, and writes the snapshot as a
        ``checkpoint`` record that replaces all earlier records.  After
        a crash, recovery's analysis resumes from the snapshot, so
        replay cost is bounded by the distance to the last checkpoint.

        Returns the checkpoint's LSN, or ``None`` when no WAL is
        attached.
        """
        if self.wal is None:
            return None
        # Lazy import: recovery imports this module for the scheduler.
        from repro.subsystems.recovery import scan_wal

        state = scan_wal(self.wal).prune()
        lsn = self.wal.checkpoint(state.to_dict())
        self._appends_since_checkpoint = 0
        self._notify("checkpoint", lsn=lsn)
        return lsn

    # ------------------------------------------------------------------
    # recovery replay
    # ------------------------------------------------------------------

    def begin_replay(self) -> None:
        """Enter replay mode: bookkeeping runs, the WAL stays silent.

        Restart recovery replays surviving pre-crash events through the
        scheduler's normal paths to rebuild conflict state; those
        records are already durable, so logging them again would
        double-count history on the next recovery.
        """
        self._replaying = True
        self._notify("replay_begin")

    def end_replay(self) -> None:
        """Leave replay mode: subsequent events are WAL-logged again."""
        self._replaying = False
        self._notify("replay_end")

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------

    def perf_snapshot(self) -> Dict[str, float]:
        """Perf counters of the incremental core, plus the conflict
        cache statistics when the relation exposes them."""
        values = self.perf.snapshot()
        lookups = getattr(self.conflicts, "lookups", None)
        if lookups is not None:
            values["conflict_lookups"] = lookups
            values["conflict_cache_hits"] = getattr(
                self.conflicts, "cache_hits", 0
            )
        return values

    def add_listener(
        self, listener: Callable[[str, Dict[str, object]], None]
    ) -> None:
        """Subscribe to scheduler events.

        The listener receives ``(kind, payload)`` pairs for:
        ``activity`` (an effectful event was recorded), ``failed`` (an
        invocation aborted), ``deferred`` (a request was postponed),
        ``hardened`` (a 2PC group committed), ``abort_begun`` (a process
        entered recovery, with ``cascade`` flag), ``victim`` (deadlock
        resolution chose a victim), ``terminated`` (a process reached a
        terminal status), plus the overload-layer kinds: ``offered``,
        ``admitted``, ``queued``, ``rejected``, ``shed``, ``draining``,
        ``starved`` and ``livelock``, and the lifecycle kinds
        ``submitted``, ``rolled_back``, ``checkpoint``,
        ``replay_begin`` and ``replay_end``.  The same stream feeds the
        structured trace bus (see :meth:`attach_trace` and
        :mod:`repro.obs`).  Exceptions raised by listeners propagate —
        instrumentation is trusted code.
        """
        self._listeners.append(listener)

    def _notify(self, kind: str, **payload: object) -> None:
        for listener in self._listeners:
            listener(kind, dict(payload))
        trace = self._trace
        if trace is not None and trace.enabled:  # type: ignore[attr-defined]
            trace.emit_payload(kind, payload)  # type: ignore[attr-defined]

    def attach_trace(self, bus: object) -> None:
        """Attach a structured trace bus (see :mod:`repro.obs.bus`).

        Wires the same bus into the WAL, the resilience layer and every
        registered subsystem, so one bus observes the whole stack;
        subsystems auto-provisioned later inherit it.
        """
        self._trace = bus
        if self.wal is not None:
            self.wal.trace = bus
        if self.resilience is not None:
            self.resilience.trace = bus
        for subsystem in self.registry.subsystems():
            subsystem.trace = bus

    @property
    def trace(self) -> Optional[object]:
        """The attached trace bus, if any."""
        return self._trace

    def explain(self, instance_id: str):
        """Why is (or was) ``instance_id`` blocked, rejected or aborted?

        Returns a :class:`repro.obs.explain.Explanation` naming the
        protocol rule that fired (Lemma 1/2/3 rules R2-R7, admission
        policy, breaker, ...) and — for graph-backed rules — the
        concrete conflicting predecessors currently recorded in the
        serialization graph.
        """
        from repro.obs.explain import explain_scheduler

        return explain_scheduler(self, instance_id)

    def conflict_pairs(
        self, instance_id: str, service: str
    ) -> List[Dict[str, object]]:
        """Conflicting predecessors of ``service`` for ``instance_id``.

        One dict per effective conflicting event of another process in
        the serialization graph, with ``process``, ``activity``,
        ``service`` and log ``position`` keys, in log order.
        """
        pairs: List[Dict[str, object]] = []
        for other_pid, position in self._graph_sync().conflicting_events(
            service, instance_id
        ):
            entry = self._log[position]
            pairs.append(
                {
                    "process": other_pid,
                    "activity": entry.event.activity.activity_name,
                    "service": entry.event.conflict_service,
                    "position": position,
                }
            )
        return pairs

    # ------------------------------------------------------------------
    # crash simulation
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Simulate a scheduler crash: volatile state is abandoned.

        Subsystem state (stores, prepared transactions) and the WAL
        survive; use :func:`repro.subsystems.recovery.recover` to bring
        the system back to a consistent state.
        """
        self._closed = True
