"""Incrementally maintained process serialization graph.

The online PRED scheduler (rules R1–R7, Lemmas 1–3) consults the
process serialization graph and per-service dependency queries on every
admission decision.  Recomputing them per operation costs O(E²) in the
length of the recorded history; this module maintains the same
structures *incrementally*, so each log mutation (append, native
rollback, compensation pairing, group abort) costs amortized
O(affected) instead of O(history):

``service index``
    ``service → pid → sorted effective log positions`` — the inverted
    index behind conflicting-predecessor/-successor queries and
    last-effective lookups.

``conflict adjacency``
    ``service → {conflicting services}`` — a memoised service×service
    conflict matrix built lazily per service from the (cached)
    :class:`~repro.core.conflict.ConflictRelation`.

``edge multiset``
    ``(P, Q) → count`` of ordered conflicting event pairs with the
    ``P`` event first.  An edge exists in the serialization graph iff
    its count is positive, so removing one event decrements precisely
    the pair counts it contributed (computed with two ``bisect`` calls
    per conflicting process) and edges disappear exactly when the last
    contributing pair does — the cache is never bulk-invalidated.

``topological order``
    A Pearce–Kelly style order over the processes: inserting an edge
    that already goes forward costs O(1); a back edge triggers a local
    reorder of the affected region only.  The order certifies
    acyclicity — a hypothetical edge set whose edges all go strictly
    forward in a valid order can not close a cycle, which turns the
    scheduler's R2 cycle check into an O(new edges) fast path.  Under
    rule ablations the recorded graph may legitimately become cyclic;
    the order then switches itself off and is lazily rebuilt (Kahn)
    once edge removals make acyclicity possible again.

Every structure is also rebuildable from scratch
(:meth:`IncrementalSerializationGraph.rebuild`) — used when the
conflict relation itself mutates mid-run, and by the shadow-check
property tests that prove the incremental path equals the recompute
path after arbitrary operation sequences.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.conflict import ConflictRelation, normalize_service
from repro.core.perf import PerfCounters

__all__ = ["IncrementalSerializationGraph"]


class IncrementalSerializationGraph:
    """Serialization graph + dependency indexes over effective events.

    The owner feeds every effectiveness transition of its log into
    :meth:`add_event` / :meth:`remove_event`; all queries then answer
    from the maintained indexes.  Events are identified by their log
    position (strictly increasing on append), processes by id.
    """

    def __init__(
        self,
        conflicts: ConflictRelation,
        perf: Optional[PerfCounters] = None,
    ) -> None:
        self.conflicts = conflicts
        self.perf = perf if perf is not None else PerfCounters()
        #: service → set of conflicting services (within the universe of
        #: services seen so far); lazily extended by :meth:`ensure_service`.
        self._adj: Dict[str, Set[str]] = {}
        #: service → pid → sorted effective positions of that pid's
        #: events on that service.
        self._svc_index: Dict[str, Dict[str, List[int]]] = {}
        #: position → (pid, normalised service, forward key or None).
        self._events: Dict[int, Tuple[str, str, Optional[Tuple[str, str]]]] = {}
        #: ordered edge multiset: source pid → target pid → pair count.
        self._edge_counts: Dict[str, Dict[str, int]] = {}
        #: adjacency views (edges with positive count only).
        self._out: Dict[str, Set[str]] = {}
        self._in: Dict[str, Set[str]] = {}
        #: pid → service → count of its effective events on the service.
        self._pid_services: Dict[str, Dict[str, int]] = {}
        #: (pid, activity name) → sorted effective *forward* positions.
        self._forward_index: Dict[Tuple[str, str], List[int]] = {}
        #: Pearce–Kelly topological order (pid → index, and its inverse).
        self._ord: Dict[str, int] = {}
        self._order: List[str] = []
        #: False while the graph is cyclic (possible under ablations).
        self._order_valid = True
        #: True when edges were removed while invalid — a Kahn rebuild
        #: may restore the order; done lazily on the next order query.
        self._order_stale = False
        #: Interning epoch: bumped on :meth:`rebuild`, when every
        #: previously interned service leaves the universe.  Callers
        #: that cache interned names key their caches on it.
        self.epoch = 0
        #: pid → frozenset of its executed services (lazy; dropped when
        #: the pid's service *set* — not just the counts — changes).
        self._pid_signature: Dict[str, FrozenSet[str]] = {}
        #: signature → union of conflicting services.  Cleared whenever
        #: a new service is interned, since interning extends existing
        #: adjacency rows in place.
        self._reach_memo: Dict[FrozenSet[str], FrozenSet[str]] = {}

    # -- processes and services -------------------------------------------------

    def add_process(self, pid: str) -> None:
        """Register a process node (idempotent)."""
        if pid in self._out:
            return
        self._out[pid] = set()
        self._in[pid] = set()
        self._pid_services[pid] = {}
        self._ord[pid] = len(self._order)
        self._order.append(pid)

    def ensure_service(self, service: str) -> str:
        """Intern a (normalised) service into the conflict adjacency."""
        name = normalize_service(service)
        if name not in self._adj:
            row: Set[str] = set()
            for other, other_row in self._adj.items():
                if self.conflicts.conflicts(name, other):
                    row.add(other)
                    other_row.add(name)
            if self.conflicts.conflicts(name, name):
                row.add(name)
            self._adj[name] = row
            self._reach_memo.clear()
        return name

    def service_conflicts(self, service_a: str, service_b: str) -> bool:
        """Matrix-backed conflict test on (possibly raw) service names."""
        name_a = self.ensure_service(service_a)
        name_b = self.ensure_service(service_b)
        return name_b in self._adj[name_a]

    def adjacent_services(self, service: str) -> Set[str]:
        """Services conflicting with ``service`` (interned universe)."""
        return self._adj[self.ensure_service(service)]

    # -- event maintenance ------------------------------------------------------

    def add_event(
        self,
        position: int,
        pid: str,
        activity_name: str,
        service: str,
        is_forward: bool,
    ) -> None:
        """Index a newly effective event at ``position``.

        Must be called in increasing-position order relative to the
        events currently indexed for correctness of the pair counts
        (append order satisfies this; :meth:`rebuild` feeds log order).
        """
        name = self.ensure_service(service)
        self.add_process(pid)
        self.perf.graph_events += 1
        # Every already-indexed event sits at an earlier position, so
        # each conflicting event of process Q contributes one (Q, pid)
        # ordered pair.
        for other_service in self._adj[name]:
            per_pid = self._svc_index.get(other_service)
            if not per_pid:
                continue
            for other_pid, positions in per_pid.items():
                if other_pid == pid or not positions:
                    continue
                self._edge_add(other_pid, pid, len(positions))
        self._svc_index.setdefault(name, {}).setdefault(pid, []).append(
            position
        )
        forward_key = (pid, activity_name) if is_forward else None
        self._events[position] = (pid, name, forward_key)
        counts = self._pid_services[pid]
        updated = counts.get(name, 0) + 1
        counts[name] = updated
        if updated == 1:
            self._pid_signature.pop(pid, None)
        if forward_key is not None:
            insort(self._forward_index.setdefault(forward_key, []), position)

    def remove_event(self, position: int) -> None:
        """Drop the event at ``position`` (rollback / compensation pairing)."""
        record = self._events.pop(position, None)
        if record is None:
            return
        pid, name, forward_key = record
        self.perf.graph_events += 1
        own = self._svc_index[name][pid]
        del own[bisect_left(own, position)]
        for other_service in self._adj[name]:
            per_pid = self._svc_index.get(other_service)
            if not per_pid:
                continue
            for other_pid, positions in per_pid.items():
                if other_pid == pid or not positions:
                    continue
                before = bisect_left(positions, position)
                after = len(positions) - before
                if before:
                    self._edge_sub(other_pid, pid, before)
                if after:
                    self._edge_sub(pid, other_pid, after)
        counts = self._pid_services[pid]
        counts[name] -= 1
        if not counts[name]:
            del counts[name]
            self._pid_signature.pop(pid, None)
        if forward_key is not None:
            forwards = self._forward_index[forward_key]
            del forwards[bisect_left(forwards, position)]

    def rebuild(
        self,
        pids: Iterable[str],
        entries: Iterable[Tuple[int, str, str, str, bool]],
    ) -> None:
        """Recompute everything from scratch.

        ``entries`` are ``(position, pid, activity_name, service,
        is_forward)`` tuples of the *effective* log entries in log
        order.  Needed only when the conflict relation itself mutates —
        the per-service adjacency memo is then stale as a whole.
        """
        self.perf.graph_rebuilds += 1
        self._adj.clear()
        self._svc_index.clear()
        self._events.clear()
        self._edge_counts.clear()
        self._out.clear()
        self._in.clear()
        self._pid_services.clear()
        self._forward_index.clear()
        self._ord.clear()
        self._order = []
        self._order_valid = True
        self._order_stale = False
        self._pid_signature.clear()
        self._reach_memo.clear()
        self.epoch += 1
        for pid in pids:
            self.add_process(pid)
        for position, pid, activity_name, service, is_forward in entries:
            self.add_event(position, pid, activity_name, service, is_forward)

    # -- edge multiset ----------------------------------------------------------

    def _edge_add(self, source: str, target: str, count: int) -> None:
        row = self._edge_counts.setdefault(source, {})
        updated = row.get(target, 0) + count
        row[target] = updated
        self.perf.edge_updates += 1
        if updated == count:  # 0 → positive: the edge appears
            self._out[source].add(target)
            self._in[target].add(source)
            self._on_edge_inserted(source, target)

    def _edge_sub(self, source: str, target: str, count: int) -> None:
        row = self._edge_counts[source]
        updated = row[target] - count
        self.perf.edge_updates += 1
        if updated:
            row[target] = updated
            return
        del row[target]
        self._out[source].discard(target)
        self._in[target].discard(source)
        if not self._order_valid:
            # Losing an edge may have broken the cycle; recheck lazily.
            self._order_stale = True

    # -- topological order (Pearce–Kelly) --------------------------------------

    def _on_edge_inserted(self, source: str, target: str) -> None:
        if not self._order_valid:
            return
        ord_map = self._ord
        if ord_map[source] < ord_map[target]:
            return
        lower, upper = ord_map[target], ord_map[source]
        # Forward search from target over the affected region; reaching
        # source means the new edge closed a cycle.  Any path
        # target ↝ source has monotonically increasing order positions
        # (the invariant held before the insertion), so restricting to
        # positions ≤ upper loses nothing.
        delta_forward: List[str] = []
        stack = [target]
        seen_forward = {target}
        while stack:
            node = stack.pop()
            delta_forward.append(node)
            for successor in self._out[node]:
                if successor == source:
                    self._order_valid = False
                    return
                if (
                    successor not in seen_forward
                    and ord_map[successor] <= upper
                ):
                    seen_forward.add(successor)
                    stack.append(successor)
        # Backward search from source over the affected region.
        delta_backward: List[str] = []
        stack = [source]
        seen_backward = {source}
        while stack:
            node = stack.pop()
            delta_backward.append(node)
            for predecessor in self._in[node]:
                if (
                    predecessor not in seen_backward
                    and ord_map[predecessor] >= lower
                ):
                    seen_backward.add(predecessor)
                    stack.append(predecessor)
        # Reassign the union of freed positions: sources-of-the-back-edge
        # region first, then the forward region, each keeping its
        # internal relative order.
        delta_forward.sort(key=ord_map.__getitem__)
        delta_backward.sort(key=ord_map.__getitem__)
        pool = sorted(
            ord_map[node] for node in delta_backward + delta_forward
        )
        for node, index in zip(delta_backward + delta_forward, pool):
            ord_map[node] = index
            self._order[index] = node
        self.perf.topo_shifts += 1

    def _ensure_order(self) -> bool:
        """Return whether a valid topological order is available."""
        if self._order_valid:
            return True
        if not self._order_stale:
            return False
        self._order_stale = False
        order = self._kahn()
        if order is None:
            return False
        self._order = order
        self._ord = {pid: index for index, pid in enumerate(order)}
        self._order_valid = True
        return True

    def _kahn(self) -> Optional[List[str]]:
        self.perf.topo_recomputes += 1
        in_degree = {pid: len(sources) for pid, sources in self._in.items()}
        frontier = [pid for pid, degree in in_degree.items() if not degree]
        order: List[str] = []
        while frontier:
            node = frontier.pop()
            order.append(node)
            for successor in self._out[node]:
                in_degree[successor] -= 1
                if not in_degree[successor]:
                    frontier.append(successor)
        if len(order) != len(self._in):
            return None
        return order

    # -- queries ----------------------------------------------------------------

    def adjacency(self) -> Dict[str, Set[str]]:
        """The live serialization graph ``pid → {successor pids}``.

        Callers only read it (or copy before extending) — the sets are
        the maintained views, not snapshots.
        """
        return self._out

    def predecessors(self, pid: str) -> Set[str]:
        """Processes with a conflict edge into ``pid``."""
        return self._in.get(pid, frozenset())  # type: ignore[return-value]

    def conflicting_events(
        self, service: str, exclude_pid: str
    ) -> List[Tuple[str, int]]:
        """Effective events of other processes conflicting with ``service``,
        as ``(pid, position)`` in log order."""
        name = self.ensure_service(service)
        found: List[Tuple[int, str]] = []
        for other_service in self._adj[name]:
            per_pid = self._svc_index.get(other_service)
            if not per_pid:
                continue
            for other_pid, positions in per_pid.items():
                if other_pid == exclude_pid:
                    continue
                for position in positions:
                    found.append((position, other_pid))
        found.sort()
        return [(pid, position) for position, pid in found]

    def conflicting_processes_after(
        self, service: str, exclude_pid: str, after: int
    ) -> Set[str]:
        """Processes with an effective conflicting event at a position
        strictly greater than ``after``."""
        name = self.ensure_service(service)
        dependents: Set[str] = set()
        for other_service in self._adj[name]:
            per_pid = self._svc_index.get(other_service)
            if not per_pid:
                continue
            for other_pid, positions in per_pid.items():
                if other_pid == exclude_pid or other_pid in dependents:
                    continue
                if positions and positions[-1] > after:
                    dependents.add(other_pid)
        return dependents

    def last_forward_position(
        self, pid: str, activity_name: str
    ) -> Optional[int]:
        """Last effective forward occurrence of the activity, or ``None``."""
        positions = self._forward_index.get((pid, activity_name))
        if not positions:
            return None
        return positions[-1]

    def process_services(self) -> Dict[str, Dict[str, int]]:
        """``pid → {service: effective event count}`` (live view)."""
        return self._pid_services

    def service_signature(self, pid: str) -> FrozenSet[str]:
        """The set of services ``pid`` has effective events on.

        Cached per process and dropped only when the service *set*
        changes, so repeated admission checks share one frozenset (and
        thereby one :meth:`reachable_services` memo entry)."""
        signature = self._pid_signature.get(pid)
        if signature is None:
            signature = frozenset(self._pid_services.get(pid, ()))
            self._pid_signature[pid] = signature
        return signature

    def reachable_services(self, signature: FrozenSet[str]) -> FrozenSet[str]:
        """Union of services conflicting with any member of ``signature``.

        Members must be interned names.  Memoised per signature; the
        memo self-clears when interning a new service extends adjacency
        rows, so entries never go stale."""
        reachable = self._reach_memo.get(signature)
        if reachable is None:
            union: Set[str] = set()
            for name in signature:
                union |= self._adj[name]
            reachable = frozenset(union)
            self._reach_memo[signature] = reachable
        return reachable

    def order_permits(
        self, new_edges: Iterable[Tuple[str, str]]
    ) -> bool:
        """True iff a valid order exists and every hypothetical edge goes
        strictly forward in it — then adding them all cannot close a
        cycle.  ``False`` is merely "not certified" (caller falls back)."""
        if not self._ensure_order():
            return False
        ord_map = self._ord
        for source, target in new_edges:
            source_pos = ord_map.get(source)
            target_pos = ord_map.get(target)
            if source_pos is None or target_pos is None:
                return False
            if source_pos >= target_pos:
                return False
        return True

    def has_path(self, source: str, target: str) -> bool:
        """Reachability ``source ↝ target`` over the current edges."""
        if source not in self._out or target not in self._out:
            return False
        pruned = self._ensure_order()
        ord_map = self._ord
        if pruned and ord_map[source] >= ord_map[target]:
            # In a valid topological order every path goes strictly
            # forward; this also rules out source == target (a self-path
            # would need a cycle).
            return False
        limit = ord_map[target] if pruned else None
        seen: Set[str] = set()
        stack = list(self._out[source])
        while stack:
            node = stack.pop()
            if node == target:
                return True
            if node in seen:
                continue
            seen.add(node)
            for successor in self._out[node]:
                if successor in seen:
                    continue
                if limit is not None and ord_map[successor] > limit:
                    continue
                stack.append(successor)
        return False

    def order_is_valid(self) -> bool:
        """Whether a certified topological order currently exists."""
        return self._ensure_order()

    def order_positions(self) -> Dict[str, int]:
        """The current topological positions (only when valid)."""
        return dict(self._ord)
