"""JSON (de)serialization of processes, conflicts and schedules.

A workflow system persists its process repository: restart recovery
(:mod:`repro.subsystems.recovery`) needs the templates of every process
the write-ahead log references.  This module provides stable, versioned
dictionary encodings plus JSON helpers:

* :func:`process_to_dict` / :func:`process_from_dict` — the full
  ``(A, ≪, ◁)`` structure including per-activity services, subsystems,
  compensation services and parameters;
* :func:`conflicts_to_dict` / :func:`conflicts_from_dict` — explicit
  conflict relations (semantic ones are re-derived from services);
* :func:`schedule_to_dict` / :func:`schedule_from_dict` — event
  sequences with their processes, so certified histories can be
  archived and re-checked later.

Encodings carry a ``"format"`` tag and version; unknown versions are
rejected loudly rather than mis-parsed.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional

from repro.core.activity import ActivityDef, ActivityKind, Direction
from repro.core.conflict import ConflictRelation, ExplicitConflicts
from repro.core.process import Process
from repro.core.schedule import (
    AbortEvent,
    ActivityEvent,
    CommitEvent,
    GroupAbortEvent,
    ProcessSchedule,
)
from repro.errors import ReproError

__all__ = [
    "process_to_dict",
    "process_from_dict",
    "process_to_json",
    "process_from_json",
    "conflicts_to_dict",
    "conflicts_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
]

PROCESS_FORMAT = "repro/process"
CONFLICTS_FORMAT = "repro/conflicts"
SCHEDULE_FORMAT = "repro/schedule"
VERSION = 1


class SerializationError(ReproError):
    """An encoding could not be produced or parsed."""


def _check_header(payload: Mapping[str, object], expected: str) -> None:
    if payload.get("format") != expected:
        raise SerializationError(
            f"expected format {expected!r}, got {payload.get('format')!r}"
        )
    if payload.get("version") != VERSION:
        raise SerializationError(
            f"unsupported {expected!r} version {payload.get('version')!r}"
        )


# ---------------------------------------------------------------------------
# processes
# ---------------------------------------------------------------------------


def process_to_dict(process: Process) -> Dict[str, object]:
    """Encode a process template as a JSON-safe dictionary."""
    activities = []
    for definition in process.activities():
        entry: Dict[str, object] = {
            "name": definition.name,
            "kind": definition.kind.value,
            "service": definition.service,
            "subsystem": definition.subsystem,
            "effect_free": definition.effect_free,
        }
        if definition.compensation_service is not None:
            entry["compensation_service"] = definition.compensation_service
        if definition.params:
            entry["params"] = dict(definition.params)
        activities.append(entry)
    return {
        "format": PROCESS_FORMAT,
        "version": VERSION,
        "process_id": process.process_id,
        "activities": activities,
        "precedence": [list(edge) for edge in process.edges()],
        "preference": {
            source: list(process.alternatives(source))
            for source in process.preference_sources()
        },
    }


def process_from_dict(payload: Mapping[str, object]) -> Process:
    """Decode a process template; validates Definition 5 on the way in."""
    _check_header(payload, PROCESS_FORMAT)
    activities = []
    for entry in payload["activities"]:  # type: ignore[index]
        kind = ActivityKind(entry["kind"])
        kwargs: Dict[str, object] = {
            "name": entry["name"],
            "kind": kind,
            "service": entry.get("service"),
            "subsystem": entry.get("subsystem", "default"),
            "effect_free": bool(entry.get("effect_free", False)),
            "params": entry.get("params", {}),
        }
        if kind.is_compensatable and "compensation_service" in entry:
            kwargs["compensation_service"] = entry["compensation_service"]
        activities.append(ActivityDef(**kwargs))  # type: ignore[arg-type]
    return Process(
        str(payload["process_id"]),
        activities,
        [tuple(edge) for edge in payload["precedence"]],  # type: ignore[index]
        {
            source: list(branches)
            for source, branches in payload.get("preference", {}).items()  # type: ignore[union-attr]
        },
    )


def process_to_json(process: Process, indent: Optional[int] = None) -> str:
    return json.dumps(process_to_dict(process), sort_keys=True, indent=indent)


def process_from_json(text: str) -> Process:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(f"invalid JSON: {error}") from error
    return process_from_dict(payload)


# ---------------------------------------------------------------------------
# conflicts
# ---------------------------------------------------------------------------


def conflicts_to_dict(conflicts: ExplicitConflicts) -> Dict[str, object]:
    """Encode an explicit conflict relation."""
    return {
        "format": CONFLICTS_FORMAT,
        "version": VERSION,
        "pairs": sorted(list(pair) for pair in conflicts.pairs()),
    }


def conflicts_from_dict(payload: Mapping[str, object]) -> ExplicitConflicts:
    _check_header(payload, CONFLICTS_FORMAT)
    return ExplicitConflicts(
        (pair[0], pair[-1]) for pair in payload["pairs"]  # type: ignore[index]
    )


# ---------------------------------------------------------------------------
# schedules
# ---------------------------------------------------------------------------


def schedule_to_dict(schedule: ProcessSchedule) -> Dict[str, object]:
    """Encode a schedule with its processes and event sequence.

    The conflict relation is only encoded when it is an
    :class:`ExplicitConflicts`; semantic relations should be re-derived
    from the subsystem registry on load.
    """
    events: List[Dict[str, object]] = []
    for event in schedule.events:
        if isinstance(event, ActivityEvent):
            events.append(
                {
                    "type": "activity",
                    "process": event.process_id,
                    "activity": event.activity.activity_name,
                    "direction": event.activity.direction.exponent,
                }
            )
        elif isinstance(event, CommitEvent):
            events.append({"type": "commit", "process": event.process_id})
        elif isinstance(event, AbortEvent):
            events.append({"type": "abort", "process": event.process_id})
        elif isinstance(event, GroupAbortEvent):
            events.append(
                {"type": "group_abort", "processes": list(event.process_ids)}
            )
    payload: Dict[str, object] = {
        "format": SCHEDULE_FORMAT,
        "version": VERSION,
        "processes": [
            process_to_dict(process) for process in schedule.processes()
        ],
        "events": events,
    }
    if isinstance(schedule.conflicts, ExplicitConflicts):
        payload["conflicts"] = conflicts_to_dict(schedule.conflicts)
    return payload


def schedule_from_dict(
    payload: Mapping[str, object],
    conflicts: Optional[ConflictRelation] = None,
) -> ProcessSchedule:
    """Decode a schedule; ``conflicts`` overrides the encoded relation."""
    _check_header(payload, SCHEDULE_FORMAT)
    processes = [
        process_from_dict(entry) for entry in payload["processes"]  # type: ignore[index]
    ]
    if conflicts is None and "conflicts" in payload:
        conflicts = conflicts_from_dict(payload["conflicts"])  # type: ignore[arg-type]
    schedule = ProcessSchedule(processes, conflicts)
    for entry in payload["events"]:  # type: ignore[index]
        kind = entry["type"]
        if kind == "activity":
            direction = (
                Direction.COMPENSATION
                if entry["direction"] == -1
                else Direction.FORWARD
            )
            schedule.record(entry["process"], entry["activity"], direction)
        elif kind == "commit":
            schedule.record_commit(entry["process"])
        elif kind == "abort":
            schedule.record_abort(entry["process"])
        elif kind == "group_abort":
            schedule.record_group_abort(entry["processes"])
        else:
            raise SerializationError(f"unknown event type {kind!r}")
    return schedule
