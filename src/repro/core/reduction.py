"""Reducibility of process schedules (paper §3.4, Definition 9).

A process schedule ``S`` is **reducible (RED)** if its completed
schedule ``S̃`` can be transformed into a *serial* process schedule by
finitely many applications of three rules:

1. **Commutativity rule** — adjacent commuting activities may be
   swapped;
2. **Compensation rule** — an adjacent pair ``⟨a, a⁻¹⟩`` may be removed
   (the pair is effect-free by Definition 2);
3. **Effect-free activity rule** — effect-free activities of processes
   that do not commit in ``S`` may be removed.

Decision procedure
------------------

Searching rewrite sequences directly is exponential; we use an exact
polynomial characterisation:

* Swapping adjacent commuting activities generates precisely the
  conflict-equivalence class of the sequence, so "transformable into a
  serial schedule by rule 1 alone" ⟺ the conflict serialization graph
  is acyclic (the classical serializability theorem).
* A pair ``(a, a⁻¹)`` can be made adjacent by rule 1 ⟺ no event
  *between* them conflicts with ``a`` (by perfect commutativity ``a`` and
  ``a⁻¹`` have identical conflicts, so an in-between conflicting event
  can never be moved out of the way, and a commuting one always can).
* Removing a pair or an effect-free activity only ever *removes*
  constraints, so greedy application to a fixpoint is confluent and
  maximal: if any rewrite sequence reaches a serial schedule, the
  fixpoint of {remove effect-free, cancel cancellable pairs} followed by
  an acyclicity check also succeeds.

Hence: ``RED(S)`` ⟺ after removing effect-free activities of aborted
processes and cancelling compensation pairs to a fixpoint, the remaining
serialization graph of ``S̃`` is acyclic.

:func:`reduce_schedule` implements the fixpoint and returns a
:class:`ReductionResult` carrying the reduced event sequence and — when
the schedule is not reducible — a conflict cycle as witness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.activity import ActivityId
from repro.core.completion import CompletedSchedule, complete_schedule
from repro.core.conflict import ConflictRelation
from repro.core.instance import ProcessInstance
from repro.core.process import Process
from repro.core.schedule import (
    ActivityEvent,
    ProcessSchedule,
    ScheduleEvent,
)

__all__ = [
    "ReductionResult",
    "reduce_schedule",
    "is_reducible",
    "PrefixCertifier",
]


@dataclass(frozen=True)
class ReductionResult:
    """Outcome of reducing a completed process schedule."""

    #: The completed schedule the reduction ran on.
    completed: CompletedSchedule
    #: Activity events remaining after all rule applications.
    residual: Tuple[ActivityEvent, ...]
    #: Pairs removed by the compensation rule, as forward activity ids.
    cancelled_pairs: Tuple[ActivityId, ...]
    #: Events removed by the effect-free rule.
    removed_effect_free: Tuple[ActivityId, ...]
    #: ``True`` iff the residual is conflict-equivalent to a serial
    #: schedule — i.e. the schedule is RED.
    is_reducible: bool
    #: A process-level conflict cycle witnessing irreducibility.
    witness_cycle: Optional[Tuple[str, ...]] = None
    #: A serial order of processes when reducible.
    serial_order: Optional[Tuple[str, ...]] = None

    def __str__(self) -> str:
        verdict = "RED" if self.is_reducible else "not RED"
        residual = " ".join(str(event) for event in self.residual)
        return f"[{verdict}] residual: {residual or '<empty>'}"


def reduce_schedule(schedule: ProcessSchedule) -> ReductionResult:
    """Reduce a schedule's completion ``S̃`` (Definition 9).

    Accepts either a plain schedule (it is completed first) or an
    already-completed schedule.
    """
    if isinstance(schedule, CompletedSchedule):
        completed = schedule
    else:
        completed = complete_schedule(schedule)

    events: List[ActivityEvent] = [
        event for _, event in completed.activity_events()
    ]

    # Rule 3: drop effect-free activities of processes that do not
    # commit in the original schedule S.
    removed_effect_free: List[ActivityId] = []
    aborted = completed.aborted_in_original
    kept: List[ActivityEvent] = []
    for event in events:
        if event.effect_free and event.process_id in aborted:
            removed_effect_free.append(event.activity)
        else:
            kept.append(event)
    events = kept

    # Rule 2 to a fixpoint: cancel compensation pairs that can be made
    # adjacent by rule-1 swaps.
    cancelled: List[ActivityId] = []
    changed = True
    while changed:
        changed = False
        pair = _find_cancellable_pair(completed, events)
        if pair is not None:
            forward_index, inverse_index = pair
            cancelled.append(events[forward_index].activity)
            del events[inverse_index]
            del events[forward_index]
            changed = True

    # Rule 1: the residual is serialisable iff its conflict graph over
    # processes is acyclic.
    residual_schedule = ProcessSchedule(
        completed.processes(), completed.conflicts, events
    )
    serial_order = residual_schedule.serialization_order()
    if serial_order is not None:
        return ReductionResult(
            completed=completed,
            residual=tuple(events),
            cancelled_pairs=tuple(cancelled),
            removed_effect_free=tuple(removed_effect_free),
            is_reducible=True,
            serial_order=tuple(serial_order),
        )
    cycles = residual_schedule.cycles()
    witness = cycles[0] if cycles else None
    return ReductionResult(
        completed=completed,
        residual=tuple(events),
        cancelled_pairs=tuple(cancelled),
        removed_effect_free=tuple(removed_effect_free),
        is_reducible=False,
        witness_cycle=witness,
    )


def _find_cancellable_pair(
    schedule: ProcessSchedule, events: Sequence[ActivityEvent]
) -> Optional[Tuple[int, int]]:
    """Find a compensation pair removable under the compensation rule.

    A pair is the *latest* forward occurrence of an activity before its
    compensating occurrence (compensation is LIFO within a process).
    The pair is cancellable iff no event strictly between the two
    conflicts with the activity — then rule-1 swaps can make the pair
    adjacent and rule 2 removes it.
    """
    last_forward: Dict[Tuple[str, str], int] = {}
    for index, event in enumerate(events):
        key = (event.process_id, event.activity.activity_name)
        if not event.is_compensation:
            last_forward[key] = index
            continue
        forward_index = last_forward.get(key)
        if forward_index is None:
            continue
        blocked = False
        for between in events[forward_index + 1 : index]:
            if schedule.events_conflict(events[forward_index], between):
                blocked = True
                break
        if not blocked:
            return (forward_index, index)
    return None


def is_reducible(schedule: ProcessSchedule) -> bool:
    """``True`` iff the schedule is RED (Definition 9)."""
    return reduce_schedule(schedule).is_reducible


class PrefixCertifier:
    """Amortized certification of a growing history's prefixes.

    The scheduler's paranoid mode certifies ``RED(prefix)`` for every
    prefix of the produced history.  Re-running :func:`reduce_schedule`
    per prefix re-replays every process's events from scratch each time
    (the ``instance_state`` reconstructions inside the completion
    dominate the O(n³) fixpoint in practice).  The certifier keeps the
    growing schedule and a live :class:`~repro.core.instance.
    ProcessInstance` replica per process across prefixes: each
    :meth:`observe` advances the affected replica by *one* event and
    hands the replicas to :func:`~repro.core.completion.
    complete_schedule`, so certifying prefix ``n`` costs the reduction
    of prefix ``n`` but no longer the O(n) re-replay per process.

    The certifier assumes events arrive in history order.  When the
    owner rewrites the past (native rollback) it must discard the
    certifier and build a fresh one — prefix certification restarts
    from zero, exactly like the recompute path.
    """

    def __init__(self, conflicts: ConflictRelation) -> None:
        self._schedule = ProcessSchedule((), conflicts)
        self._states: Dict[str, ProcessInstance] = {}

    def __len__(self) -> int:
        return len(self._schedule)

    @property
    def schedule(self) -> ProcessSchedule:
        """The history observed so far."""
        return self._schedule

    def add_process(self, process: Process) -> None:
        """Register a process template (idempotent)."""
        self._schedule.add_process(process)

    def observe(self, event: ScheduleEvent) -> ReductionResult:
        """Append one history event and certify the new prefix."""
        self._schedule.append(event)
        process_id = getattr(event, "process_id", None)
        if process_id is not None:
            state = self._states.get(process_id)
            if state is None:
                state = ProcessInstance(self._schedule.process(process_id))
                self._states[process_id] = state
            if isinstance(event, ActivityEvent):
                self._schedule.replay_event(state, event, process_id)
        completed = complete_schedule(self._schedule, states=self._states)
        return reduce_schedule(completed)
