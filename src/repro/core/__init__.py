"""Core theory: process model, schedules, completion, reduction, PRED."""

from repro.core.activity import ActivityDef, ActivityId, ActivityKind, Direction
from repro.core.conflict import (
    AllConflicts,
    ConflictRelation,
    ExplicitConflicts,
    NoConflicts,
    ReadWriteConflicts,
    UnionConflicts,
)
from repro.core.process import Process, ProcessBuilder
from repro.core.flex import (
    ExecutionPath,
    Outcome,
    build_process,
    choice,
    comp,
    count_valid_executions,
    enumerate_executions,
    is_well_formed,
    parse_flex,
    pivot,
    retr,
    seq,
    simulate,
    state_determining_activity,
)
from repro.core.instance import (
    Action,
    ActionType,
    Completion,
    InstanceStatus,
    ProcessInstance,
    RecoveryState,
)
from repro.core.schedule import (
    AbortEvent,
    ActivityEvent,
    CommitEvent,
    GroupAbortEvent,
    ProcessSchedule,
)
from repro.core.completion import CompletedSchedule, complete_schedule
from repro.core.reduction import ReductionResult, is_reducible, reduce_schedule
from repro.core.pred import PredResult, check_pred, is_prefix_reducible
from repro.core.recoverability import (
    ProcRecResult,
    ProcRecViolation,
    check_process_recoverability,
    is_process_recoverable,
)
from repro.core.serialize import (
    process_from_dict,
    process_from_json,
    process_to_dict,
    process_to_json,
    schedule_from_dict,
    schedule_to_dict,
)
