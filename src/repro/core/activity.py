"""Activities and their termination guarantees (paper §3.1, Definitions 1-4).

Activities are service invocations in transactional subsystems.  Each
activity is itself a transaction in its subsystem and therefore atomic:
an invocation either commits or aborts.  Activities differ in their
*termination guarantees* (the flex transaction model):

* **compensatable** (``c``): a compensating activity exists whose
  execution right after the activity is effect-free (Definition 2);
* **retriable** (``r``): guaranteed to commit after finitely many
  invocations (Definition 3);
* **pivot** (``p``): neither compensatable nor retriable — once a pivot
  commits the process can no longer be rolled back, once it fails the
  process must try an alternative.

A *compensating* activity is itself not compensatable but is retriable
(paper §3.1), which we encode in :meth:`ActivityDef.compensation_def`.

Two layers are distinguished:

* :class:`ActivityDef` — the static declaration of an activity inside a
  process template: which service it invokes, on which subsystem, with
  which termination guarantee.
* :class:`ActivityId` — the identity of one activity *occurrence* inside
  a schedule, following the paper's notation ``a_{i_k}`` (process ``i``,
  activity ``k``) and ``a_{i_k}^{-1}`` for its compensation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.errors import InvalidProcessError

__all__ = [
    "ActivityKind",
    "Direction",
    "ActivityDef",
    "ActivityId",
    "COMPENSATION_SUFFIX",
]

#: Suffix used to derive the service name of a compensating activity when
#: the user does not name one explicitly, mirroring the paper's ``a^{-1}``.
COMPENSATION_SUFFIX = "~inv"


class ActivityKind(enum.Enum):
    """Termination guarantee of an activity (flex transaction model)."""

    COMPENSATABLE = "c"
    PIVOT = "p"
    RETRIABLE = "r"

    @property
    def symbol(self) -> str:
        """The paper's superscript for this kind (``c``, ``p`` or ``r``)."""
        return self.value

    @property
    def is_compensatable(self) -> bool:
        return self is ActivityKind.COMPENSATABLE

    @property
    def is_retriable(self) -> bool:
        return self is ActivityKind.RETRIABLE

    @property
    def is_pivot(self) -> bool:
        return self is ActivityKind.PIVOT


class Direction(enum.Enum):
    """Whether an occurrence is the forward activity or its inverse."""

    FORWARD = 1
    COMPENSATION = -1

    @property
    def exponent(self) -> int:
        """The paper's exponent: ``1`` for forward, ``-1`` for inverse."""
        return self.value


@dataclass(frozen=True)
class ActivityDef:
    """Static declaration of an activity inside a process template.

    Parameters
    ----------
    name:
        Identifier unique within the owning process (the ``k`` in
        ``a_{i_k}``).
    kind:
        Termination guarantee (compensatable / pivot / retriable).
    service:
        Name of the service in the global service alphabet ``Â`` that
        this activity invokes.  Conflicts (Definition 6) are declared
        between services, so two activities conflict iff their services
        do.  Defaults to ``name`` which is convenient for the paper's
        abstract examples where every activity is its own service.
    subsystem:
        Name of the transactional subsystem providing the service.  The
        offline theory ignores it; the runtime uses it for routing and
        for §3.6 weak-order delegation.
    compensation_service:
        Service invoked by the compensating activity ``a^{-1}``; only
        meaningful for compensatable activities.  Defaults to
        ``service + '~inv'``.
    effect_free:
        Whether the activity is effect-free (Definition 1): its presence
        or absence never changes the return values of other activities
        (e.g. a pure read or a notification).  Effect-free activities of
        aborted processes may be dropped by the reduction's effect-free
        rule (Definition 9, rule 3).
    params:
        Static invocation parameters forwarded to the service.
    """

    name: str
    kind: ActivityKind
    service: Optional[str] = None
    subsystem: str = "default"
    compensation_service: Optional[str] = None
    effect_free: bool = False
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidProcessError("activity name must be non-empty")
        if self.service is None:
            object.__setattr__(self, "service", self.name)
        if self.kind.is_compensatable and self.compensation_service is None:
            object.__setattr__(
                self, "compensation_service", self.service + COMPENSATION_SUFFIX
            )
        if not self.kind.is_compensatable and self.compensation_service is not None:
            raise InvalidProcessError(
                f"activity {self.name!r} is {self.kind.name.lower()} and must "
                f"not declare a compensation service (flex transaction model: "
                f"pivot and retriable activities have no inverse)"
            )

    @property
    def is_compensatable(self) -> bool:
        return self.kind.is_compensatable

    @property
    def is_retriable(self) -> bool:
        return self.kind.is_retriable

    @property
    def is_pivot(self) -> bool:
        return self.kind.is_pivot

    def label(self, process_id: str) -> str:
        """The paper's label for this activity, e.g. ``a_{1_3}^c``."""
        return f"{process_id}.{self.name}^{self.kind.symbol}"


@dataclass(frozen=True, order=True)
class ActivityId:
    """Identity of one activity occurrence inside a schedule.

    ``ActivityId("P1", "a3")`` is the paper's ``a_{1_3}``;
    ``ActivityId("P1", "a3", Direction.COMPENSATION)`` is ``a_{1_3}^{-1}``.

    The identity is ordered and hashable so it can serve as a graph node
    and dictionary key throughout the library.
    """

    process_id: str
    activity_name: str
    direction: Direction = Direction.FORWARD

    @property
    def is_compensation(self) -> bool:
        return self.direction is Direction.COMPENSATION

    @property
    def forward(self) -> "ActivityId":
        """The forward occurrence this id belongs to (identity if forward)."""
        if self.direction is Direction.FORWARD:
            return self
        return ActivityId(self.process_id, self.activity_name, Direction.FORWARD)

    @property
    def inverse(self) -> "ActivityId":
        """The compensating occurrence ``a^{-1}`` for a forward id."""
        if self.direction is Direction.COMPENSATION:
            raise InvalidProcessError(
                f"{self} is already a compensation; compensating activities "
                f"are not themselves compensatable"
            )
        return ActivityId(self.process_id, self.activity_name, Direction.COMPENSATION)

    def key(self) -> Tuple[str, str, int]:
        """A plain-tuple key usable in logs and serialized state."""
        return (self.process_id, self.activity_name, self.direction.exponent)

    def __str__(self) -> str:
        if self.is_compensation:
            return f"{self.process_id}.{self.activity_name}^-1"
        return f"{self.process_id}.{self.activity_name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ActivityId({str(self)!r})"
