"""Process schedules and serializability (paper §3.2, Definition 7).

A process schedule ``S = (P_S, A_S, ≪_S)`` records the interleaved
execution of a set of processes: the committed activity invocations of
all processes plus their termination events.  Following the classical
treatment we represent a schedule as a *sequence* of events — one
linearisation compatible with the partial order ``≪_S``; the partial
order itself is recovered as "``a`` before ``b`` in the sequence, and
``a``,``b`` belong to the same process or conflict" (only the relative
order of conflicting activities matters, Definition 7.2).

Event kinds:

* :class:`ActivityEvent` — a committed activity invocation (forward or
  compensating).  Aborted invocation attempts leave no effects (the
  subsystems guarantee atomicity) and therefore do not appear in
  schedules.
* :class:`CommitEvent` / :class:`AbortEvent` — termination ``C_i`` /
  ``A_i`` of a process.
* :class:`GroupAbortEvent` — the set-oriented abort
  ``A(P_{n_1} … P_{n_s})`` used when completing a schedule
  (Definition 8 2b).

The schedule knows the process templates and the conflict relation, so
it can compute the serialization graph, check (conflict-)serializability
and reconstruct each process's runtime state at any prefix — the basis
for building completed process schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.activity import ActivityId, ActivityKind, Direction
from repro.core.conflict import ConflictRelation, NoConflicts
from repro.core.instance import ActionType, ProcessInstance
from repro.core.process import Process
from repro.errors import InvalidScheduleError, UnknownProcessError

__all__ = [
    "ActivityEvent",
    "CommitEvent",
    "AbortEvent",
    "GroupAbortEvent",
    "ScheduleEvent",
    "ProcessSchedule",
    "CycleWitnesses",
]


class CycleWitnesses(List[Tuple[str, ...]]):
    """Cycle witnesses of a serialization graph.

    A plain list of cycles (so existing equality comparisons keep
    working) plus a ``truncated`` flag: enumeration is bounded — on
    pathological graphs the number of simple cycles is exponential —
    and the flag records that the bound was hit, so "no cycles found"
    is distinguishable from "stopped looking".
    """

    def __init__(self, *args: Iterable[Tuple[str, ...]]) -> None:
        super().__init__(*args)
        self.truncated = False


@dataclass(frozen=True)
class ActivityEvent:
    """A committed activity invocation inside a schedule.

    ``conflict_service`` is always the *forward* service of the
    activity, also for compensations — the structural realisation of
    perfect commutativity (a compensating activity has exactly the
    conflicts of its forward activity).
    """

    activity: ActivityId
    service: str
    conflict_service: str
    kind: ActivityKind
    effect_free: bool = False

    @property
    def process_id(self) -> str:
        return self.activity.process_id

    @property
    def is_compensation(self) -> bool:
        return self.activity.is_compensation

    @property
    def is_compensatable(self) -> bool:
        return self.kind.is_compensatable and not self.is_compensation

    def __str__(self) -> str:
        return str(self.activity)


@dataclass(frozen=True)
class CommitEvent:
    """Termination event ``C_i``."""

    process_id: str

    def __str__(self) -> str:
        return f"C({self.process_id})"


@dataclass(frozen=True)
class AbortEvent:
    """Termination event ``A_i``."""

    process_id: str

    def __str__(self) -> str:
        return f"A({self.process_id})"


@dataclass(frozen=True)
class GroupAbortEvent:
    """Set-oriented abort ``A(P_{n_1}, …, P_{n_s})`` (Definition 8 2b)."""

    process_ids: Tuple[str, ...]

    def __str__(self) -> str:
        return f"A({', '.join(self.process_ids)})"


ScheduleEvent = Union[ActivityEvent, CommitEvent, AbortEvent, GroupAbortEvent]


class ProcessSchedule:
    """A process schedule over a fixed set of process templates.

    Parameters
    ----------
    processes:
        The process templates of ``P_S``.
    conflicts:
        The conflict relation over services (Definition 6); defaults to
        no conflicts.
    events:
        Optional initial event sequence (used by :meth:`prefix` and the
        completion constructor).
    """

    def __init__(
        self,
        processes: Iterable[Process],
        conflicts: Optional[ConflictRelation] = None,
        events: Iterable[ScheduleEvent] = (),
    ) -> None:
        self._processes: Dict[str, Process] = {}
        for process in processes:
            if process.process_id in self._processes:
                raise InvalidScheduleError(
                    f"duplicate process id {process.process_id!r} in schedule"
                )
            self._processes[process.process_id] = process
        self.conflicts = conflicts if conflicts is not None else NoConflicts()
        self._events: List[ScheduleEvent] = list(events)

    # -- construction --------------------------------------------------------

    def process(self, process_id: str) -> Process:
        try:
            return self._processes[process_id]
        except KeyError:
            raise UnknownProcessError(
                f"process {process_id!r} is not part of this schedule"
            ) from None

    @property
    def process_ids(self) -> Tuple[str, ...]:
        return tuple(self._processes)

    def processes(self) -> Iterator[Process]:
        return iter(self._processes.values())

    def add_process(self, process: Process) -> "ProcessSchedule":
        """Register a further process template; returns ``self``.

        Lets incremental consumers (the scheduler's prefix certifier)
        grow ``P_S`` as processes join the history instead of rebuilding
        the schedule.  Re-adding the same template is a no-op; a
        *different* template under an existing id is rejected.
        """
        existing = self._processes.get(process.process_id)
        if existing is None:
            self._processes[process.process_id] = process
        elif existing is not process:
            raise InvalidScheduleError(
                f"duplicate process id {process.process_id!r} in schedule"
            )
        return self

    def append(self, event: ScheduleEvent) -> "ProcessSchedule":
        """Append a pre-built event; returns ``self`` for chaining."""
        self._events.append(event)
        return self

    def activity_event(
        self,
        process_id: str,
        activity_name: str,
        direction: Direction = Direction.FORWARD,
    ) -> ActivityEvent:
        """Build an :class:`ActivityEvent` from the process template."""
        process = self.process(process_id)
        definition = process.activity(activity_name)
        if direction is Direction.COMPENSATION:
            service = definition.compensation_service
            if service is None:
                raise InvalidScheduleError(
                    f"activity {activity_name!r} of {process_id!r} is "
                    f"{definition.kind.name.lower()} and has no compensation"
                )
        else:
            service = definition.service
        assert service is not None
        return ActivityEvent(
            activity=ActivityId(process_id, activity_name, direction),
            service=service,
            conflict_service=definition.service,  # type: ignore[arg-type]
            kind=definition.kind,
            effect_free=definition.effect_free,
        )

    def record(
        self,
        process_id: str,
        activity_name: str,
        direction: Direction = Direction.FORWARD,
    ) -> "ProcessSchedule":
        """Record a committed activity invocation; returns ``self``."""
        return self.append(self.activity_event(process_id, activity_name, direction))

    def record_compensation(
        self, process_id: str, activity_name: str
    ) -> "ProcessSchedule":
        """Record the compensation ``a^{-1}``; returns ``self``."""
        return self.record(process_id, activity_name, Direction.COMPENSATION)

    def record_commit(self, process_id: str) -> "ProcessSchedule":
        self.process(process_id)
        return self.append(CommitEvent(process_id))

    def record_abort(self, process_id: str) -> "ProcessSchedule":
        self.process(process_id)
        return self.append(AbortEvent(process_id))

    def record_group_abort(self, process_ids: Sequence[str]) -> "ProcessSchedule":
        for process_id in process_ids:
            self.process(process_id)
        return self.append(GroupAbortEvent(tuple(process_ids)))

    # -- basic queries --------------------------------------------------------

    @property
    def events(self) -> Tuple[ScheduleEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def activity_events(self) -> List[Tuple[int, ActivityEvent]]:
        """``(position, event)`` pairs for all activity events."""
        return [
            (index, event)
            for index, event in enumerate(self._events)
            if isinstance(event, ActivityEvent)
        ]

    def events_of(self, process_id: str) -> List[ActivityEvent]:
        """Activity events of one process, in schedule order."""
        return [
            event
            for event in self._events
            if isinstance(event, ActivityEvent) and event.process_id == process_id
        ]

    def committed_processes(self) -> FrozenSet[str]:
        return frozenset(
            event.process_id
            for event in self._events
            if isinstance(event, CommitEvent)
        )

    def aborted_processes(self) -> FrozenSet[str]:
        """Processes with an individual or group abort event."""
        aborted: Set[str] = set()
        for event in self._events:
            if isinstance(event, AbortEvent):
                aborted.add(event.process_id)
            elif isinstance(event, GroupAbortEvent):
                aborted.update(event.process_ids)
        return frozenset(aborted)

    def active_processes(self) -> Tuple[str, ...]:
        """Processes that appear in the schedule but have not terminated."""
        terminated = self.committed_processes() | self.aborted_processes()
        seen: List[str] = []
        for event in self._events:
            if isinstance(event, ActivityEvent):
                process_id = event.process_id
                if process_id not in terminated and process_id not in seen:
                    seen.append(process_id)
        return tuple(seen)

    # -- prefixes -------------------------------------------------------------

    def prefix(self, length: int) -> "ProcessSchedule":
        """The prefix of the first ``length`` events (Definition 10)."""
        if not 0 <= length <= len(self._events):
            raise InvalidScheduleError(
                f"prefix length {length} out of range 0..{len(self._events)}"
            )
        return ProcessSchedule(
            self._processes.values(),
            self.conflicts,
            self._events[:length],
        )

    def prefixes(self) -> Iterator["ProcessSchedule"]:
        """All proper and improper prefixes, shortest first."""
        for length in range(len(self._events) + 1):
            yield self.prefix(length)

    def committed_projection(self) -> "ProcessSchedule":
        """The schedule restricted to committed processes ([BHG87]).

        Theorem 1's serializability claim is about this projection —
        aborted processes left only effect-free traces (their
        compensated pairs reduce away) and do not constrain the serial
        order of the committed ones.
        """
        committed = self.committed_processes()
        events = [
            event
            for event in self._events
            if (
                isinstance(event, (ActivityEvent, CommitEvent))
                and event.process_id in committed
            )
        ]
        return ProcessSchedule(self._processes.values(), self.conflicts, events)

    # -- conflicts and serializability ----------------------------------------

    def events_conflict(self, left: ActivityEvent, right: ActivityEvent) -> bool:
        """Conflict test between two activity events (Definition 6)."""
        return self.conflicts.conflicts(left.conflict_service, right.conflict_service)

    def conflicting_pairs(
        self, inter_process_only: bool = True
    ) -> Iterator[Tuple[int, ActivityEvent, int, ActivityEvent]]:
        """Ordered conflicting pairs ``(i, a, j, b)`` with ``i < j``."""
        activities = self.activity_events()
        for left_pos in range(len(activities)):
            i, left = activities[left_pos]
            for right_pos in range(left_pos + 1, len(activities)):
                j, right = activities[right_pos]
                if inter_process_only and left.process_id == right.process_id:
                    continue
                if self.events_conflict(left, right):
                    yield (i, left, j, right)

    def serialization_graph(self) -> Dict[str, Set[str]]:
        """Process-level conflict graph: ``P_i → P_j`` iff a conflicting
        activity of ``P_i`` precedes one of ``P_j``."""
        graph: Dict[str, Set[str]] = {pid: set() for pid in self._processes}
        for _, left, _, right in self.conflicting_pairs():
            if left.process_id != right.process_id:
                graph[left.process_id].add(right.process_id)
        return graph

    def is_serializable(self) -> bool:
        """Conflict-serializability: the serialization graph is acyclic."""
        return self.serialization_order() is not None

    def serialization_order(self) -> Optional[List[str]]:
        """A serial order witnessing serializability, or ``None``.

        Only processes that appear in the schedule are included; the
        order is a topological sort of the serialization graph.
        """
        graph = self.serialization_graph()
        participating = {
            event.process_id
            for event in self._events
            if isinstance(event, ActivityEvent)
        }
        in_degree = {pid: 0 for pid in participating}
        for source, targets in graph.items():
            if source not in participating:
                continue
            for target in targets:
                if target in participating:
                    in_degree[target] += 1
        frontier = sorted(pid for pid, degree in in_degree.items() if degree == 0)
        order: List[str] = []
        while frontier:
            current = frontier.pop(0)
            order.append(current)
            for target in sorted(graph.get(current, ())):
                if target not in in_degree:
                    continue
                in_degree[target] -= 1
                if in_degree[target] == 0:
                    frontier.append(target)
            frontier.sort()
        if len(order) != len(participating):
            return None
        return order

    def cycles(
        self, limit: int = 64, budget: int = 50_000
    ) -> CycleWitnesses:
        """Simple cycles of the serialization graph (witnesses).

        Bounded: at most ``limit`` witnesses are collected and at most
        ``budget`` search steps are spent (simple-path enumeration is
        exponential on dense graphs).  The returned list's
        ``truncated`` flag is set when either bound cut the search
        short — witnesses are diagnostics, so a bounded sample beats an
        exponential stall.
        """
        graph = self.serialization_graph()
        cycles = CycleWitnesses()
        seen_signatures: Set[FrozenSet[str]] = set()
        steps = [budget]

        def walk(start: str, current: str, path: List[str]) -> bool:
            """Depth-first witness search; False when a bound was hit."""
            for target in sorted(graph.get(current, ())):
                steps[0] -= 1
                if steps[0] <= 0 or len(cycles) >= limit:
                    cycles.truncated = True
                    return False
                if target == start and len(path) > 0:
                    signature = frozenset(path + [current])
                    if signature not in seen_signatures:
                        seen_signatures.add(signature)
                        cycles.append(tuple(path + [current, start]))
                elif target not in path and target != current and target > start:
                    if not walk(start, target, path + [current]):
                        return False
            return True

        for node in sorted(graph):
            if not walk(node, node, []):
                break
        return cycles

    # -- legality and state reconstruction -------------------------------------

    def instance_state(self, process_id: str) -> ProcessInstance:
        """Reconstruct the runtime state of ``process_id`` at this point.

        Replays the process's committed activity events through a fresh
        :class:`ProcessInstance`, inferring the failures that must have
        happened in between (a schedule records only effects; a failed
        invocation is visible only through the alternative path that was
        taken).  Raises :class:`InvalidScheduleError` when the observed
        events are not a legal execution of the process (Definition 7.1).
        """
        process = self.process(process_id)
        instance = ProcessInstance(process)
        for event in self.events_of(process_id):
            self.replay_event(instance, event, process_id)
        return instance

    def replay_event(
        self,
        instance: ProcessInstance,
        event: ActivityEvent,
        process_id: str,
    ) -> None:
        """Advance ``instance`` by one observed activity event.

        The single-step engine behind :meth:`instance_state`, exposed so
        incremental consumers (the scheduler's prefix certifier) can
        maintain long-lived replica states instead of re-replaying every
        prefix from scratch.  Raises :class:`InvalidScheduleError` when
        the event is not a legal continuation.
        """
        budget = len(instance.process) * 4 + 8
        abort_inferred = False
        while budget:
            budget -= 1
            action = instance.next_action()
            if action.type is ActionType.FINISHED:
                # A logically finished process counts as active until its
                # commit is recorded (Definition 8 2b): a trailing
                # compensation means it was caught by a (cascading or
                # group) abort — re-open it through its completion.
                if not abort_inferred and instance.committed_sequence():
                    abort_inferred = True
                    instance.request_abort()
                    if not instance.status.is_terminal:
                        continue
                raise InvalidScheduleError(
                    f"event {event} is not a legal continuation: process "
                    f"{process_id!r} already terminated"
                )
            expected_direction = (
                Direction.COMPENSATION
                if action.type is ActionType.COMPENSATE
                else Direction.FORWARD
            )
            if (
                action.activity == event.activity.activity_name
                and expected_direction is event.activity.direction
            ):
                instance.on_committed(action.activity)
                return
            expected_retriable = (
                action.type is ActionType.INVOKE
                and instance.definition(action.activity).kind.is_retriable
            )
            if expected_retriable:
                # A retriable activity never fails terminally, so the
                # only legal explanation for the mismatch is that the
                # process was aborted: compensations and the retriable
                # forward-recovery path follow (completion C(P)).
                if abort_inferred:
                    raise InvalidScheduleError(
                        f"event {event} cannot be explained for process "
                        f"{process_id!r} (mismatch during inferred abort)"
                    )
                abort_inferred = True
                instance.request_abort()
                continue
            if event.activity.direction is Direction.COMPENSATION:
                committed = instance.committed_sequence()
                if (
                    action.type is ActionType.INVOKE
                    and committed
                    and committed[-1] == event.activity.activity_name
                ):
                    # The observed compensation implies the expected
                    # forward activity failed and the instance is
                    # backtracking.
                    instance.on_failed(action.activity)
                    continue
                raise InvalidScheduleError(
                    f"compensation {event} is not a legal continuation of "
                    f"process {process_id!r} (expected {action})"
                )
            if action.type is ActionType.INVOKE:
                # The observed forward activity differs from the expected
                # one: the expected activity must have failed.
                instance.on_failed(action.activity)
                continue
            # expected a compensation but observed a forward activity:
            # in a schedule the compensation would have been recorded.
            raise InvalidScheduleError(
                f"event {event} observed while process {process_id!r} must "
                f"compensate {action.activity!r} first"
            )
        raise InvalidScheduleError(
            f"could not explain event {event} as a legal execution step of "
            f"process {process_id!r}"
        )

    def is_legal(self) -> bool:
        """Definition 7.1: every per-process projection is a legal
        execution respecting precedence and preference orders."""
        try:
            self.validate()
        except InvalidScheduleError:
            return False
        return True

    def validate(self) -> None:
        """Raise :class:`InvalidScheduleError` if any projection is illegal."""
        for process_id in self._processes:
            if self.events_of(process_id) or process_id in (
                self.committed_processes() | self.aborted_processes()
            ):
                self.instance_state(process_id)

    # -- rendering --------------------------------------------------------------

    def __str__(self) -> str:
        return " ".join(str(event) for event in self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessSchedule({str(self)!r})"
