"""Perf counters for the incremental scheduling core.

A tiny mutable counter bag the scheduler and the incremental
serialization graph thread their hot-path statistics through: conflict
lookups and cache hits, inverted-index queries vs. legacy log scans,
graph-edge multiset updates, topological-order maintenance work, and
paranoid-certification cost.  The counters make the incremental core
*observable* — benchmarks (X11) and the CLI ``--perf-counters`` flag
render them, and regressions show up as counter blow-ups long before
they show up as wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["PerfCounters"]


@dataclass
class PerfCounters:
    """Counters of the scheduler's per-operation work.

    All counts are cumulative over the scheduler's lifetime; use
    :meth:`snapshot` to export them (merged with the conflict-relation
    cache statistics the scheduler adds).
    """

    #: Indexed dependency queries (conflicting predecessors/successors,
    #: last-effective lookups) answered from the inverted indexes.
    index_lookups: int = 0
    #: Legacy full-log scans (shadow/rebuild paths only).
    log_scans: int = 0
    #: Edge-multiset count adjustments (increments and decrements).
    edge_updates: int = 0
    #: Events added to / removed from the incremental graph.
    graph_events: int = 0
    #: Full from-scratch rebuilds (conflict-relation mutation only).
    graph_rebuilds: int = 0
    #: Pearce–Kelly local reorders of the topological order.
    topo_shifts: int = 0
    #: Full Kahn recomputations of the topological order.
    topo_recomputes: int = 0
    #: Cycle checks settled by the topological-order fast path.
    cycle_fast_path: int = 0
    #: Cycle checks that needed the DFS fallback.
    cycle_dfs: int = 0
    #: Prefixes certified by incremental paranoid-mode certification.
    certified_prefixes: int = 0
    #: Wall-clock milliseconds spent certifying prefixes.
    certify_ms: float = 0.0
    #: Free-form extra counters (merged into snapshots).
    extra: Dict[str, float] = field(default_factory=dict)

    def snapshot(self) -> Dict[str, float]:
        """Export all counters as a flat name → value mapping."""
        values: Dict[str, float] = {
            "index_lookups": self.index_lookups,
            "log_scans": self.log_scans,
            "edge_updates": self.edge_updates,
            "graph_events": self.graph_events,
            "graph_rebuilds": self.graph_rebuilds,
            "topo_shifts": self.topo_shifts,
            "topo_recomputes": self.topo_recomputes,
            "cycle_fast_path": self.cycle_fast_path,
            "cycle_dfs": self.cycle_dfs,
            "certified_prefixes": self.certified_prefixes,
            "certify_ms": round(self.certify_ms, 3),
        }
        values.update(self.extra)
        return values
