"""Perf counters for the incremental scheduling core.

Since the observability layer landed there is **one** counter system:
:class:`PerfCounters` is a thin facade over a
:class:`repro.obs.metrics.MetricsRegistry`.  Each field
(``index_lookups``, ``edge_updates``, ...) is a registry-owned
:class:`~repro.obs.metrics.Counter` registered under ``perf.<field>``;
counters implement the numeric protocol, so the hot-path call sites
(``perf.edge_updates += 1``) and test assertions (``perf.log_scans ==
0``) are unchanged, while the same numbers export through the
registry's snapshot and Prometheus surfaces.

:meth:`snapshot` keeps its historical flat layout — benchmarks (X11),
``RunMetrics.perf_row`` and the CLI ``--perf-counters`` flag all render
it unchanged.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.metrics import Counter, MetricsRegistry

__all__ = ["PerfCounters"]


class PerfCounters:
    """Counters of the scheduler's per-operation work.

    All counts are cumulative over the scheduler's lifetime; use
    :meth:`snapshot` to export them (merged with the conflict-relation
    cache statistics the scheduler adds).

    Fields
    ------
    ``index_lookups``
        Indexed dependency queries (conflicting predecessors/
        successors, last-effective lookups) answered from the inverted
        indexes.
    ``log_scans``
        Legacy full-log scans (shadow/rebuild paths only).
    ``edge_updates``
        Edge-multiset count adjustments (increments and decrements).
    ``graph_events``
        Events added to / removed from the incremental graph.
    ``graph_rebuilds``
        Full from-scratch rebuilds (conflict-relation mutation only).
    ``topo_shifts``
        Pearce–Kelly local reorders of the topological order.
    ``topo_recomputes``
        Full Kahn recomputations of the topological order.
    ``cycle_fast_path``
        Cycle checks settled by the topological-order fast path.
    ``cycle_dfs``
        Cycle checks that needed the DFS fallback.
    ``certified_prefixes``
        Prefixes certified by incremental paranoid-mode certification.
    ``certify_ms``
        Wall-clock milliseconds spent certifying prefixes.
    """

    _FIELDS = (
        "index_lookups",
        "log_scans",
        "edge_updates",
        "graph_events",
        "graph_rebuilds",
        "topo_shifts",
        "topo_recomputes",
        "cycle_fast_path",
        "cycle_dfs",
        "certified_prefixes",
        "certify_ms",
    )

    index_lookups: Counter
    log_scans: Counter
    edge_updates: Counter
    graph_events: Counter
    graph_rebuilds: Counter
    topo_shifts: Counter
    topo_recomputes: Counter
    cycle_fast_path: Counter
    cycle_dfs: Counter
    certified_prefixes: Counter
    certify_ms: Counter

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        #: The backing registry — shared with the scheduler's
        #: observability surface when one is passed in.
        self.registry = registry if registry is not None else MetricsRegistry()
        for name in self._FIELDS:
            setattr(self, name, self.registry.counter(f"perf.{name}"))
        #: Free-form extra counters (merged into snapshots).
        self.extra: Dict[str, float] = {}

    def snapshot(self) -> Dict[str, float]:
        """Export all counters as a flat name → value mapping."""
        values: Dict[str, float] = {}
        for name in self._FIELDS:
            counter: Counter = getattr(self, name)
            if name == "certify_ms":
                values[name] = round(float(counter.value), 3)
            else:
                values[name] = int(counter.value)
        values.update(self.extra)
        return values
