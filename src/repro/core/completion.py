"""Completed process schedules ``S̃`` (paper §3.3, Definition 8).

To reason about correct recovery jointly with concurrency control, the
unified theory makes recovery-related activities explicit: every abort
activity ``A_i`` is replaced by the activities of the completion
``C(P_i)`` of the aborted process, and all processes still *active* are
treated as aborted through a set-oriented **group abort**
``A(P_{n_1}, …, P_{n_s})`` appended at the end of the schedule.

Crucially — and unlike the expanded schedule of the traditional unified
theory, which only ever adds compensations — the completion of a process
in ``F-REC`` contains *forward recovery* activities (retriable
activities that have not yet been executed).  These can introduce **new
conflicts** that are not visible in ``S`` itself, which is exactly why
no SOT-like criterion exists for transactional processes and the
completed schedule must always be considered (paper §3.5).

The ordering of completion activities follows Definition 8 rules
3(a)–3(f), instantiated deterministically:

* completion activities of each process keep their ``C(P_i)`` internal
  order and follow all original activities (rules 3(b), 3(c));
* across group-aborted processes, all *compensations* run first, in
  reverse global order of their forward counterparts — this realises
  Lemma 2 (compensations in reverse order of their activities) and
  Lemma 3 (compensations precede conflicting retriable forward-recovery
  activities);
* forward-recovery activities then run process by process following the
  serialization order established in ``S`` (rules 3(d), 3(f));
* every completed process finally commits (``A_i`` becomes ``C_i``).

A mid-schedule individual abort ``A_i`` is expanded *in place*: its
completion activities are inserted at the abort's position, which is
when they would actually have executed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.activity import Direction
from repro.core.instance import Completion, ProcessInstance
from repro.core.schedule import (
    AbortEvent,
    ActivityEvent,
    CommitEvent,
    GroupAbortEvent,
    ProcessSchedule,
    ScheduleEvent,
)

__all__ = ["CompletedSchedule", "complete_schedule"]


class CompletedSchedule(ProcessSchedule):
    """A completed process schedule ``S̃`` (Definition 8).

    Behaves like an ordinary :class:`ProcessSchedule` in which every
    process commits; additionally remembers which processes did *not*
    commit in the original schedule (``aborted_in_original``) — the
    reduction's effect-free rule only applies to those — and at which
    position the appended group abort sits, if any.
    """

    def __init__(
        self,
        original: ProcessSchedule,
        events: Iterable[ScheduleEvent],
        aborted_in_original: FrozenSet[str],
        completion_positions: FrozenSet[int],
    ) -> None:
        super().__init__(original.processes(), original.conflicts, events)
        self.original = original
        self.aborted_in_original = aborted_in_original
        #: Positions (indices) of events added by the completion.
        self.completion_positions = completion_positions

    def completion_events(self) -> List[Tuple[int, ActivityEvent]]:
        """``(position, event)`` pairs for activities added by completion."""
        return [
            (index, event)
            for index, event in enumerate(self.events)
            if index in self.completion_positions
            and isinstance(event, ActivityEvent)
        ]


def complete_schedule(
    schedule: ProcessSchedule,
    states: Optional[Mapping[str, ProcessInstance]] = None,
) -> CompletedSchedule:
    """Build the completed process schedule ``S̃`` of ``schedule``.

    Every individual abort is expanded in place; all processes active at
    the end of the schedule are aborted jointly via a group abort whose
    completions are ordered per Definition 8 / Lemmas 2-3 (see module
    docstring).  The result is a schedule in which every participating
    process commits.

    ``states`` optionally supplies pre-replayed
    :class:`~repro.core.instance.ProcessInstance` replicas per process
    id — the incremental certifier maintains them across prefixes, so
    the completion avoids re-replaying each process's events from
    scratch.  A supplied state must equal what
    ``schedule.instance_state(pid)`` would reconstruct *at that
    process's last event* (a process never has events after its abort,
    so the replica state is also its state at the abort position);
    processes missing from the mapping fall back to reconstruction.
    """
    events: List[ScheduleEvent] = []
    completion_positions: Set[int] = set()
    aborted: Set[str] = set()

    def emit(event: ScheduleEvent, is_completion: bool) -> None:
        if is_completion:
            completion_positions.add(len(events))
        events.append(event)

    # Pass 1: copy events, expanding individual aborts in place.
    position = 0
    for event in schedule.events:
        if isinstance(event, AbortEvent):
            aborted.add(event.process_id)
            if states is not None and event.process_id in states:
                state = states[event.process_id]
            else:
                state = schedule.prefix(position).instance_state(
                    event.process_id
                )
            completion = state.completion()
            for completion_event in _completion_events(
                schedule, event.process_id, completion
            ):
                emit(completion_event, is_completion=True)
            # Definition 8 2(c): the abort activity A_i becomes C_i.
            emit(CommitEvent(event.process_id), is_completion=True)
        elif isinstance(event, GroupAbortEvent):
            # A group abort already inside S asserts that the completion
            # activities of its processes follow in S itself (this is
            # what schedulers and crash recovery record); it is kept as
            # a marker and not re-expanded — which also makes completing
            # an already-completed schedule a no-op.
            emit(event, is_completion=False)
            aborted.update(event.process_ids)
        else:
            emit(event, is_completion=False)
        position += 1

    # Pass 2: group abort of all processes still active (Definition 8 2b).
    active = tuple(
        pid for pid in schedule.active_processes() if pid not in aborted
    )
    if active:
        emit(GroupAbortEvent(active), is_completion=True)
        aborted.update(active)
        _expand_group(schedule, schedule, active, emit, states=states)

    return CompletedSchedule(
        schedule,
        events,
        frozenset(aborted),
        frozenset(completion_positions),
    )


def _completion_events(
    schedule: ProcessSchedule,
    process_id: str,
    completion: Completion,
) -> List[ActivityEvent]:
    """The completion ``C(P_i)`` as activity events in execution order."""
    built: List[ActivityEvent] = []
    for name in completion.compensations:
        built.append(
            schedule.activity_event(process_id, name, Direction.COMPENSATION)
        )
    for name in completion.forward:
        built.append(schedule.activity_event(process_id, name))
    return built


def _expand_group(
    schedule: ProcessSchedule,
    state_source: ProcessSchedule,
    process_ids: Sequence[str],
    emit,
    states: Optional[Mapping[str, ProcessInstance]] = None,
) -> None:
    """Emit the completions of a group abort (Definition 8 rules 3(d)-(f)).

    All compensations first — in reverse global order of their forward
    activities (Lemma 2), which also puts them before every retriable
    forward-recovery activity (Lemma 3) — then the forward-recovery
    paths, process by process in serialization order, then the commits.
    """
    completions: Dict[str, Completion] = {}
    for process_id in process_ids:
        if states is not None and process_id in states:
            state = states[process_id]
        else:
            state = state_source.instance_state(process_id)
        completions[process_id] = state.completion()

    # Compensations in reverse global order of their forward activities.
    forward_positions: Dict[Tuple[str, str], int] = {}
    for index, event in state_source.activity_events():
        if not event.is_compensation:
            forward_positions[
                (event.process_id, event.activity.activity_name)
            ] = index
    compensation_queue: List[Tuple[int, str, str]] = []
    for process_id, completion in completions.items():
        for name in completion.compensations:
            original_position = forward_positions.get((process_id, name), -1)
            compensation_queue.append((original_position, process_id, name))
    compensation_queue.sort(reverse=True)
    for _, process_id, name in compensation_queue:
        emit(
            schedule.activity_event(process_id, name, Direction.COMPENSATION),
            True,
        )

    # Forward-recovery activities, process by process.  Rule 3(d)
    # leaves the order of conflicting completion activities free; we
    # choose a topological order of the dependency graph that combines
    # the serialization edges of S with the *forced* edges "executed
    # activity of P conflicts with a forward-recovery activity of Q"
    # (the executed activity necessarily precedes the future one), so
    # that the free choices never close a cycle the forced edges leave
    # open.
    ordered_ids = _forward_group_order(state_source, process_ids, completions)
    for process_id in ordered_ids:
        for name in completions[process_id].forward:
            emit(schedule.activity_event(process_id, name), True)

    # Every aborted process finally commits (Definition 8 2c).
    for process_id in ordered_ids:
        emit(CommitEvent(process_id), True)


def _effective_events(schedule: ProcessSchedule) -> List[ActivityEvent]:
    """Activity events minus cancelled compensation pairs.

    An executed activity followed by its own compensation forms an
    effect-free pair (Definition 2) that the reduction removes; such
    pairs must not contribute conflict-order constraints when deciding
    the completion's free orderings.
    """
    kept: List[Optional[ActivityEvent]] = []
    last_forward: Dict[tuple, int] = {}
    for event in (event for _, event in schedule.activity_events()):
        key = (event.process_id, event.activity.activity_name)
        if event.is_compensation and key in last_forward:
            kept[last_forward.pop(key)] = None
            continue
        if not event.is_compensation:
            last_forward[key] = len(kept)
        kept.append(event)
    return [event for event in kept if event is not None]


def _forward_group_order(
    state_source: ProcessSchedule,
    process_ids: Sequence[str],
    completions: Dict[str, Completion],
) -> List[str]:
    """Order the forward-recovery groups to avoid avoidable cycles."""
    graph: Dict[str, Set[str]] = {pid: set() for pid in process_ids}
    effective = _effective_events(state_source)
    for left_index in range(len(effective)):
        left = effective[left_index]
        if left.process_id not in graph:
            continue
        for right_index in range(left_index + 1, len(effective)):
            right = effective[right_index]
            if right.process_id not in graph:
                continue
            if left.process_id == right.process_id:
                continue
            if state_source.events_conflict(left, right):
                graph[left.process_id].add(right.process_id)

    forward_services: Dict[str, List[str]] = {}
    for process_id in process_ids:
        services = []
        process = state_source.process(process_id)
        for name in completions[process_id].forward:
            service = process.activity(name).service
            assert service is not None
            services.append(service)
        forward_services[process_id] = services

    for event in effective:
        for target_pid, services in forward_services.items():
            if event.process_id == target_pid or event.process_id not in graph:
                continue
            if any(
                state_source.conflicts.conflicts(
                    event.conflict_service, service
                )
                for service in services
            ):
                graph[event.process_id].add(target_pid)

    in_degree = {pid: 0 for pid in graph}
    for source, targets in graph.items():
        for target in targets:
            in_degree[target] += 1
    frontier = sorted(pid for pid, degree in in_degree.items() if degree == 0)
    order: List[str] = []
    while frontier:
        current = frontier.pop(0)
        order.append(current)
        for target in sorted(graph[current]):
            in_degree[target] -= 1
            if in_degree[target] == 0:
                frontier.append(target)
        frontier.sort()
    if len(order) != len(graph):
        # The forced edges already form a cycle: the schedule is
        # irreducible under any choice, so any deterministic order will
        # do for the witness.
        return sorted(process_ids)
    return order
