"""Commutativity and conflict of activities (paper §3.2, Definition 6).

Two activities *commute* when swapping them in any context leaves all
return values unchanged; otherwise they are *in conflict*.  The paper
assumes commutativity to be **perfect**: if ``a`` and ``b`` conflict,
then so do all combinations of ``a, a⁻¹`` with ``b, b⁻¹``, and likewise
for commuting pairs.  We realise perfect commutativity structurally: the
conflict relation is declared between *forward* services only, and every
occurrence (forward or compensating) is normalised to its forward
service before lookup.

Conflicts can be declared two ways:

* **explicitly**, as a symmetric set of service pairs — this is how the
  paper's abstract examples (Figures 4-9) specify which activities
  "do not commute (denoted by dashed arcs)";
* **semantically**, from read/write sets over named resources: two
  services conflict iff one writes a resource the other reads or writes.
  This matches how real subsystems derive conflicts and is what the
  simulation workloads use.

Both representations implement the same :class:`ConflictRelation`
interface so schedules, checkers and schedulers are agnostic to the
source of conflict information.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from functools import lru_cache
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.core.activity import COMPENSATION_SUFFIX

__all__ = [
    "ConflictRelation",
    "ExplicitConflicts",
    "ReadWriteConflicts",
    "NoConflicts",
    "AllConflicts",
    "UnionConflicts",
    "normalize_service",
]


@lru_cache(maxsize=None)
def normalize_service(service: str) -> str:
    """Map a compensation service name to its forward service.

    Perfect commutativity (paper §3.2) means a compensating activity has
    exactly the conflicts of its forward activity, so conflict lookup
    always happens on forward service names.  Memoised: the service
    universe is small and fixed per run while lookups are the scheduler's
    hottest string operation.
    """
    if service.endswith(COMPENSATION_SUFFIX):
        return service[: -len(COMPENSATION_SUFFIX)]
    return service


class ConflictRelation:
    """Abstract symmetric conflict relation over service names.

    Subclasses implement :meth:`_conflicts_forward` on *normalised*
    (forward) service names; the public API applies perfect-commutativity
    normalisation and symmetry.  Mutable relations maintain a
    monotonically increasing :attr:`version` so callers that cache
    derived structures (conflict matrices, serialization graphs) can
    detect mid-run mutations and rebuild.
    """

    @property
    def version(self) -> int:
        """Mutation counter; immutable relations stay at 0 forever."""
        return getattr(self, "_version", 0)

    def _bump(self) -> None:
        """Record a mutation: advance the version, notify subscribers.

        Push-based invalidation keeps the hot lookup path free of any
        per-call version polling — derived caches (:class:`UnionConflicts`)
        are told *when* a child mutates instead of asking every time.
        """
        self._version = getattr(self, "_version", 0) + 1
        subscribers = getattr(self, "_subscribers", None)
        if subscribers:
            alive = []
            for ref in subscribers:
                parent = ref()
                if parent is not None:
                    parent._on_child_mutated()
                    alive.append(ref)
            self._subscribers = alive

    def _subscribe(self, parent: "UnionConflicts") -> None:
        subscribers = getattr(self, "_subscribers", None)
        if subscribers is None:
            subscribers = []
            self._subscribers = subscribers
        subscribers.append(weakref.ref(parent))

    def conflicts(self, service_a: str, service_b: str) -> bool:
        """``True`` iff the two services do not commute (Definition 6)."""
        return self._conflicts_forward(
            normalize_service(service_a), normalize_service(service_b)
        )

    def commute(self, service_a: str, service_b: str) -> bool:
        """``True`` iff the two services commute (Definition 6)."""
        return not self.conflicts(service_a, service_b)

    def _conflicts_forward(self, service_a: str, service_b: str) -> bool:
        raise NotImplementedError

    def __or__(self, other: "ConflictRelation") -> "ConflictRelation":
        """Union of two relations: conflict if either declares one."""
        return UnionConflicts((self, other))


class NoConflicts(ConflictRelation):
    """Every pair of services commutes — maximal parallelism."""

    def _conflicts_forward(self, service_a: str, service_b: str) -> bool:
        return False


class AllConflicts(ConflictRelation):
    """Every pair of distinct services conflicts — the adversarial case.

    Whether a service conflicts with itself is configurable; the paper's
    examples treat repeated invocations of the same service as
    conflicting, which is the default.
    """

    def __init__(self, self_conflicts: bool = True) -> None:
        self._self_conflicts = self_conflicts

    def _conflicts_forward(self, service_a: str, service_b: str) -> bool:
        if service_a == service_b:
            return self._self_conflicts
        return True


class ExplicitConflicts(ConflictRelation):
    """Conflict relation given as an explicit set of service pairs.

    ``ExplicitConflicts([("pdm_entry", "pdm_read")])`` declares that the
    two services do not commute.  Pairs are stored symmetrically; perfect
    closure over compensations is applied on lookup.
    """

    def __init__(self, pairs: Iterable[Tuple[str, str]] = ()) -> None:
        self._pairs: Set[FrozenSet[str]] = set()
        self._version = 0
        for left, right in pairs:
            self.declare(left, right)

    def declare(self, service_a: str, service_b: str) -> "ExplicitConflicts":
        """Declare that two services conflict; returns ``self`` for chaining."""
        pair = frozenset(
            (normalize_service(service_a), normalize_service(service_b))
        )
        if pair not in self._pairs:
            self._pairs.add(pair)
            self._bump()
        return self

    def retract(self, service_a: str, service_b: str) -> "ExplicitConflicts":
        """Remove a declared conflict if present; returns ``self``."""
        pair = frozenset(
            (normalize_service(service_a), normalize_service(service_b))
        )
        if pair in self._pairs:
            self._pairs.discard(pair)
            self._bump()
        return self

    def _conflicts_forward(self, service_a: str, service_b: str) -> bool:
        return frozenset((service_a, service_b)) in self._pairs

    def pairs(self) -> Iterator[Tuple[str, str]]:
        """Iterate declared conflicting pairs (normalised, arbitrary order)."""
        for pair in self._pairs:
            members = sorted(pair)
            if len(members) == 1:
                yield (members[0], members[0])
            else:
                yield (members[0], members[1])

    def __len__(self) -> int:
        return len(self._pairs)


@dataclass(frozen=True)
class _AccessSet:
    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()


class ReadWriteConflicts(ConflictRelation):
    """Semantic conflicts derived from read/write sets over resources.

    Services are registered with the resources they read and write.  Two
    services conflict iff one writes a resource the other touches —
    the classical RW/WR/WW test lifted to semantically rich operations.
    Unregistered services are treated as conflict-free (a service that
    touches no shared resource commutes with everything).
    """

    def __init__(self) -> None:
        self._accesses: Dict[str, _AccessSet] = {}
        self._version = 0

    def register(
        self,
        service: str,
        reads: Iterable[str] = (),
        writes: Iterable[str] = (),
    ) -> "ReadWriteConflicts":
        """Register (or extend) the access set of ``service``.

        Registering the same service twice unions the access sets, which
        lets scenario builders declare accesses incrementally.
        """
        name = normalize_service(service)
        current = self._accesses.get(name, _AccessSet())
        merged = _AccessSet(
            reads=current.reads | frozenset(reads),
            writes=current.writes | frozenset(writes),
        )
        # An unknown service and an empty registered access set are
        # equivalent (both conflict-free), so only a genuine change to
        # the access sets counts as a mutation.
        if merged != current:
            self._bump()
        self._accesses[name] = merged
        return self

    def access_set(self, service: str) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        """Return ``(reads, writes)`` of a service (empty if unknown)."""
        entry = self._accesses.get(normalize_service(service), _AccessSet())
        return entry.reads, entry.writes

    def _conflicts_forward(self, service_a: str, service_b: str) -> bool:
        left = self._accesses.get(service_a)
        right = self._accesses.get(service_b)
        if left is None or right is None:
            return False
        if left.writes & (right.reads | right.writes):
            return True
        if right.writes & left.reads:
            return True
        return False

    def services(self) -> Iterator[str]:
        return iter(self._accesses)


class UnionConflicts(ConflictRelation):
    """Union of several conflict relations.

    Useful to combine semantic (read/write) conflicts with extra
    explicitly declared ones, e.g. conflicts through an external channel
    the resource model does not capture.

    Lookups are memoised behind a per-pair boolean cache keyed on
    normalised names (both orders, since the relation is symmetric); the
    cache drops itself whenever any child relation's :attr:`version`
    moves, so mid-run ``declare``/``retract``/``register`` calls stay
    correct.  ``lookups`` / ``cache_hits`` feed the perf-counter layer.
    """

    def __init__(self, relations: Iterable[ConflictRelation]) -> None:
        flattened = []
        for relation in relations:
            if isinstance(relation, UnionConflicts):
                flattened.extend(relation._relations)
            else:
                flattened.append(relation)
        self._relations: Tuple[ConflictRelation, ...] = tuple(flattened)
        self._cache: Dict[Tuple[str, str], bool] = {}
        #: Total pair lookups / lookups answered from the cache.
        self.lookups = 0
        self.cache_hits = 0
        self._version = sum(
            relation.version for relation in self._relations
        )
        for relation in self._relations:
            relation._subscribe(self)

    def _on_child_mutated(self) -> None:
        """A child relation changed: drop the pair cache (push model)."""
        self._version += 1
        self._cache.clear()

    def _conflicts_forward(self, service_a: str, service_b: str) -> bool:
        self.lookups += 1
        key = (service_a, service_b)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        result = any(
            relation._conflicts_forward(service_a, service_b)
            for relation in self._relations
        )
        self._cache[key] = result
        self._cache[(service_b, service_a)] = result
        return result
