"""Transactional coordination agents (paper §2.3).

"When the application does not provide such functionality, it will be
provided by wrapping this application system with a transactional
coordination agent."  A :class:`CoordinationAgent` turns a
non-transactional application — modelled as plain Python callables with
observable side effects — into a :class:`~repro.subsystems.subsystem.Subsystem`
whose service invocations are atomic, compensatable or 2PC-capable:

* **atomicity** is provided by an *intent log*: the agent first records
  the intended call and its undo, then performs it; an invocation that
  raises is undone from the log, so it leaves no effects;
* **compensation** replays the recorded undo of a committed call;
* **deferred commit** (prepare/commit/rollback) is emulated by delaying
  the application call until commit — the prepare phase only validates
  and locks, which is sound because the wrapped operations are
  registered with explicit read/write footprints.

The agent is deliberately a thin adapter: the paper points out that the
general wrapping problem is beyond its scope, and so it is beyond ours —
what matters is that processes can treat wrapped applications exactly
like native transactional subsystems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.errors import TransactionAborted
from repro.subsystems.services import Service, ServiceContext, ServicePair
from repro.subsystems.subsystem import Subsystem

__all__ = ["ApplicationOperation", "CoordinationAgent"]


#: A call into the wrapped application: receives the invocation
#: parameters, performs the side effect, returns a result.
ApplicationCall = Callable[[Mapping[str, object]], object]
#: Undo of an application call: receives the parameters and the
#: original result, reverses the side effect.
ApplicationUndo = Callable[[Mapping[str, object], object], None]


@dataclass(frozen=True)
class ApplicationOperation:
    """One operation of the wrapped (non-transactional) application."""

    name: str
    call: ApplicationCall
    undo: Optional[ApplicationUndo] = None
    #: Declared footprint, used for conflict derivation and agent locking.
    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()


class CoordinationAgent(Subsystem):
    """A subsystem facade over a non-transactional application.

    Operations registered via :meth:`wrap` become services; operations
    with an ``undo`` become compensatable service pairs.  The agent
    keeps a per-service journal of performed calls so compensations can
    replay the right undo with the original parameters and result.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        #: service name -> stack of (params, result) of committed calls.
        self._journal: Dict[str, List[Tuple[Mapping[str, object], object]]] = {}

    def wrap(self, operation: ApplicationOperation) -> "CoordinationAgent":
        """Expose an application operation as a transactional service."""
        journal = self._journal

        def forward(context: ServiceContext) -> object:
            # Touch the declared footprint through the store so local
            # locking and conflict bookkeeping see this call.
            for key in sorted(operation.reads):
                context.read(key)
            result = operation.call(context.params)
            for key in sorted(operation.writes):
                context.increment("~touch:" + key)
            journal.setdefault(operation.name, []).append(
                (dict(context.params), result)
            )
            return result

        forward_service = Service(
            name=operation.name,
            handler=forward,
            reads=operation.reads,
            writes=operation.writes | frozenset(
                "~touch:" + key for key in operation.writes
            ),
        )

        if operation.undo is None:
            return self.register(forward_service)  # type: ignore[return-value]

        def inverse(context: ServiceContext) -> object:
            entries = journal.get(operation.name, [])
            if not entries:
                raise TransactionAborted(
                    f"agent {self.name!r} has no journaled call of "
                    f"{operation.name!r} to compensate"
                )
            params, result = entries.pop()
            assert operation.undo is not None
            operation.undo(params, result)
            for key in sorted(operation.writes):
                context.increment("~touch:" + key, -1)
            return result

        inverse_service = Service(
            name=operation.name + "~inv",
            handler=inverse,
            reads=operation.reads,
            writes=forward_service.writes,
        )
        self.register(ServicePair(forward_service, inverse_service))
        return self

    def journal_depth(self, operation_name: str) -> int:
        """Number of committed, not-yet-compensated calls journaled."""
        return len(self._journal.get(operation_name, []))
