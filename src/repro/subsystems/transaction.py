"""Local transactions inside a transactional subsystem (paper §2.3).

Every activity invocation runs as a :class:`LocalTransaction` in its
subsystem: reads go through the lock manager, writes are buffered, and
the store is only modified at commit — so an invocation that aborts is
atomic and leaves no effects.

Besides the usual ``ACTIVE → COMMITTED/ABORTED`` lifecycle, a local
transaction supports the **prepared** state of the two-phase commit
protocol: ``prepare()`` fixes the write set and keeps all locks; the
transaction can then still ``commit()`` or ``rollback()``.  Prepared
transactions are how the subsystems provide the *deferred commit of
non-compensatable activities* that Lemma 1 requires, and the in-doubt
state crash recovery must resolve.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Optional, Set

from repro.errors import AlreadyTerminatedError, NotPreparedError
from repro.subsystems.resource import LockManager, LockMode, VersionedStore

__all__ = ["TransactionState", "LocalTransaction"]


class TransactionState(enum.Enum):
    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"

    @property
    def is_terminal(self) -> bool:
        return self in (TransactionState.COMMITTED, TransactionState.ABORTED)


class LocalTransaction:
    """One atomic unit of work against a subsystem's store."""

    def __init__(
        self,
        txn_id: str,
        store: VersionedStore,
        locks: LockManager,
    ) -> None:
        self.txn_id = txn_id
        self._store = store
        self._locks = locks
        self._state = TransactionState.ACTIVE
        self._writes: Dict[str, object] = {}
        self._reads: Set[str] = set()

    # -- state -----------------------------------------------------------

    @property
    def state(self) -> TransactionState:
        return self._state

    @property
    def read_set(self) -> FrozenSet[str]:
        return frozenset(self._reads)

    @property
    def write_set(self) -> FrozenSet[str]:
        return frozenset(self._writes)

    def _require_active(self) -> None:
        if self._state is not TransactionState.ACTIVE:
            raise AlreadyTerminatedError(
                f"transaction {self.txn_id!r} is {self._state.value}, not active"
            )

    # -- data operations ---------------------------------------------------

    def read(self, key: str, default: object = None) -> object:
        """Read a key under a shared lock (own writes win)."""
        self._require_active()
        if key in self._writes:
            return self._writes[key]
        self._locks.acquire(self.txn_id, key, LockMode.SHARED)
        self._reads.add(key)
        return self._store.get(key, default)

    def write(self, key: str, value: object) -> None:
        """Buffer a write under an exclusive lock."""
        self._require_active()
        self._locks.acquire(self.txn_id, key, LockMode.EXCLUSIVE)
        self._writes[key] = value

    def increment(self, key: str, amount: float = 1) -> float:
        """Read-modify-write convenience used by counter services."""
        current = self.read(key, 0)
        updated = (current or 0) + amount  # type: ignore[operator]
        self.write(key, updated)
        return updated  # type: ignore[return-value]

    # -- lifecycle -----------------------------------------------------------

    def prepare(self) -> None:
        """Enter the prepared state of 2PC: writes fixed, locks kept."""
        self._require_active()
        self._state = TransactionState.PREPARED

    def commit(self) -> None:
        """Install buffered writes and release all locks."""
        if self._state not in (TransactionState.ACTIVE, TransactionState.PREPARED):
            raise AlreadyTerminatedError(
                f"transaction {self.txn_id!r} is {self._state.value}"
            )
        self._store.apply(self._writes)
        self._state = TransactionState.COMMITTED
        self._locks.release_all(self.txn_id)

    def rollback(self) -> None:
        """Discard buffered writes and release all locks.

        Legal from both the active and the prepared state — a prepared
        transaction is exactly one that can still go either way, which
        is what makes deferred commits recoverable.
        """
        if self._state.is_terminal:
            raise AlreadyTerminatedError(
                f"transaction {self.txn_id!r} is {self._state.value}"
            )
        self._writes.clear()
        self._state = TransactionState.ABORTED
        self._locks.release_all(self.txn_id)

    def require_prepared(self) -> None:
        if self._state is not TransactionState.PREPARED:
            raise NotPreparedError(
                f"transaction {self.txn_id!r} is {self._state.value}, "
                f"expected prepared"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LocalTransaction({self.txn_id!r}, {self._state.value})"
