"""Restart recovery after a scheduler crash (Definition 8 2(b)).

When the transactional process scheduler fails, all processes that were
active must be treated as aborted through the set-oriented group abort
``A(P_{n_1}, …, P_{n_s})`` — each is finished via its completion
``C(P_i)``: backward-recoverable processes are compensated, forward-
recoverable ones are driven down their retriable forward-recovery path.

Recovery proceeds in four phases:

1. **Analysis** — scan the write-ahead log: which processes started and
   terminated, which activity events committed (and in which order),
   which invocations were prepared, rolled back, or covered by a logged
   2PC commit decision.
2. **In-doubt resolution** — prepared transactions with a logged 2PC
   commit decision are re-committed (the decision is the anchor);
   prepared transactions without one are presumed aborted and rolled
   back, and their events removed from the recovered history.
3. **State rebuild** — each active process's
   :class:`~repro.core.instance.ProcessInstance` is reconstructed by
   replaying its surviving events.
4. **Group abort** — a fresh scheduler executes every completion under
   the normal protocol rules (so Lemmas 2/3 orderings hold during
   recovery too) and the combined pre+post-crash history is certified.

Returns a :class:`RecoveryReport` carrying the recovered scheduler, the
full history and per-phase details.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.activity import Direction
from repro.core.conflict import ConflictRelation
from repro.core.process import Process
from repro.core.schedule import ProcessSchedule
from repro.core.scheduler import (
    SchedulerRules,
    TransactionalProcessScheduler,
)
from repro.errors import UnknownProcessError
from repro.subsystems.subsystem import SubsystemRegistry
from repro.subsystems.wal import WriteAheadLog

__all__ = ["RecoveryReport", "analyze_wal", "recover"]


@dataclass
class WalAnalysis:
    """Phase-1 result: what the log says happened."""

    #: instance id -> process template id is identical in this library.
    started: List[str] = field(default_factory=list)
    committed: Set[str] = field(default_factory=set)
    aborted: Set[str] = field(default_factory=set)
    #: Ordered surviving activity events: (process, activity, direction).
    events: List[Tuple[str, str, int]] = field(default_factory=list)
    #: (process, activity) pairs whose prepared invocation lacks a 2PC
    #: commit decision — presumed aborted.
    presumed_aborted: List[Tuple[str, str]] = field(default_factory=list)
    #: 2PC groups with a commit decision but no end record.
    in_doubt_committed_groups: List[str] = field(default_factory=list)
    #: transaction id -> 2PC group it participates in.
    txn_groups: Dict[str, str] = field(default_factory=dict)
    #: Groups with a logged commit decision.
    decided_groups: Set[str] = field(default_factory=set)

    @property
    def active(self) -> List[str]:
        return [
            pid
            for pid in self.started
            if pid not in self.committed and pid not in self.aborted
        ]


def analyze_wal(wal: WriteAheadLog) -> WalAnalysis:
    """Phase 1: reconstruct the pre-crash state from the log."""
    analysis = WalAnalysis()
    #: (process, activity) -> index into analysis.events
    event_index: Dict[Tuple[str, str], int] = {}
    prepared: Dict[Tuple[str, str], bool] = {}
    hardened_processes_groups: Dict[str, str] = {}
    decided_groups: Set[str] = set()
    ended_groups: Set[str] = set()
    raw_events: List[Tuple[str, str, int, bool]] = []  # + prepared flag
    rolled_back: Set[Tuple[str, str]] = set()
    hardened: Set[str] = set()

    for record in wal.records():
        kind = record.get("type")
        if kind == "process_submit":
            analysis.started.append(str(record["process"]))
        elif kind == "process_commit":
            analysis.committed.add(str(record["process"]))
        elif kind == "process_abort":
            analysis.aborted.add(str(record["process"]))
        elif kind == "activity_commit":
            raw_events.append(
                (
                    str(record["process"]),
                    str(record["activity"]),
                    int(record["direction"]),  # type: ignore[arg-type]
                    bool(record.get("prepared")),
                )
            )
        elif kind == "activity_rollback":
            rolled_back.add(
                (str(record["process"]), str(record["activity"]))
            )
        elif kind == "hardened":
            hardened.add(str(record["process"]))
        elif kind == "2pc_begin":
            group = str(record["group"])
            for participant in record.get("participants", ()):  # type: ignore[union-attr]
                # Participants are logged as "subsystem:txn_id".
                txn_id = str(participant).split(":", 1)[-1]
                analysis.txn_groups[txn_id] = group
        elif kind == "2pc_commit":
            decided_groups.add(str(record["group"]))
        elif kind == "2pc_end":
            ended_groups.add(str(record["group"]))

    analysis.decided_groups = decided_groups
    analysis.in_doubt_committed_groups = sorted(decided_groups - ended_groups)

    for process_id, activity, direction, was_prepared in raw_events:
        key = (process_id, activity)
        if direction == 1 and key in rolled_back:
            continue
        if (
            direction == 1
            and was_prepared
            and process_id not in analysis.committed
            and f"harden:{process_id}" not in decided_groups
        ):
            # Prepared, never covered by a commit decision: presumed
            # aborted; the invocation's effects never became durable.
            analysis.presumed_aborted.append(key)
            continue
        analysis.events.append((process_id, activity, direction))
    return analysis


@dataclass
class RecoveryReport:
    """Result of restart recovery."""

    analysis: WalAnalysis
    #: Processes finished by the recovery group abort.
    group_aborted: Tuple[str, ...]
    #: The scheduler that executed the recovery (reusable afterwards).
    scheduler: TransactionalProcessScheduler
    #: Combined pre-crash + recovery history.
    history: ProcessSchedule
    #: Prepared transactions rolled back during in-doubt resolution.
    rolled_back_in_doubt: int = 0
    re_committed_in_doubt: int = 0


def recover(
    wal: WriteAheadLog,
    registry: SubsystemRegistry,
    processes: Mapping[str, Process],
    conflicts: Optional[ConflictRelation] = None,
    rules: Optional[SchedulerRules] = None,
) -> RecoveryReport:
    """Run restart recovery; returns the report with the full history.

    ``processes`` maps instance ids (as submitted pre-crash) to their
    templates — the process repository every workflow system persists.
    """
    analysis = analyze_wal(wal)
    for pid in analysis.started:
        if pid not in processes:
            raise UnknownProcessError(
                f"WAL references process {pid!r} missing from the repository"
            )

    # Phase 2: resolve in-doubt prepared transactions at the subsystems.
    # Transactions whose 2PC group has a logged commit decision are
    # re-committed; all others are presumed aborted and rolled back.
    redone = 0
    undone = 0
    for subsystem, transaction in registry.prepared_transactions():
        group = analysis.txn_groups.get(transaction.txn_id)
        if group is not None and group in analysis.decided_groups:
            subsystem.commit_prepared(transaction.txn_id)
            redone += 1
        else:
            subsystem.rollback_prepared(transaction.txn_id)
            undone += 1

    # Phase 3+4: rebuild instances and run the group abort under a fresh
    # scheduler, seeded with the surviving pre-crash events.
    scheduler = TransactionalProcessScheduler(
        registry=registry,
        conflicts=conflicts,
        rules=rules,
        wal=wal,
    )
    pre_crash: Dict[str, List[Tuple[str, int]]] = {}
    for process_id, activity, direction in analysis.events:
        pre_crash.setdefault(process_id, []).append((activity, direction))

    active = analysis.active
    for pid in active:
        scheduler.submit(processes[pid], instance_id=pid)
    # Replay the surviving events in their ORIGINAL GLOBAL ORDER — the
    # interleaving determines the conflict edges, and per-process
    # grouping would invent edges that never existed (and can deadlock
    # the group abort against itself).
    for process_id, activity, direction in analysis.events:
        if process_id not in scheduler.instance_ids():
            continue  # events of processes that terminated pre-crash
        managed = scheduler.managed(process_id)
        scheduler._record_event(  # noqa: SLF001 - recovery is a friend
            managed,
            activity,
            Direction.FORWARD if direction == 1 else Direction.COMPENSATION,
        )
    for pid in active:
        managed = scheduler.managed(pid)
        managed.instance = _rebuild_instance(
            scheduler, processes[pid], pid, pre_crash.get(pid, ())
        )
        # Surviving non-compensatable events were covered by a logged
        # 2PC decision (otherwise presumed aborted in analysis): they
        # are hardened.
        for activity, direction in pre_crash.get(pid, ()):
            definition = processes[pid].activity(activity)
            if direction == 1 and not definition.kind.is_compensatable:
                managed.hardened.add(activity)

    if scheduler.wal is not None:
        scheduler.wal.append(
            {"type": "recovery_group_abort", "processes": list(active)}
        )
    for pid in active:
        managed = scheduler.managed(pid)
        if not managed.instance.status.is_terminal and not managed.abort_pending:
            scheduler.abort(pid, reason="restart recovery group abort")
        elif managed.instance.status.is_terminal:
            # The rebuilt instance already reached a terminal state (its
            # completion had fully executed pre-crash); record it.
            scheduler.step(pid)
    history = scheduler.run()
    return RecoveryReport(
        analysis=analysis,
        group_aborted=tuple(active),
        scheduler=scheduler,
        history=history,
        rolled_back_in_doubt=undone,
        re_committed_in_doubt=redone,
    )


def _rebuild_instance(
    scheduler: TransactionalProcessScheduler,
    process: Process,
    pid: str,
    events: Sequence[Tuple[str, int]],
):
    """Rebuild a process instance from its surviving pre-crash events.

    Reuses the failure-inference replay of
    :meth:`repro.core.schedule.ProcessSchedule.instance_state` so that
    alternative switches and in-flight aborts are reconstructed exactly.
    """
    template = process.renamed(pid)
    replay_schedule = ProcessSchedule([template], scheduler.conflicts)
    for activity, direction in events:
        replay_schedule.record(
            pid,
            activity,
            Direction.FORWARD if direction == 1 else Direction.COMPENSATION,
        )
    instance = replay_schedule.instance_state(pid)
    instance.instance_id = pid
    return instance
