"""Restart recovery after a scheduler crash (Definition 8 2(b)).

When the transactional process scheduler fails, all processes that were
active must be treated as aborted through the set-oriented group abort
``A(P_{n_1}, …, P_{n_s})`` — each is finished via its completion
``C(P_i)``: backward-recoverable processes are compensated, forward-
recoverable ones are driven down their retriable forward-recovery path.

Recovery proceeds in four phases:

1. **Analysis** — scan the write-ahead log: which processes started and
   terminated, which activity events committed (and in which order),
   which invocations were prepared, rolled back, or covered by a logged
   2PC commit decision.  The scan is *checkpoint-aware*: a
   ``checkpoint`` record carries a serialized :class:`WalScanState`
   (written by :meth:`TransactionalProcessScheduler.checkpoint`), so
   replay cost is bounded by the distance to the last checkpoint, not
   the total history length.
2. **In-doubt resolution** — prepared transactions with a logged 2PC
   commit decision are re-committed (the decision is the anchor);
   prepared transactions without one are presumed aborted and rolled
   back, and their events removed from the recovered history.
3. **State rebuild** — each active process's
   :class:`~repro.core.instance.ProcessInstance` is reconstructed by
   replaying its surviving events.  Replay is performed with the
   scheduler's WAL suppressed — the log already holds these records,
   so recovery never duplicates them.
4. **Group abort** — a fresh scheduler executes every completion under
   the normal protocol rules (so Lemmas 2/3 orderings hold during
   recovery too) and the combined pre+post-crash history is certified.

Recovery is **restartable**: it brackets its own work with
``recovery_begin`` / ``recovery_end`` records, and every completion
step it drives is itself WAL-logged by the scheduler.  A crash *during*
recovery therefore resumes idempotently — the next :func:`recover`
replays the already-logged compensations as history instead of
re-executing them (no double compensation, no dropped forward path) —
and running :func:`recover` again after a completed recovery appends
nothing and aborts nothing.

Returns a :class:`RecoveryReport` carrying the recovered scheduler, the
full history and per-phase details.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.activity import Direction
from repro.core.conflict import ConflictRelation
from repro.core.process import Process
from repro.core.schedule import ProcessSchedule
from repro.core.scheduler import (
    SchedulerRules,
    TransactionalProcessScheduler,
)
from repro.errors import UnknownProcessError
from repro.subsystems.subsystem import SubsystemRegistry
from repro.subsystems.wal import CHECKPOINT, WriteAheadLog

__all__ = [
    "WalScanState",
    "WalAnalysis",
    "scan_wal",
    "analyze_wal",
    "replay_history",
    "RecoveryReport",
    "TxnFilter",
    "recover",
]

#: Predicate restricting phase-2 in-doubt resolution to transactions a
#: node owns; receives (subsystem_name, txn_id).
TxnFilter = Callable[[str, str], bool]


@dataclass
class WalScanState:
    """Raw, checkpointable scan of the log (phase 1a).

    Unlike :class:`WalAnalysis` this carries the *unresolved* state — a
    prepared event is recorded as prepared, not yet classified as
    presumed-aborted — because resolution depends on records that may
    arrive after a checkpoint (the 2PC commit decision).  The scheduler
    serializes this state into ``checkpoint`` records; the scan resumes
    from it.
    """

    started: List[str] = field(default_factory=list)
    committed: Set[str] = field(default_factory=set)
    aborted: Set[str] = field(default_factory=set)
    #: Unified ordered entries (JSON-safe lists):
    #: ``["event", process, activity, direction, prepared]`` /
    #: ``["commit", process]`` / ``["abort", process]``.
    timeline: List[List[object]] = field(default_factory=list)
    #: (process, activity) pairs natively rolled back.
    rolled_back: Set[Tuple[str, str]] = field(default_factory=set)
    #: transaction id -> 2PC group it participates in.
    txn_groups: Dict[str, str] = field(default_factory=dict)
    #: Groups with a logged commit decision.
    decided_groups: Set[str] = field(default_factory=set)
    #: Groups whose phase 2 completed.
    ended_groups: Set[str] = field(default_factory=set)
    #: transaction id -> group for cross-coordinator groups this node
    #: voted YES on (``2pc_vote`` records).  A voted transaction must
    #: not be unilaterally presumed aborted: the remote coordinator may
    #: still decide commit, so recovery holds it in doubt for the
    #: cooperative termination protocol.
    voted_txns: Dict[str, str] = field(default_factory=dict)
    #: Restartable-recovery bookkeeping.
    recovery_begun: int = 0
    recovery_ended: int = 0
    #: Processes named by the latest ``recovery_begin`` without a
    #: matching ``recovery_end`` — a recovery that crashed mid-flight.
    recovery_pending: List[str] = field(default_factory=list)
    #: Records iterated by this scan (excluding those folded into a
    #: loaded checkpoint) — the replay-cost metric of benchmark X9.
    records_scanned: int = 0

    def observe(self, record: Mapping[str, object]) -> None:
        """Fold one log record into the scan state."""
        self.records_scanned += 1
        kind = record.get("type")
        if kind == "process_submit":
            pid = str(record["process"])
            if pid not in self.started:
                self.started.append(pid)
        elif kind == "process_commit":
            pid = str(record["process"])
            self.committed.add(pid)
            self.timeline.append(["commit", pid])
        elif kind == "process_abort":
            pid = str(record["process"])
            self.aborted.add(pid)
            self.timeline.append(["abort", pid])
        elif kind == "activity_commit":
            self.timeline.append(
                [
                    "event",
                    str(record["process"]),
                    str(record["activity"]),
                    int(record["direction"]),  # type: ignore[arg-type]
                    bool(record.get("prepared")),
                ]
            )
        elif kind == "activity_rollback":
            self.rolled_back.add(
                (str(record["process"]), str(record["activity"]))
            )
            # Position matters: a rollback cancels the nearest preceding
            # surviving forward event of this activity, so a later
            # forward *re-execution* (F-REC after a vetoed group) is a
            # distinct surviving event.
            self.timeline.append(
                ["rollback", str(record["process"]), str(record["activity"])]
            )
        elif kind == "2pc_begin":
            group = str(record["group"])
            for participant in record.get("participants", ()):  # type: ignore[union-attr]
                # Participants are logged as "subsystem:txn_id".
                txn_id = str(participant).split(":", 1)[-1]
                self.txn_groups[txn_id] = group
        elif kind == "2pc_vote":
            group = str(record["group"])
            for participant in record.get("participants", ()):  # type: ignore[union-attr]
                txn_id = str(participant).split(":", 1)[-1]
                self.txn_groups[txn_id] = group
                self.voted_txns[txn_id] = group
        elif kind == "2pc_commit":
            self.decided_groups.add(str(record["group"]))
        elif kind == "2pc_end":
            self.ended_groups.add(str(record["group"]))
        elif kind == "recovery_begin":
            self.recovery_begun += 1
            self.recovery_pending = [
                str(pid) for pid in record.get("processes", ())  # type: ignore[union-attr]
            ]
        elif kind == "recovery_end":
            self.recovery_ended += 1
            self.recovery_pending = []

    def prune(self) -> "WalScanState":
        """Drop per-event state of terminated processes (checkpointing).

        Recovery only replays events of processes that were *active* at
        the crash; a checkpoint therefore retains the cheap identity
        sets for every process but the timeline only for live ones, so
        checkpoint size tracks the active working set, not history.
        """
        terminal = self.committed | self.aborted
        return WalScanState(
            started=list(self.started),
            committed=set(self.committed),
            aborted=set(self.aborted),
            timeline=[
                entry
                for entry in self.timeline
                if str(entry[1]) not in terminal
            ],
            rolled_back={
                key for key in self.rolled_back if key[0] not in terminal
            },
            txn_groups=dict(self.txn_groups),
            decided_groups=set(self.decided_groups),
            ended_groups=set(self.ended_groups),
            voted_txns=dict(self.voted_txns),
            recovery_begun=self.recovery_begun,
            recovery_ended=self.recovery_ended,
            recovery_pending=list(self.recovery_pending),
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe serialization for checkpoint records."""
        return {
            "started": list(self.started),
            "committed": sorted(self.committed),
            "aborted": sorted(self.aborted),
            "timeline": [list(entry) for entry in self.timeline],
            "rolled_back": sorted(list(pair) for pair in self.rolled_back),
            "txn_groups": dict(self.txn_groups),
            "decided_groups": sorted(self.decided_groups),
            "ended_groups": sorted(self.ended_groups),
            "voted_txns": dict(self.voted_txns),
            "recovery_begun": self.recovery_begun,
            "recovery_ended": self.recovery_ended,
            "recovery_pending": list(self.recovery_pending),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "WalScanState":
        return cls(
            started=[str(pid) for pid in payload.get("started", ())],  # type: ignore[union-attr]
            committed={str(pid) for pid in payload.get("committed", ())},  # type: ignore[union-attr]
            aborted={str(pid) for pid in payload.get("aborted", ())},  # type: ignore[union-attr]
            timeline=[list(entry) for entry in payload.get("timeline", ())],  # type: ignore[union-attr]
            rolled_back={
                (str(pair[0]), str(pair[1]))
                for pair in payload.get("rolled_back", ())  # type: ignore[union-attr]
            },
            txn_groups={
                str(txn): str(group)
                for txn, group in dict(payload.get("txn_groups", {})).items()  # type: ignore[arg-type]
            },
            decided_groups={
                str(group) for group in payload.get("decided_groups", ())  # type: ignore[union-attr]
            },
            ended_groups={
                str(group) for group in payload.get("ended_groups", ())  # type: ignore[union-attr]
            },
            voted_txns={
                str(txn): str(group)
                for txn, group in dict(payload.get("voted_txns", {})).items()  # type: ignore[arg-type]
            },
            recovery_begun=int(payload.get("recovery_begun", 0)),  # type: ignore[arg-type]
            recovery_ended=int(payload.get("recovery_ended", 0)),  # type: ignore[arg-type]
            recovery_pending=[
                str(pid) for pid in payload.get("recovery_pending", ())  # type: ignore[union-attr]
            ],
        )


def scan_wal(wal: WriteAheadLog) -> WalScanState:
    """Phase 1a: fold the log into a scan state, checkpoint-aware.

    A ``checkpoint`` record *replaces* the accumulated state with its
    serialized snapshot — on a compacted log the scan therefore starts
    at the checkpoint; on an uncompacted one it reaches the same state
    either way.
    """
    state = WalScanState()
    for record in wal.records():
        if record.get("type") == CHECKPOINT:
            state = WalScanState.from_dict(record["state"])  # type: ignore[arg-type]
            state.records_scanned = 0
            continue
        state.observe(record)
    return state


@dataclass
class WalAnalysis:
    """Phase-1 result: what the log says happened (resolved view)."""

    #: instance id -> process template id is identical in this library.
    started: List[str] = field(default_factory=list)
    committed: Set[str] = field(default_factory=set)
    aborted: Set[str] = field(default_factory=set)
    #: Ordered surviving activity events: (process, activity, direction).
    events: List[Tuple[str, str, int]] = field(default_factory=list)
    #: Surviving events interleaved with terminations, in log order:
    #: ("event", process, activity, direction) / ("commit"|"abort", pid).
    timeline: List[Tuple[object, ...]] = field(default_factory=list)
    #: (process, activity) pairs whose prepared invocation lacks a 2PC
    #: commit decision — presumed aborted.
    presumed_aborted: List[Tuple[str, str]] = field(default_factory=list)
    #: 2PC groups with a commit decision but no end record.
    in_doubt_committed_groups: List[str] = field(default_factory=list)
    #: transaction id -> 2PC group it participates in.
    txn_groups: Dict[str, str] = field(default_factory=dict)
    #: Groups with a logged commit decision.
    decided_groups: Set[str] = field(default_factory=set)
    #: transaction id -> group voted YES for a remote coordinator; held
    #: in doubt instead of presumed aborted (termination protocol).
    voted_txns: Dict[str, str] = field(default_factory=dict)
    #: Recoveries begun (restartable-recovery attempt counter).
    recovery_attempts: int = 0
    #: Processes of a recovery that began but never logged its end — a
    #: crash mid-recovery; the next recover() resumes them.
    recovery_pending: List[str] = field(default_factory=list)
    #: Records iterated by the underlying scan (bounded by the last
    #: checkpoint's distance on compacted logs).
    records_scanned: int = 0

    @property
    def active(self) -> List[str]:
        return [
            pid
            for pid in self.started
            if pid not in self.committed and pid not in self.aborted
        ]


def analyze_wal(wal: WriteAheadLog) -> WalAnalysis:
    """Phase 1: reconstruct the pre-crash state from the log."""
    return _resolve(scan_wal(wal))


def _resolve(state: WalScanState) -> WalAnalysis:
    """Phase 1b: resolve the raw scan into the recovered view."""
    analysis = WalAnalysis(
        started=list(state.started),
        committed=set(state.committed),
        aborted=set(state.aborted),
        txn_groups=dict(state.txn_groups),
        decided_groups=set(state.decided_groups),
        voted_txns=dict(state.voted_txns),
        recovery_attempts=state.recovery_begun,
        recovery_pending=list(state.recovery_pending),
        records_scanned=state.records_scanned,
    )
    analysis.in_doubt_committed_groups = sorted(
        state.decided_groups - state.ended_groups
    )
    # Processes covered by a decided harden group.  Cross-shard groups
    # carry an incarnation suffix (``harden:<pid>#<n>``) so retries of
    # a vetoed group get fresh identities; strip it here.
    hardened: Set[str] = set()
    for group in state.decided_groups:
        if group.startswith("harden:"):
            hardened.add(group[len("harden:"):].partition("#")[0])
    # A rollback record cancels the nearest preceding surviving forward
    # event of its activity — positional, so that a later forward
    # re-execution of the same activity (F-REC after a vetoed group)
    # survives as its own event.
    entries: List[Optional[List[object]]] = []
    open_forward: Dict[Tuple[str, str], List[int]] = {}
    for entry in state.timeline:
        if entry[0] == "rollback":
            rolled = (str(entry[1]), str(entry[2]))
            stack = open_forward.get(rolled)
            if stack:
                entries[stack.pop()] = None
            continue
        if entry[0] == "event" and int(entry[3]) == 1:  # type: ignore[arg-type]
            forward = (str(entry[1]), str(entry[2]))
            open_forward.setdefault(forward, []).append(len(entries))
        entries.append(list(entry))
    for entry in entries:
        if entry is None:
            continue
        kind = entry[0]
        if kind in ("commit", "abort"):
            analysis.timeline.append((kind, str(entry[1])))
            continue
        _, process_id, activity, direction, was_prepared = entry
        process_id = str(process_id)
        activity = str(activity)
        direction = int(direction)  # type: ignore[arg-type]
        key = (process_id, activity)
        if (
            direction == 1
            and was_prepared
            and process_id not in analysis.committed
            and process_id not in hardened
        ):
            # Prepared, never covered by a commit decision: presumed
            # aborted; the invocation's effects never became durable.
            analysis.presumed_aborted.append(key)
            continue
        analysis.events.append((process_id, activity, direction))
        analysis.timeline.append(("event", process_id, activity, direction))
    return analysis


def replay_history(
    wal: WriteAheadLog,
    processes: Mapping[str, Process],
    conflicts: Optional[ConflictRelation] = None,
) -> ProcessSchedule:
    """Reconstruct the full logged history as a :class:`ProcessSchedule`.

    Includes every surviving activity event and every termination event
    the log retains, across *all* processes (also those that terminated
    before a crash) — the combined pre+post-crash history the offline
    checkers certify.  On a checkpoint-compacted log, reconstruction
    reaches back as far as the retained records/checkpoint state do.
    """
    analysis = analyze_wal(wal)
    for pid in analysis.started:
        if pid not in processes:
            raise UnknownProcessError(
                f"WAL references process {pid!r} missing from the repository"
            )
    present = {
        pid
        for entry in analysis.timeline
        for pid in [str(entry[1])]
    }
    schedule = ProcessSchedule(
        (
            processes[pid].renamed(pid)
            for pid in analysis.started
            if pid in present
        ),
        conflicts,
    )
    for entry in analysis.timeline:
        if entry[0] == "event":
            _, pid, activity, direction = entry
            schedule.record(
                str(pid),
                str(activity),
                Direction.FORWARD if direction == 1 else Direction.COMPENSATION,
            )
        elif entry[0] == "commit":
            schedule.record_commit(str(entry[1]))
        else:
            schedule.record_abort(str(entry[1]))
    return schedule


@dataclass
class RecoveryReport:
    """Result of restart recovery."""

    analysis: WalAnalysis
    #: Processes finished by the recovery group abort.
    group_aborted: Tuple[str, ...]
    #: The scheduler that executed the recovery (reusable afterwards).
    scheduler: TransactionalProcessScheduler
    #: Combined pre-crash + recovery history.
    history: ProcessSchedule
    #: Prepared transactions rolled back during in-doubt resolution.
    rolled_back_in_doubt: int = 0
    re_committed_in_doubt: int = 0
    #: (subsystem, txn_id) pairs left prepared because this node voted
    #: YES for a remote coordinator whose decision is unknown — the
    #: federation's termination protocol resolves them.
    held_in_doubt: Tuple[Tuple[str, str], ...] = ()
    #: This recovery resumed one that crashed mid-group-abort.
    resumed: bool = False
    #: Nothing was active: recovery appended and executed nothing.
    noop: bool = False


def recover(
    wal: WriteAheadLog,
    registry: SubsystemRegistry,
    processes: Mapping[str, Process],
    conflicts: Optional[ConflictRelation] = None,
    rules: Optional[SchedulerRules] = None,
    txn_filter: Optional[TxnFilter] = None,
    coordinator: Optional[object] = None,
) -> RecoveryReport:
    """Run restart recovery; returns the report with the full history.

    ``processes`` maps instance ids (as submitted pre-crash) to their
    templates — the process repository every workflow system persists.

    ``txn_filter`` restricts phase-2 in-doubt resolution to the prepared
    transactions this node owns — a federated shard shares subsystem
    objects with its peers and must not resolve *their* transactions.
    ``coordinator`` is passed through to the recovered scheduler (a
    shard substitutes its cross-shard coordinator).

    Restartable: a crash during a previous recovery is resumed (the
    logged completion steps replay as history, the rest executes), and
    calling :func:`recover` again after a completed recovery is a
    no-op — nothing is re-compensated and nothing is appended.
    """
    analysis = analyze_wal(wal)
    for pid in analysis.started:
        if pid not in processes:
            raise UnknownProcessError(
                f"WAL references process {pid!r} missing from the repository"
            )

    # Phase 2: resolve in-doubt prepared transactions at the subsystems.
    # Transactions whose 2PC group has a logged commit decision are
    # re-committed; all others are presumed aborted and rolled back.
    # A really-killed store backend (procpool SIGKILL) is respawned
    # first: the in-doubt writes live in the prepared transactions and
    # must land on the *surviving* on-disk state, not fail against a
    # dead worker.
    for subsystem in registry.subsystems():
        # Federation registries hold foreign-shard proxies without a
        # local store of their own — only real subsystems are respawned.
        backend = getattr(subsystem, "backend", None)
        if backend is not None:
            backend.ensure_alive()
    redone = 0
    undone = 0
    held: List[Tuple[str, str]] = []
    for subsystem, transaction in registry.prepared_transactions():
        if txn_filter is not None and not txn_filter(
            subsystem.name, transaction.txn_id
        ):
            continue  # a peer shard owns this transaction
        group = analysis.txn_groups.get(transaction.txn_id)
        if group is not None and group in analysis.decided_groups:
            subsystem.commit_prepared(transaction.txn_id)
            redone += 1
        elif transaction.txn_id in analysis.voted_txns:
            # Voted YES for a remote coordinator: its decision may still
            # be commit, so unilateral presumed abort would be wrong.
            # Leave it prepared; the termination protocol resolves it.
            held.append((subsystem.name, transaction.txn_id))
        else:
            subsystem.rollback_prepared(transaction.txn_id)
            undone += 1

    # Phase 3+4: rebuild instances and run the group abort under a fresh
    # scheduler, seeded with the surviving pre-crash events.  The replay
    # happens with WAL writes suppressed: these records are already in
    # the log, and re-appending them is what made a crash mid-recovery
    # double-count history.
    scheduler = TransactionalProcessScheduler(
        registry=registry,
        conflicts=conflicts,
        rules=rules,
        wal=wal,
        coordinator=coordinator,  # type: ignore[arg-type]
    )
    pre_crash: Dict[str, List[Tuple[str, int]]] = {}
    for process_id, activity, direction in analysis.events:
        pre_crash.setdefault(process_id, []).append((activity, direction))

    active = analysis.active
    scheduler.begin_replay()
    try:
        for pid in active:
            scheduler.submit(processes[pid], instance_id=pid)
        # Replay the surviving events in their ORIGINAL GLOBAL ORDER — the
        # interleaving determines the conflict edges, and per-process
        # grouping would invent edges that never existed (and can deadlock
        # the group abort against itself).
        for process_id, activity, direction in analysis.events:
            if process_id not in scheduler.instance_ids():
                continue  # events of processes that terminated pre-crash
            managed = scheduler.managed(process_id)
            scheduler._record_event(  # noqa: SLF001 - recovery is a friend
                managed,
                activity,
                Direction.FORWARD if direction == 1 else Direction.COMPENSATION,
            )
        for pid in active:
            managed = scheduler.managed(pid)
            managed.instance = _rebuild_instance(
                scheduler, processes[pid], pid, pre_crash.get(pid, ())
            )
            # Surviving non-compensatable events were covered by a logged
            # 2PC decision (otherwise presumed aborted in analysis): they
            # are hardened.
            for activity, direction in pre_crash.get(pid, ()):
                definition = processes[pid].activity(activity)
                if direction == 1 and not definition.kind.is_compensatable:
                    managed.hardened.add(activity)
    finally:
        scheduler.end_replay()

    if not active:
        # Idempotent no-op: every process already reached its terminal
        # record; append nothing, execute nothing.
        return RecoveryReport(
            analysis=analysis,
            group_aborted=(),
            scheduler=scheduler,
            history=scheduler.history(),
            rolled_back_in_doubt=undone,
            re_committed_in_doubt=redone,
            held_in_doubt=tuple(held),
            resumed=False,
            noop=True,
        )

    resumed = bool(analysis.recovery_pending)
    if scheduler.wal is not None:
        scheduler.wal.append(
            {
                "type": "recovery_begin",
                "processes": list(active),
                "attempt": analysis.recovery_attempts + 1,
                "resumed": resumed,
            }
        )
    for pid in active:
        managed = scheduler.managed(pid)
        if not managed.instance.status.is_terminal and not managed.abort_pending:
            scheduler.abort(pid, reason="restart recovery group abort")
        elif managed.instance.status.is_terminal:
            # The rebuilt instance already reached a terminal state (its
            # completion had fully executed pre-crash); record it.
            scheduler.step(pid)
    history = scheduler.run()
    if scheduler.wal is not None:
        scheduler.wal.append(
            {"type": "recovery_end", "processes": list(active)}
        )
    return RecoveryReport(
        analysis=analysis,
        group_aborted=tuple(active),
        scheduler=scheduler,
        history=history,
        rolled_back_in_doubt=undone,
        re_committed_in_doubt=redone,
        held_in_doubt=tuple(held),
        resumed=resumed,
    )


def _rebuild_instance(
    scheduler: TransactionalProcessScheduler,
    process: Process,
    pid: str,
    events: Sequence[Tuple[str, int]],
):
    """Rebuild a process instance from its surviving pre-crash events.

    Reuses the failure-inference replay of
    :meth:`repro.core.schedule.ProcessSchedule.instance_state` so that
    alternative switches and in-flight aborts are reconstructed exactly.
    """
    template = process.renamed(pid)
    replay_schedule = ProcessSchedule([template], scheduler.conflicts)
    for activity, direction in events:
        replay_schedule.record(
            pid,
            activity,
            Direction.FORWARD if direction == 1 else Direction.COMPENSATION,
        )
    instance = replay_schedule.instance_state(pid)
    instance.instance_id = pid
    return instance
