"""Versioned key-value resources and lock management.

Each transactional subsystem (paper §2.3) owns a
:class:`VersionedStore` — an in-memory key-value store whose entries
carry version counters — and a :class:`LockManager` implementing strict
two-phase locking.  Local transactions buffer writes and acquire locks;
the store is only touched at commit, so an aborted invocation is
guaranteed to leave no effects (the atomicity the paper assumes of
service invocations).

The lock manager never blocks: the scheduler above is a synchronous
reactor, so a lock request that cannot be granted immediately raises
:class:`WouldBlock` carrying the holders.  The caller (the subsystem)
turns this into a deferral decision — for prepared transactions of
deferred commits this is precisely how Lemma 1's "defer conflicting
work until the pivot group commits" is realised physically.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Tuple

from repro.errors import SubsystemError
from repro.subsystems.backend import MemoryBackend, StoreBackend

__all__ = ["LockMode", "WouldBlock", "VersionedStore", "LockManager"]


class LockMode(enum.Enum):
    """Lock modes of the strict-2PL lock manager."""

    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED


class WouldBlock(SubsystemError):
    """A lock request cannot be granted without waiting.

    Carries the ids of the transactions holding conflicting locks so
    the scheduler can wait for (or abort) them.
    """

    def __init__(self, key: str, mode: LockMode, holders: FrozenSet[str]) -> None:
        self.key = key
        self.mode = mode
        self.holders = holders
        super().__init__(
            f"lock {mode.value} on {key!r} blocked by {sorted(holders)}"
        )


class VersionedStore:
    """Key-value store with per-key version counters.

    Versions let tests and the simulation assert effect-freeness: a
    compensated activity must leave every key it touched with the same
    value it had before (versions still advance, recording that writes
    happened — effect-freeness is about *values*, Definition 1 is about
    return values of other activities).

    The storage itself lives behind a
    :class:`~repro.subsystems.backend.StoreBackend`: the in-memory
    default keeps the seed's exact semantics; a ``sqlite``/``procpool``
    backend makes the same contract durable (and killable for real).
    ``initial`` entries are seeded at version 0 — on a durable backend
    that already holds state, the disk's truth wins over the seed.
    """

    def __init__(
        self,
        initial: Optional[Mapping[str, object]] = None,
        backend: Optional[StoreBackend] = None,
    ) -> None:
        self.backend: StoreBackend = (
            backend if backend is not None else MemoryBackend()
        )
        if initial:
            self.backend.seed(initial)

    def get(self, key: str, default: object = None) -> object:
        return self.backend.get(key, default)

    def exists(self, key: str) -> bool:
        return self.backend.exists(key)

    def version(self, key: str) -> int:
        return self.backend.version(key)

    def apply(self, writes: Mapping[str, object]) -> None:
        """Install a committed write set, bumping versions."""
        self.backend.apply(writes)

    def delete(self, key: str) -> None:
        self.backend.delete(key)

    def snapshot(self) -> Dict[str, object]:
        """A value snapshot (used by effect-freeness assertions)."""
        return self.backend.snapshot()

    def keys(self) -> Iterator[str]:
        return self.backend.keys()

    def __len__(self) -> int:
        return len(self.backend)

    def close(self) -> None:
        """Release the backend's resources (idempotent)."""
        self.backend.close()

    def __enter__(self) -> "VersionedStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class LockManager:
    """Strict two-phase locking with immediate would-block signalling."""

    def __init__(self) -> None:
        #: key -> {owner_id: mode}
        self._locks: Dict[str, Dict[str, LockMode]] = {}

    def acquire(self, owner: str, key: str, mode: LockMode) -> None:
        """Grant ``owner`` a lock or raise :class:`WouldBlock`.

        Re-entrant: an owner holding a lock may re-request it; a shared
        lock is upgraded to exclusive when no other owner holds one.
        """
        holders = self._locks.setdefault(key, {})
        held = holders.get(owner)
        if held is LockMode.EXCLUSIVE or held is mode:
            return
        others = {
            other: other_mode
            for other, other_mode in holders.items()
            if other != owner
        }
        if mode is LockMode.SHARED:
            blocking = {
                other
                for other, other_mode in others.items()
                if other_mode is LockMode.EXCLUSIVE
            }
        else:
            blocking = set(others)
        if blocking:
            raise WouldBlock(key, mode, frozenset(blocking))
        holders[owner] = mode

    def release_all(self, owner: str) -> None:
        """Release every lock held by ``owner`` (end of strict 2PL)."""
        for key in list(self._locks):
            holders = self._locks[key]
            holders.pop(owner, None)
            if not holders:
                del self._locks[key]

    def holders(self, key: str) -> Dict[str, LockMode]:
        return dict(self._locks.get(key, {}))

    def held_by(self, owner: str) -> List[Tuple[str, LockMode]]:
        return [
            (key, holders[owner])
            for key, holders in self._locks.items()
            if owner in holders
        ]

    def __len__(self) -> int:
        return sum(len(holders) for holders in self._locks.values())
