"""Two-phase commit of deferred non-compensatable activities (Lemma 1).

The paper requires that "the commitment of all non-compensatable
activities of ``P_j`` has to be performed atomically by exploiting a two
phase commit protocol in order to ensure that either all activities
commit or none of them".  The scheduler therefore leaves every pivot and
retriable activity *prepared* in its subsystem and, once no conflicting
active predecessor remains, commits the whole group through the
coordinator implemented here.

The coordinator follows the classical presumed-abort protocol:

1. **Vote phase** — every participant must be in the prepared state
   (the subsystems prepared them at invocation time); a participant may
   veto (used by failure injection), in which case the group is rolled
   back.
2. **Decision** — the decision is logged to the write-ahead log *before*
   phase two, so crash recovery can finish an interrupted group
   deterministically: a logged commit decision is re-applied, a group
   without one is presumed aborted and rolled back.
3. **Completion phase** — all participants commit (or roll back).

Crash tolerance is testable at every message boundary: the coordinator
invokes its optional ``boundary`` hook after each protocol step
(``begin_logged``, ``vote:<participant>``, ``votes_collected``,
``abort_logged``, ``decision_logged``, ``committed:<participant>``,
``end_logged``).  A hook that raises :class:`CoordinatorCrash` models
the coordinator dying at exactly that point; recovery then resolves the
interrupted group from the log (see :mod:`repro.subsystems.recovery`
and the federation's cooperative termination protocol).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.subsystems.subsystem import Subsystem
from repro.subsystems.transaction import LocalTransaction, TransactionState
from repro.subsystems.wal import WriteAheadLog

__all__ = [
    "Participant",
    "CommitOutcome",
    "CoordinatorCrash",
    "TwoPhaseCoordinator",
]


class CoordinatorCrash(RuntimeError):
    """The coordinator crash-stopped at a protocol message boundary.

    Raised by ``boundary`` hooks (crash-point injection); carries the
    boundary name so harnesses can sweep every interruption point.
    """

    def __init__(self, boundary: str) -> None:
        super().__init__(f"coordinator crashed at boundary {boundary!r}")
        self.boundary = boundary


@dataclass(frozen=True)
class Participant:
    """One prepared local transaction taking part in a commit group."""

    subsystem: Subsystem
    txn_id: str

    def __str__(self) -> str:
        return f"{self.subsystem.name}:{self.txn_id}"


@dataclass(frozen=True)
class CommitOutcome:
    """Result of running the protocol on one group."""

    group_id: str
    committed: bool
    participants: Tuple[str, ...]
    #: Participant that vetoed, when the group aborted in the vote phase.
    veto: Optional[str] = None


#: Callback deciding whether a participant votes yes; used by tests to
#: inject vote failures.  Receives the participant, returns ``True`` to
#: vote commit.
VoteFunction = Callable[[Participant], bool]

#: Hook invoked after every protocol message boundary (crash-point
#: injection).  Receives the boundary name; raising
#: :class:`CoordinatorCrash` models the coordinator dying there.
BoundaryHook = Callable[[str], None]


class TwoPhaseCoordinator:
    """Coordinates atomic commitment of prepared transaction groups."""

    def __init__(
        self,
        wal: Optional[WriteAheadLog] = None,
        vote: Optional[VoteFunction] = None,
        shard_id: Optional[str] = None,
        boundary: Optional[BoundaryHook] = None,
    ) -> None:
        self._wal = wal
        self._vote = vote or (lambda participant: True)
        #: Group-id sequence is *per coordinator* (a class-level counter
        #: would leak ids across instances and break reproducibility
        #: when multiple coordinators — scheduler shards — coexist in
        #: one process) and is namespaced by the shard id when given.
        self._group_ids = itertools.count(1)
        self.shard_id = shard_id
        self._boundary = boundary

    def _fresh_group_id(self) -> str:
        number = next(self._group_ids)
        if self.shard_id is not None:
            return f"{self.shard_id}:2pc-{number}"
        return f"2pc-{number}"

    def _cross(self, name: str) -> None:
        """Cross a protocol message boundary (crash-point hook)."""
        if self._boundary is not None:
            self._boundary(name)

    def commit_group(
        self,
        participants: Sequence[Participant],
        group_id: Optional[str] = None,
    ) -> CommitOutcome:
        """Run 2PC over the group; returns the outcome.

        An empty group commits trivially.  On a veto or a participant
        found not prepared, every participant is rolled back and the
        outcome reports the abort — the caller (the scheduler) then
        treats the owning process's non-compensatable activities as
        failed.
        """
        identifier = group_id or self._fresh_group_id()
        names = tuple(str(participant) for participant in participants)
        self._log(
            {
                "type": "2pc_begin",
                "group": identifier,
                "participants": list(names),
            }
        )
        self._cross("begin_logged")

        # Phase 1: collect votes; everyone must be prepared and willing.
        veto: Optional[str] = None
        for participant in participants:
            transaction = self._find_transaction(participant)
            if transaction is None or transaction.state is not TransactionState.PREPARED:
                veto = str(participant)
                break
            if not self._vote(participant):
                veto = str(participant)
                break
            self._cross(f"vote:{participant}")
        self._cross("votes_collected")

        if veto is not None:
            self._log({"type": "2pc_abort", "group": identifier, "veto": veto})
            self._cross("abort_logged")
            self._rollback_all(participants)
            return CommitOutcome(
                group_id=identifier,
                committed=False,
                participants=names,
                veto=veto,
            )

        # Decision logged before phase 2 — the recovery anchor.
        self._log({"type": "2pc_commit", "group": identifier})
        self._cross("decision_logged")

        # Phase 2: commit everyone.
        for participant in participants:
            participant.subsystem.commit_prepared(participant.txn_id)
            self._cross(f"committed:{participant}")
        self._log({"type": "2pc_end", "group": identifier})
        self._cross("end_logged")
        return CommitOutcome(
            group_id=identifier, committed=True, participants=names
        )

    def _rollback_all(self, participants: Sequence[Participant]) -> None:
        for participant in participants:
            transaction = self._find_transaction(participant)
            if transaction is not None and transaction.state is TransactionState.PREPARED:
                participant.subsystem.rollback_prepared(participant.txn_id)

    @staticmethod
    def _find_transaction(participant: Participant) -> Optional[LocalTransaction]:
        for transaction in participant.subsystem.prepared_transactions():
            if transaction.txn_id == participant.txn_id:
                return transaction
        return None

    def _log(self, record: dict) -> None:
        if self._wal is not None:
            self._wal.append(record)
