"""Durable process repository.

Restart recovery needs the template of every process the write-ahead
log references (:func:`repro.subsystems.recovery.recover` takes a
``processes`` mapping).  A real workflow system persists that mapping;
this module provides the file-backed implementation: one JSON file per
template under a directory, written atomically, discovered on open.

Usage::

    repository = ProcessRepository("/var/lib/repro/processes")
    repository.save(construction)
    …crash…
    report = recover(wal, registry, repository.load_all(), conflicts)

Instance ids of the form ``Template#N`` (the scheduler's disambiguated
ids) resolve to their template automatically.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Iterator, List, Optional

from repro.core.process import Process
from repro.core.serialize import process_from_dict, process_to_dict
from repro.errors import UnknownProcessError

__all__ = ["ProcessRepository"]


class ProcessRepository:
    """A directory of serialized process templates."""

    SUFFIX = ".process.json"

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, process_id: str) -> str:
        safe = process_id.replace(os.sep, "_")
        return os.path.join(self.directory, safe + self.SUFFIX)

    # -- writing -----------------------------------------------------------

    def save(self, process: Process) -> str:
        """Persist a template atomically; returns the file path."""
        payload = json.dumps(
            process_to_dict(process), sort_keys=True, indent=2
        )
        path = self._path(process.process_id)
        handle, temporary = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(payload)
            os.replace(temporary, path)
        except BaseException:
            if os.path.exists(temporary):
                os.unlink(temporary)
            raise
        return path

    def delete(self, process_id: str) -> bool:
        """Remove a template; returns whether it existed."""
        path = self._path(process_id)
        if os.path.exists(path):
            os.unlink(path)
            return True
        return False

    # -- reading ------------------------------------------------------------

    def process_ids(self) -> List[str]:
        """Template ids present in the repository, sorted."""
        ids = []
        for name in os.listdir(self.directory):
            if name.endswith(self.SUFFIX):
                ids.append(name[: -len(self.SUFFIX)])
        return sorted(ids)

    def __contains__(self, process_id: str) -> bool:
        return os.path.exists(self._path(self._template_id(process_id)))

    @staticmethod
    def _template_id(instance_id: str) -> str:
        """Strip the scheduler's ``#N`` instance disambiguator."""
        return instance_id.split("#", 1)[0]

    def load(self, process_id: str) -> Process:
        """Load a template; instance ids resolve to their template and
        the returned process is renamed to the requested id."""
        template_id = self._template_id(process_id)
        path = self._path(template_id)
        if not os.path.exists(path):
            raise UnknownProcessError(
                f"repository {self.directory!r} has no template "
                f"{template_id!r}"
            )
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        process = process_from_dict(payload)
        return process.renamed(process_id)

    def load_all(self) -> "RepositoryView":
        """A mapping view suitable for :func:`repro.subsystems.recovery.recover`."""
        return RepositoryView(self)


class RepositoryView:
    """Lazy ``Mapping[str, Process]`` facade over a repository.

    Recovery looks processes up by the instance ids found in the WAL;
    the view resolves each against the repository on demand (so the
    repository can hold many templates without loading them all).
    """

    def __init__(self, repository: ProcessRepository) -> None:
        self._repository = repository
        self._cache: Dict[str, Process] = {}

    def __getitem__(self, instance_id: str) -> Process:
        if instance_id not in self._cache:
            self._cache[instance_id] = self._repository.load(instance_id)
        return self._cache[instance_id]

    def __contains__(self, instance_id: str) -> bool:
        return instance_id in self._repository

    def __iter__(self) -> Iterator[str]:
        return iter(self._repository.process_ids())

    def __len__(self) -> int:
        return len(self._repository.process_ids())

    def keys(self):
        return self._repository.process_ids()
