"""Service definitions provided by transactional subsystems (paper §3.1).

Each subsystem provides a limited set of transactional services — the
global service alphabet ``Â`` — that processes invoke as activities.  A
:class:`Service` couples a name with a handler that runs inside a local
transaction (through the :class:`ServiceContext`), plus metadata used by
the theory layer: declared read/write sets (from which semantic
conflicts are derived) and effect-freeness.

Factory helpers build the service patterns the scenarios need:

* :func:`write_service` / :func:`read_service` — plain state access;
* :func:`counter_service` — increment with a decrementing compensation
  (the classic semantically commuting operation pair);
* :func:`append_service` — append to a list with a removing
  compensation;
* :func:`flag_service` — set a flag with an unsetting compensation;
* :func:`noop_service` — effect-free placeholder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.core.conflict import ReadWriteConflicts
from repro.subsystems.transaction import LocalTransaction

__all__ = [
    "ServiceContext",
    "Service",
    "ServicePair",
    "write_service",
    "read_service",
    "counter_service",
    "append_service",
    "flag_service",
    "noop_service",
    "conflicts_from_services",
]


class ServiceContext:
    """Execution context handed to a service handler.

    Wraps the local transaction and the invocation parameters; all state
    access must go through :meth:`read` / :meth:`write` /
    :meth:`increment` so atomicity and locking are preserved.
    """

    def __init__(
        self,
        transaction: LocalTransaction,
        params: Mapping[str, object],
        subsystem_name: str,
    ) -> None:
        self._transaction = transaction
        self.params = dict(params)
        self.subsystem_name = subsystem_name

    def read(self, key: str, default: object = None) -> object:
        return self._transaction.read(key, default)

    def write(self, key: str, value: object) -> None:
        self._transaction.write(key, value)

    def increment(self, key: str, amount: float = 1) -> float:
        return self._transaction.increment(key, amount)

    def param(self, name: str, default: object = None) -> object:
        return self.params.get(name, default)

    @property
    def txn_id(self) -> str:
        """Identifier of the enclosing local transaction.

        Unique per invocation — handlers that need collision-free keys
        (ledger-style appends) derive them from it.
        """
        return self._transaction.txn_id


Handler = Callable[[ServiceContext], object]


@dataclass(frozen=True)
class Service:
    """A transactional service of the global alphabet ``Â``.

    ``reads``/``writes`` declare the touched resources for semantic
    conflict derivation (Definition 6 via read/write overlap);
    ``effect_free`` marks activities removable under the reduction's
    effect-free rule.
    """

    name: str
    handler: Handler
    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()
    effect_free: bool = False

    def run(self, context: ServiceContext) -> object:
        return self.handler(context)


@dataclass(frozen=True)
class ServicePair:
    """A compensatable service together with its compensation.

    Registering the pair on a subsystem makes the forward service
    compensatable in the Definition-2 sense: executing the compensation
    right after the forward service is effect-free on the store.
    """

    forward: Service
    compensation: Service


def write_service(
    name: str,
    key: str,
    value: object = None,
    value_param: Optional[str] = None,
) -> Service:
    """Write ``value`` (or the named parameter) to ``key``."""

    def handler(context: ServiceContext) -> object:
        payload = context.param(value_param) if value_param else value
        context.write(key, payload)
        return payload

    return Service(
        name=name, handler=handler, writes=frozenset({key})
    )


def read_service(name: str, key: str) -> Service:
    """Read ``key``; effect-free by construction."""

    def handler(context: ServiceContext) -> object:
        return context.read(key)

    return Service(
        name=name, handler=handler, reads=frozenset({key}), effect_free=True
    )


def counter_service(
    name: str,
    key: str,
    amount: float = 1,
    compensation_name: Optional[str] = None,
) -> ServicePair:
    """Increment ``key`` by ``amount`` with a decrementing compensation."""

    def forward(context: ServiceContext) -> object:
        return context.increment(key, amount)

    def inverse(context: ServiceContext) -> object:
        return context.increment(key, -amount)

    keys = frozenset({key})
    return ServicePair(
        forward=Service(name=name, handler=forward, reads=keys, writes=keys),
        compensation=Service(
            name=compensation_name or name + "~inv",
            handler=inverse,
            reads=keys,
            writes=keys,
        ),
    )


def append_service(
    name: str,
    key: str,
    item_param: str = "item",
    compensation_name: Optional[str] = None,
) -> ServicePair:
    """Append a parameter to the list at ``key``; compensation removes it."""

    def forward(context: ServiceContext) -> object:
        item = context.param(item_param)
        current = list(context.read(key, []) or [])  # type: ignore[arg-type]
        current.append(item)
        context.write(key, current)
        return item

    def inverse(context: ServiceContext) -> object:
        item = context.param(item_param)
        current = list(context.read(key, []) or [])  # type: ignore[arg-type]
        if item in current:
            current.reverse()
            current.remove(item)
            current.reverse()
        context.write(key, current)
        return item

    keys = frozenset({key})
    return ServicePair(
        forward=Service(name=name, handler=forward, reads=keys, writes=keys),
        compensation=Service(
            name=compensation_name or name + "~inv",
            handler=inverse,
            reads=keys,
            writes=keys,
        ),
    )


def flag_service(
    name: str,
    key: str,
    value: object = True,
    reset: object = False,
    compensation_name: Optional[str] = None,
) -> ServicePair:
    """Set ``key`` to ``value``; compensation restores ``reset``."""

    def forward(context: ServiceContext) -> object:
        context.write(key, value)
        return value

    def inverse(context: ServiceContext) -> object:
        context.write(key, reset)
        return reset

    keys = frozenset({key})
    return ServicePair(
        forward=Service(name=name, handler=forward, writes=keys),
        compensation=Service(
            name=compensation_name or name + "~inv",
            handler=inverse,
            writes=keys,
        ),
    )


def noop_service(name: str) -> Service:
    """A service without any effect (useful for abstract scenarios)."""
    return Service(name=name, handler=lambda context: None, effect_free=True)


def conflicts_from_services(services: Iterable[Service]) -> ReadWriteConflicts:
    """Derive the semantic conflict relation from service access sets."""
    relation = ReadWriteConflicts()
    for service in services:
        relation.register(service.name, reads=service.reads, writes=service.writes)
    return relation
