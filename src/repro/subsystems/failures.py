"""Failure injection for activities and schedulers.

The theory rests on activities that may abort (Definitions 3-4) and on
schedulers that may crash mid-schedule (motivating completed schedules
and group aborts).  This module provides deterministic and seeded
failure policies used by tests, examples and the simulation workloads:

* :class:`FailurePlan` — deterministic per-invocation outcomes, built
  with :meth:`FailurePlan.fail_once` / :meth:`FailurePlan.fail_times`;
* :class:`ProbabilisticFailures` — seeded random aborts with a
  configurable rate per service;
* :class:`NoFailures` — the happy path.

A policy is consulted by :meth:`repro.subsystems.subsystem.Subsystem.invoke`
with the service name and the 1-based attempt number and answers whether
that invocation aborts.  Retriable activities eventually succeed under
any policy with bounded failures; the probabilistic policy caps
consecutive failures to honour Definition 3's guarantee.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional, Tuple

__all__ = [
    "FailurePolicy",
    "NoFailures",
    "FailurePlan",
    "CountedFailures",
    "ProbabilisticFailures",
]


class FailurePolicy:
    """Decides whether a given invocation attempt aborts."""

    def should_fail(self, service: str, attempt: int) -> bool:
        raise NotImplementedError

    def __call__(self, service: str, attempt: int) -> bool:
        return self.should_fail(service, attempt)


class NoFailures(FailurePolicy):
    """Every invocation succeeds."""

    def should_fail(self, service: str, attempt: int) -> bool:
        return False


class FailurePlan(FailurePolicy):
    """Deterministic failure plan: service → number of failing attempts.

    ``FailurePlan.fail_once(["test_part"])`` makes the first invocation
    of ``test_part`` abort and all later attempts succeed — the standard
    way to trigger an alternative execution path in tests and examples.
    """

    def __init__(self, failing_attempts: Optional[Dict[str, int]] = None) -> None:
        self._failing_attempts = dict(failing_attempts or {})

    @classmethod
    def fail_once(cls, services: Iterable[str]) -> "FailurePlan":
        return cls({service: 1 for service in services})

    @classmethod
    def fail_times(cls, service: str, times: int) -> "FailurePlan":
        return cls({service: times})

    def merge(self, other: "FailurePlan") -> "FailurePlan":
        combined = dict(self._failing_attempts)
        combined.update(other._failing_attempts)
        return FailurePlan(combined)

    def should_fail(self, service: str, attempt: int) -> bool:
        return attempt <= self._failing_attempts.get(service, 0)


class CountedFailures(FailurePolicy):
    """Fail the first ``n`` invocations of a service, counted globally.

    Unlike :class:`FailurePlan`, which keys on the per-action attempt
    number (and therefore resets when a baseline restarts a process as
    a fresh instance), this policy counts every consultation across all
    instances — the right model for "the test rig is down for the first
    N runs" scenarios used by the restart baselines.
    """

    def __init__(self, failures_left: Optional[Dict[str, int]] = None) -> None:
        self._left = dict(failures_left or {})

    def should_fail(self, service: str, attempt: int) -> bool:
        remaining = self._left.get(service, 0)
        if remaining > 0:
            self._left[service] = remaining - 1
            return True
        return False


class ProbabilisticFailures(FailurePolicy):
    """Seeded random aborts with per-service rates.

    ``rate`` applies to every service unless overridden in ``rates``.
    ``max_consecutive`` bounds how often the same service can fail in a
    row, guaranteeing that retriable activities terminate (Definition 3:
    some invocation ``m`` is guaranteed to commit).
    """

    def __init__(
        self,
        rate: float = 0.0,
        rates: Optional[Dict[str, float]] = None,
        seed: int = 0,
        max_consecutive: int = 8,
    ) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"failure rate must be in [0, 1), got {rate}")
        self._rate = rate
        self._rates = dict(rates or {})
        self._rng = random.Random(seed)
        self._max_consecutive = max_consecutive

    def should_fail(self, service: str, attempt: int) -> bool:
        if attempt > self._max_consecutive:
            return False
        rate = self._rates.get(service, self._rate)
        return self._rng.random() < rate
