"""Failure injection for activities and schedulers.

The theory rests on activities that may abort (Definitions 3-4) and on
schedulers that may crash mid-schedule (motivating completed schedules
and group aborts).  This module provides deterministic and seeded
failure policies used by tests, examples and the simulation workloads:

* :class:`FailurePlan` — deterministic per-invocation outcomes, built
  with :meth:`FailurePlan.fail_once` / :meth:`FailurePlan.fail_times`;
* :class:`ProbabilisticFailures` — seeded random aborts with a
  configurable rate per service;
* :class:`ChaosPolicy` — seeded mixed faults beyond plain aborts:
  latency spikes, hang-until-timeout and crash-stop outages, the
  failure classes the resilience layer defends against;
* :class:`NoFailures` — the happy path.

A policy is consulted by :meth:`repro.subsystems.subsystem.Subsystem.invoke`
with the service name and the 1-based attempt number and answers with a
:class:`Fault` (or ``None`` for success).  Abort-only policies keep the
boolean :meth:`FailurePolicy.should_fail` interface; the default
:meth:`FailurePolicy.fault_for` lifts it into the fault model.

Retriable activities eventually succeed under any policy with bounded
failures; the seeded policies cap *consecutive* failures per service to
honour Definition 3's guarantee (some invocation ``m`` commits).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

__all__ = [
    "FaultKind",
    "Fault",
    "FailurePolicy",
    "NoFailures",
    "FailurePlan",
    "CountedFailures",
    "ProbabilisticFailures",
    "ChaosPolicy",
    "DiskFaultPolicy",
]


class FaultKind(enum.Enum):
    """Failure classes a subsystem invocation can suffer."""

    #: The local transaction aborts immediately (the paper's model).
    ABORT = "abort"
    #: The invocation succeeds but takes ``duration`` extra virtual
    #: time; if the extra time reaches the invoker's timeout the call is
    #: abandoned instead (surfacing as :class:`~repro.errors.ServiceTimeout`).
    LATENCY = "latency"
    #: The invocation blocks until the invoker's timeout fires.
    HANG = "hang"
    #: The subsystem crash-stops for ``duration`` virtual time; every
    #: invocation during the outage fails fast.
    CRASH = "crash"


@dataclass(frozen=True)
class Fault:
    """One injected fault: its kind and (where relevant) a duration."""

    kind: FaultKind
    duration: float = 0.0

    @classmethod
    def abort(cls) -> "Fault":
        return cls(FaultKind.ABORT)


class FailurePolicy:
    """Decides whether (and how) a given invocation attempt fails."""

    def should_fail(self, service: str, attempt: int) -> bool:
        raise NotImplementedError

    def fault_for(self, service: str, attempt: int) -> Optional[Fault]:
        """The fault injected into this attempt, or ``None`` for success.

        The default lifts the boolean abort decision into the fault
        model, so plain abort policies need only ``should_fail``.
        """
        if self.should_fail(service, attempt):
            return Fault.abort()
        return None

    def __call__(self, service: str, attempt: int) -> bool:
        return self.should_fail(service, attempt)


class NoFailures(FailurePolicy):
    """Every invocation succeeds."""

    def should_fail(self, service: str, attempt: int) -> bool:
        return False


class FailurePlan(FailurePolicy):
    """Deterministic failure plan: service → number of failing attempts.

    ``FailurePlan.fail_once(["test_part"])`` makes the first invocation
    of ``test_part`` abort and all later attempts succeed — the standard
    way to trigger an alternative execution path in tests and examples.
    """

    def __init__(self, failing_attempts: Optional[Dict[str, int]] = None) -> None:
        self._failing_attempts = dict(failing_attempts or {})

    @classmethod
    def fail_once(cls, services: Iterable[str]) -> "FailurePlan":
        return cls({service: 1 for service in services})

    @classmethod
    def fail_times(cls, service: str, times: int) -> "FailurePlan":
        return cls({service: times})

    def merge(self, other: "FailurePlan") -> "FailurePlan":
        combined = dict(self._failing_attempts)
        combined.update(other._failing_attempts)
        return FailurePlan(combined)

    def should_fail(self, service: str, attempt: int) -> bool:
        return attempt <= self._failing_attempts.get(service, 0)


class CountedFailures(FailurePolicy):
    """Fail the first ``n`` invocations of a service, counted globally.

    Unlike :class:`FailurePlan`, which keys on the per-action attempt
    number (and therefore resets when a baseline restarts a process as
    a fresh instance), this policy counts every consultation across all
    instances — the right model for "the test rig is down for the first
    N runs" scenarios used by the restart baselines.
    """

    def __init__(self, failures_left: Optional[Dict[str, int]] = None) -> None:
        self._left = dict(failures_left or {})

    def should_fail(self, service: str, attempt: int) -> bool:
        remaining = self._left.get(service, 0)
        if remaining > 0:
            self._left[service] = remaining - 1
            return True
        return False


class ProbabilisticFailures(FailurePolicy):
    """Seeded random aborts with per-service rates.

    ``rate`` applies to every service unless overridden in ``rates``.
    ``max_consecutive`` bounds consecutive failures of the same service
    — enforced both per invocation (via the caller's attempt counter)
    and per service across invocations (via an internal consecutive
    counter), so retriable activities terminate (Definition 3: some
    invocation ``m`` is guaranteed to commit) even when the driver
    restarts an instance and its attempt numbering from scratch.
    """

    def __init__(
        self,
        rate: float = 0.0,
        rates: Optional[Dict[str, float]] = None,
        seed: int = 0,
        max_consecutive: int = 8,
    ) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"failure rate must be in [0, 1), got {rate}")
        self._rate = rate
        self._rates = dict(rates or {})
        self._rng = random.Random(seed)
        self._max_consecutive = max_consecutive
        #: Per-service run of failures this policy has reported without
        #: an intervening success.
        self._consecutive: Dict[str, int] = {}

    def should_fail(self, service: str, attempt: int) -> bool:
        if attempt > self._max_consecutive:
            # Per-invocation guarantee: attempt m = max_consecutive + 1
            # always commits, whatever the dice say.
            self._consecutive[service] = 0
            return False
        if self._consecutive.get(service, 0) >= self._max_consecutive:
            # Per-service guarantee: a service that just failed
            # max_consecutive times in a row must succeed next, even if
            # the caller's attempt counter was reset (e.g. a restart
            # baseline re-running the process as a fresh instance).
            self._consecutive[service] = 0
            return False
        rate = self._rates.get(service, self._rate)
        if self._rng.random() < rate:
            self._consecutive[service] = self._consecutive.get(service, 0) + 1
            return True
        self._consecutive[service] = 0
        return False


class DiskFaultPolicy:
    """Injectable disk faults for durable store backends.

    Consumed by :class:`~repro.subsystems.backend.SqliteBackend` (and
    the worker behind the procpool backend).  Three fault shapes, all
    armed explicitly so torture harnesses stay deterministic:

    * **fsync failure** — the next ``fail_fsync`` commit attempts raise
      :class:`~repro.errors.StorageFault` *after* rolling the write
      batch back (the disk refused to make the commit durable; no
      effects remain).  Bounded by construction, so guaranteed
      termination survives the injection.
    * **torn write** — :meth:`tear_at` arms a byte offset; the backend's
      ``tear()`` damages the closed store file at that offset, as a
      power cut mid-sector-write would.  The next reopen must detect it
      and raise :class:`~repro.errors.StoreCorruptionError`.
    * **short read** — the next reopen's header verification sees fewer
      bytes than it asked for (a truncated or still-syncing file) and
      must raise :class:`~repro.errors.StoreCorruptionError` instead of
      serving a partial view.

    ``suspended`` gates injection off during protected operations:
    phase-2 commits of already-decided 2PC groups model the
    retry-until-the-disk-heals loop of real log managers, so injected
    fsync failures never target them.
    """

    def __init__(
        self,
        fail_fsync: int = 0,
        torn_write_offset: Optional[int] = None,
        short_read: bool = False,
    ) -> None:
        if fail_fsync < 0:
            raise ValueError("fail_fsync must be >= 0")
        self.fail_fsync = fail_fsync
        self.torn_write_offset = torn_write_offset
        self.short_read = short_read
        self.suspended = False
        #: Faults actually delivered, by shape (harness statistics).
        self.delivered: Dict[str, int] = {
            "fsync": 0,
            "torn_write": 0,
            "short_read": 0,
        }

    # -- arming -----------------------------------------------------------

    def fail_next_fsyncs(self, count: int) -> "DiskFaultPolicy":
        self.fail_fsync = count
        return self

    def tear_at(self, offset: int) -> "DiskFaultPolicy":
        self.torn_write_offset = offset
        return self

    def arm_short_read(self) -> "DiskFaultPolicy":
        self.short_read = True
        return self

    # -- consumption (called by backends) ---------------------------------

    def take_fsync_failure(self) -> bool:
        """Consume one armed fsync failure, if any."""
        if self.suspended or self.fail_fsync <= 0:
            return False
        self.fail_fsync -= 1
        self.delivered["fsync"] += 1
        return True

    def take_torn_write(self) -> Optional[int]:
        """Consume the armed torn-write offset, if any."""
        if self.torn_write_offset is None:
            return None
        offset = self.torn_write_offset
        self.torn_write_offset = None
        self.delivered["torn_write"] += 1
        return offset

    def take_short_read(self) -> bool:
        """Consume one armed short read, if any."""
        if not self.short_read:
            return False
        self.short_read = False
        self.delivered["short_read"] += 1
        return True

    @property
    def total_delivered(self) -> int:
        return sum(self.delivered.values())


class ChaosPolicy(FailurePolicy):
    """Seeded mixed-fault injection: aborts, latency, hangs, crashes.

    Each attempt draws one fault kind with the configured rates (their
    sum must stay below 1; the remainder is the success probability).
    Durations are drawn uniformly from the configured spans.  Everything
    is deterministic given the seed, so chaos runs are replayable.

    ``max_consecutive`` caps the run of consecutive faults per service
    — every fault kind counts, including latency spikes (which may
    exceed the invoker's timeout and fail the call) — preserving the
    bounded-failure assumption guaranteed termination rests on.

    ``services`` restricts injection to the listed services (``None``
    targets all).  ``injected`` counts the faults actually delivered,
    by kind, for the chaos harness's statistics.
    """

    def __init__(
        self,
        abort_rate: float = 0.0,
        latency_rate: float = 0.0,
        hang_rate: float = 0.0,
        crash_rate: float = 0.0,
        latency_span: Tuple[float, float] = (1.0, 4.0),
        hang_duration: float = 6.0,
        crash_span: Tuple[float, float] = (4.0, 10.0),
        seed: int = 0,
        max_consecutive: int = 5,
        services: Optional[Iterable[str]] = None,
    ) -> None:
        rates = (abort_rate, latency_rate, hang_rate, crash_rate)
        if any(rate < 0.0 for rate in rates) or sum(rates) >= 1.0:
            raise ValueError(
                f"fault rates must be non-negative and sum below 1, "
                f"got {rates}"
            )
        self._abort_rate = abort_rate
        self._latency_rate = latency_rate
        self._hang_rate = hang_rate
        self._crash_rate = crash_rate
        self._latency_span = latency_span
        self._hang_duration = hang_duration
        self._crash_span = crash_span
        self._rng = random.Random(seed)
        self._max_consecutive = max_consecutive
        self._services = frozenset(services) if services is not None else None
        self._consecutive: Dict[str, int] = {}
        self.injected: Dict[str, int] = {
            kind.value: 0 for kind in FaultKind
        }

    def fault_for(self, service: str, attempt: int) -> Optional[Fault]:
        if self._services is not None and service not in self._services:
            return None
        if self._consecutive.get(service, 0) >= self._max_consecutive:
            self._consecutive[service] = 0
            return None
        draw = self._rng.random()
        fault: Optional[Fault] = None
        threshold = self._abort_rate
        if draw < threshold:
            fault = Fault(FaultKind.ABORT)
        elif draw < (threshold := threshold + self._latency_rate):
            low, high = self._latency_span
            fault = Fault(FaultKind.LATENCY, self._rng.uniform(low, high))
        elif draw < (threshold := threshold + self._hang_rate):
            fault = Fault(FaultKind.HANG, self._hang_duration)
        elif draw < threshold + self._crash_rate:
            low, high = self._crash_span
            fault = Fault(FaultKind.CRASH, self._rng.uniform(low, high))
        if fault is None:
            self._consecutive[service] = 0
            return None
        self._consecutive[service] = self._consecutive.get(service, 0) + 1
        self.injected[fault.kind.value] += 1
        return fault

    def should_fail(self, service: str, attempt: int) -> bool:
        """Boolean view (consumes one draw — prefer :meth:`fault_for`)."""
        return self.fault_for(service, attempt) is not None

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())
