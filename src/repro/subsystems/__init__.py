"""Substrate: transactional subsystems, 2PC, WAL, agents, failures."""

from repro.subsystems.agent import ApplicationOperation, CoordinationAgent
from repro.subsystems.failures import (
    ChaosPolicy,
    CountedFailures,
    FailurePlan,
    FailurePolicy,
    Fault,
    FaultKind,
    NoFailures,
    ProbabilisticFailures,
)
from repro.subsystems.resource import LockManager, LockMode, VersionedStore, WouldBlock
from repro.subsystems.services import (
    Service,
    ServiceContext,
    ServicePair,
    append_service,
    conflicts_from_services,
    counter_service,
    flag_service,
    noop_service,
    read_service,
    write_service,
)
from repro.subsystems.subsystem import Invocation, Subsystem, SubsystemRegistry
from repro.subsystems.transaction import LocalTransaction, TransactionState
from repro.subsystems.twophase import CommitOutcome, Participant, TwoPhaseCoordinator
from repro.subsystems.wal import FileWAL, InMemoryWAL, WriteAheadLog
from repro.subsystems.weak_order import WeakEnlistment, WeakOrderSession
from repro.subsystems.repository import ProcessRepository, RepositoryView
