"""Pluggable storage backends behind the subsystem store.

The paper's architecture (§2.3, DESIGN.md §1) demands nothing of a
subsystem beyond atomic invocations, compensation/retriability, and 2PC
participation — the *implementation* of its resource store is a free
substitution point.  This module makes that substitution real: a
:class:`StoreBackend` ABC with three interchangeable implementations
behind :class:`~repro.subsystems.resource.VersionedStore`:

* :class:`MemoryBackend` — the seed's in-memory dictionary, bit-for-bit
  the same semantics and the fast default;
* :class:`SqliteBackend` — a real ``sqlite3`` file with fsync-on-commit
  durability (``PRAGMA synchronous=FULL``), plus injectable disk faults
  (:class:`~repro.subsystems.failures.DiskFaultPolicy`): fsync failures
  that abort the committing transaction, torn writes at a chosen byte
  offset, and short reads on reopen — both detected as typed
  :class:`~repro.errors.StoreCorruptionError`, never silently served;
* :class:`ProcPoolBackend` — the store lives in a separate OS process
  (one shared :class:`ProcWorkerHost` worker per run, holding the same
  sqlite files), so crash-stop chaos becomes a **real** ``SIGKILL``:
  committed state survives on disk, in-flight calls fail with
  :class:`~repro.errors.StorageFault`, and recovery replays the WAL
  against whatever the dead worker made durable.

:class:`BackendHub` is the factory the harnesses and the CLI thread
through :class:`~repro.subsystems.subsystem.SubsystemRegistry`: one hub
per run owns the storage directory, the worker host, and the close path
for every backend it created.

All three backends implement one contract (exercised by the backend
conformance suite in ``tests/unit/test_backends.py``): per-key version
counters starting at 0 for seeded entries and 1 for first writes,
batch-atomic ``apply``, and value snapshots for effect-freeness
assertions.  Durable backends require JSON-serializable values — the
price of leaving the process.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sqlite3
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import StorageFault, StoreCorruptionError, SubsystemError
from repro.subsystems.failures import DiskFaultPolicy

__all__ = [
    "BACKEND_KINDS",
    "StoreBackend",
    "MemoryBackend",
    "SqliteBackend",
    "ProcWorkerHost",
    "ProcPoolBackend",
    "BackendHub",
    "tear_file",
]

#: Backend names accepted by the CLI's ``--backend`` flag, the
#: harness specs and :class:`BackendHub`.
BACKEND_KINDS = ("memory", "sqlite", "procpool")

#: The 16-byte magic every intact sqlite store file starts with.
SQLITE_HEADER = b"SQLite format 3\x00"


class StoreBackend:
    """Storage contract behind :class:`~repro.subsystems.resource.VersionedStore`.

    One key-value namespace with per-key version counters.  ``apply``
    installs a committed write batch atomically — either every write
    becomes (durably, for real backends) visible with its version
    bumped, or none does and :class:`~repro.errors.StorageFault` is
    raised.  ``seed`` installs initial state at version 0 without
    overwriting surviving durable entries (reopen keeps the disk's
    truth).
    """

    #: Backend kind name (one of :data:`BACKEND_KINDS`).
    kind: str = "abstract"
    #: Whether :meth:`kill` delivers a real crash fault.
    killable: bool = False
    #: fsyncs this backend performed for committed batches.
    fsyncs: int = 0
    #: Injectable disk faults (durable backends only).
    faults: Optional[DiskFaultPolicy] = None

    # -- data plane -------------------------------------------------------

    def get(self, key: str, default: object = None) -> object:
        raise NotImplementedError

    def exists(self, key: str) -> bool:
        raise NotImplementedError

    def version(self, key: str) -> int:
        raise NotImplementedError

    def apply(self, writes: Mapping[str, object]) -> None:
        raise NotImplementedError

    def delete(self, key: str) -> None:
        raise NotImplementedError

    def snapshot(self) -> Dict[str, object]:
        raise NotImplementedError

    def keys(self) -> Iterator[str]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def seed(self, initial: Mapping[str, object]) -> None:
        raise NotImplementedError

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Release connections/handles (idempotent)."""

    def sync(self) -> None:
        """Force durability of applied batches (no-op in memory)."""

    def ensure_alive(self) -> None:
        """Bring the backend back after a crash fault (respawn/reopen)."""

    def kill(self) -> bool:
        """Deliver a real crash fault if the backend supports one.

        Returns ``True`` when something was actually killed; the
        in-memory backend has no process or handle to lose and returns
        ``False`` (its crash-stop stays simulated).
        """
        return False

    def __enter__(self) -> "StoreBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _MemoryEntry:
    __slots__ = ("value", "version")

    def __init__(self, value: object, version: int = 0) -> None:
        self.value = value
        self.version = version


class MemoryBackend(StoreBackend):
    """The seed's in-memory store, unchanged semantics, no durability."""

    kind = "memory"

    def __init__(self) -> None:
        self._entries: Dict[str, _MemoryEntry] = {}

    def get(self, key: str, default: object = None) -> object:
        entry = self._entries.get(key)
        return default if entry is None else entry.value

    def exists(self, key: str) -> bool:
        return key in self._entries

    def version(self, key: str) -> int:
        entry = self._entries.get(key)
        return 0 if entry is None else entry.version

    def apply(self, writes: Mapping[str, object]) -> None:
        for key, value in writes.items():
            entry = self._entries.get(key)
            if entry is None:
                self._entries[key] = _MemoryEntry(value, version=1)
            else:
                entry.value = value
                entry.version += 1

    def delete(self, key: str) -> None:
        self._entries.pop(key, None)

    def snapshot(self) -> Dict[str, object]:
        return {key: entry.value for key, entry in self._entries.items()}

    def keys(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def seed(self, initial: Mapping[str, object]) -> None:
        for key, value in initial.items():
            if key not in self._entries:
                self._entries[key] = _MemoryEntry(value, version=0)


# ---------------------------------------------------------------------------
# Shared sqlite plumbing (used in-process and inside the worker process)
# ---------------------------------------------------------------------------

_SCHEMA = (
    "CREATE TABLE IF NOT EXISTS kv ("
    "key TEXT PRIMARY KEY, value TEXT NOT NULL, version INTEGER NOT NULL)"
)

_UPSERT = (
    "INSERT INTO kv(key, value, version) VALUES (?, ?, 1) "
    "ON CONFLICT(key) DO UPDATE SET "
    "value = excluded.value, version = kv.version + 1"
)


def _encode_value(value: object) -> str:
    try:
        return json.dumps(value, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as error:
        raise StorageFault(
            f"value is not JSON-serializable for a durable store "
            f"backend: {error}"
        ) from error


def _decode_value(text: str) -> object:
    return json.loads(text)


def verify_store_file(path: str, faults: Optional[DiskFaultPolicy] = None) -> None:
    """Header check a store file before (re)opening it.

    A missing or empty file is a fresh store; anything else must start
    with the sqlite magic.  An armed short-read fault truncates what the
    check sees — modelling a reopen racing a still-syncing file — which
    must surface as :class:`~repro.errors.StoreCorruptionError`, not as
    a silently-empty store.
    """
    if not os.path.exists(path):
        return
    if os.path.getsize(path) == 0:
        return
    want = len(SQLITE_HEADER)
    with open(path, "rb") as handle:
        header = handle.read(want)
    if faults is not None and faults.take_short_read():
        header = header[: want // 2]
    if len(header) < want:
        raise StoreCorruptionError(
            f"{path}: short read — got {len(header)} of {want} header "
            f"bytes; refusing to serve a partial store",
            path=path,
        )
    if header != SQLITE_HEADER:
        raise StoreCorruptionError(
            f"{path}: bad store header (torn write?); refusing to open",
            path=path,
        )


def _connect(path: str, synchronous: str = "FULL") -> sqlite3.Connection:
    """Open a store connection with fsync-on-commit durability.

    ``isolation_level=None`` puts the connection in autocommit mode;
    :func:`_apply_writes` brackets batches with explicit
    ``BEGIN IMMEDIATE``/``COMMIT`` so each applied batch is exactly one
    durable sqlite transaction (one journal fsync under
    ``synchronous=FULL``).
    """
    preexisting = os.path.exists(path) and os.path.getsize(path) > 0
    try:
        conn = sqlite3.connect(path, isolation_level=None)
        conn.execute(f"PRAGMA synchronous={synchronous}")
        if preexisting:
            row = conn.execute("PRAGMA integrity_check").fetchone()
            if row is None or row[0] != "ok":
                conn.close()
                raise StoreCorruptionError(
                    f"{path}: integrity_check failed: "
                    f"{row[0] if row else 'no result'!r}",
                    path=path,
                )
        conn.execute(_SCHEMA)
        return conn
    except sqlite3.DatabaseError as error:
        raise StoreCorruptionError(
            f"{path}: store file unreadable: {error}", path=path
        ) from error


def _apply_writes(conn: sqlite3.Connection, writes: Mapping[str, object]) -> None:
    """One atomic, durable batch; rolls back and re-raises on any error."""
    encoded = [(key, _encode_value(value)) for key, value in writes.items()]
    conn.execute("BEGIN IMMEDIATE")
    try:
        for key, text in encoded:
            conn.execute(_UPSERT, (key, text))
    except BaseException:
        conn.execute("ROLLBACK")
        raise
    conn.execute("COMMIT")


def _seed_rows(conn: sqlite3.Connection, initial: Mapping[str, object]) -> None:
    conn.execute("BEGIN IMMEDIATE")
    try:
        for key, value in initial.items():
            # Durable state wins on reopen: seeding never overwrites.
            conn.execute(
                "INSERT OR IGNORE INTO kv(key, value, version) "
                "VALUES (?, ?, 0)",
                (key, _encode_value(value)),
            )
    except BaseException:
        conn.execute("ROLLBACK")
        raise
    conn.execute("COMMIT")


def tear_file(path: str, offset: int, length: int = 32) -> int:
    """Damage a closed store file at ``offset`` (a torn write).

    Inverts up to ``length`` bytes starting at ``offset`` — the
    deterministic signature of a power cut mid-sector-write.  Returns
    how many bytes were damaged (0 when the offset is past EOF).
    """
    size = os.path.getsize(path)
    if offset >= size:
        return 0
    with open(path, "r+b") as handle:
        handle.seek(offset)
        original = handle.read(min(length, size - offset))
        handle.seek(offset)
        handle.write(bytes(byte ^ 0xFF for byte in original))
    return len(original)


class SqliteBackend(StoreBackend):
    """Durable store on a real ``sqlite3`` file, fsync on every commit."""

    kind = "sqlite"

    def __init__(
        self,
        path: str,
        faults: Optional[DiskFaultPolicy] = None,
        synchronous: str = "FULL",
    ) -> None:
        self.path = path
        self.faults = faults
        self.fsyncs = 0
        self._synchronous = synchronous
        self._conn: Optional[sqlite3.Connection] = None
        self._open()

    def _open(self) -> sqlite3.Connection:
        if self._conn is None:
            verify_store_file(self.path, self.faults)
            self._conn = _connect(self.path, self._synchronous)
        return self._conn

    # -- data plane -------------------------------------------------------

    def get(self, key: str, default: object = None) -> object:
        row = self._open().execute(
            "SELECT value FROM kv WHERE key = ?", (key,)
        ).fetchone()
        return default if row is None else _decode_value(row[0])

    def exists(self, key: str) -> bool:
        row = self._open().execute(
            "SELECT 1 FROM kv WHERE key = ?", (key,)
        ).fetchone()
        return row is not None

    def version(self, key: str) -> int:
        row = self._open().execute(
            "SELECT version FROM kv WHERE key = ?", (key,)
        ).fetchone()
        return 0 if row is None else int(row[0])

    def apply(self, writes: Mapping[str, object]) -> None:
        conn = self._open()
        if not writes:
            return  # a read-only commit writes nothing, fsyncs nothing
        if self.faults is not None and self.faults.take_fsync_failure():
            # The batch never reached BEGIN: nothing to roll back, no
            # effects remain — atomicity holds under the injected fault.
            raise StorageFault(
                f"{self.path}: injected fsync failure — commit could not "
                f"be made durable"
            )
        try:
            _apply_writes(conn, writes)
        except sqlite3.DatabaseError as error:
            raise StorageFault(
                f"{self.path}: store commit failed: {error}"
            ) from error
        self.fsyncs += 1

    def delete(self, key: str) -> None:
        self._open().execute("DELETE FROM kv WHERE key = ?", (key,))

    def snapshot(self) -> Dict[str, object]:
        rows = self._open().execute("SELECT key, value FROM kv").fetchall()
        return {key: _decode_value(text) for key, text in rows}

    def keys(self) -> Iterator[str]:
        rows = self._open().execute("SELECT key FROM kv").fetchall()
        return iter([key for (key,) in rows])

    def __len__(self) -> int:
        row = self._open().execute("SELECT COUNT(*) FROM kv").fetchone()
        return int(row[0])

    def seed(self, initial: Mapping[str, object]) -> None:
        if initial:
            _seed_rows(self._open(), initial)

    # -- lifecycle / faults ----------------------------------------------

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def ensure_alive(self) -> None:
        self._open()

    def tear(self, offset: Optional[int] = None, length: int = 32) -> int:
        """Apply the armed (or given) torn-write fault to the closed file.

        The next reopen must either detect the damage
        (:class:`~repro.errors.StoreCorruptionError`) or — when the torn
        bytes landed in dead space — serve exactly the committed state.
        """
        if offset is None and self.faults is not None:
            offset = self.faults.take_torn_write()
        if offset is None:
            raise SubsystemError("no torn-write offset armed or given")
        self.close()
        return tear_file(self.path, offset, length)


# ---------------------------------------------------------------------------
# Process-external backend: the store lives in another OS process
# ---------------------------------------------------------------------------

#: Per-worker-process connection cache (path -> connection).  Lives in
#: the *worker* interpreter; a respawned worker starts empty.
_WORKER_CONNS: Dict[str, sqlite3.Connection] = {}


def _worker_connection(path: str) -> sqlite3.Connection:
    conn = _WORKER_CONNS.get(path)
    if conn is None:
        verify_store_file(path)
        conn = _connect(path)
        _WORKER_CONNS[path] = conn
    return conn


def _worker_op(path: str, op: str, payload: object) -> object:
    """Single dispatch point executed inside the worker process."""
    conn = _worker_connection(path)
    if op == "get":
        row = conn.execute(
            "SELECT value FROM kv WHERE key = ?", (payload,)
        ).fetchone()
        return (False, None) if row is None else (True, _decode_value(row[0]))
    if op == "version":
        row = conn.execute(
            "SELECT version FROM kv WHERE key = ?", (payload,)
        ).fetchone()
        return 0 if row is None else int(row[0])
    if op == "apply":
        _apply_writes(conn, payload)  # type: ignore[arg-type]
        return None
    if op == "delete":
        conn.execute("DELETE FROM kv WHERE key = ?", (payload,))
        return None
    if op == "snapshot":
        rows = conn.execute("SELECT key, value FROM kv").fetchall()
        return {key: _decode_value(text) for key, text in rows}
    if op == "keys":
        rows = conn.execute("SELECT key FROM kv").fetchall()
        return [key for (key,) in rows]
    if op == "len":
        return int(conn.execute("SELECT COUNT(*) FROM kv").fetchone()[0])
    if op == "seed":
        _seed_rows(conn, payload)  # type: ignore[arg-type]
        return None
    raise SubsystemError(f"unknown worker op {op!r}")  # pragma: no cover


class ProcWorkerHost:
    """One real OS worker process shared by every procpool store.

    Models the *storage node*: all procpool backends of a run dispatch
    to the same single-worker :class:`ProcessPoolExecutor`, so killing
    the worker (a real ``SIGKILL``) downs every store at once — exactly
    the crash-stop fault the simulated harnesses inject, made physical.
    ``kill_to_recovered`` records the honest wall-clock seconds from
    each kill to the respawned worker answering again (benchmark X14).
    """

    def __init__(self) -> None:
        methods = multiprocessing.get_all_start_methods()
        self._mp_context = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )
        self._pool: Optional[ProcessPoolExecutor] = None
        self.pid: Optional[int] = None
        self.spawns = 0
        self.kills = 0
        self._killed_at: Optional[float] = None
        #: Wall-clock seconds from SIGKILL to first answer after respawn.
        self.kill_to_recovered: List[float] = []

    def ensure_alive(self, probe: bool = False) -> int:
        """Spawn (or respawn) the worker; returns its OS pid.

        With ``probe=True`` an existing pool is round-tripped first, so
        a worker killed *externally* (a raw ``SIGKILL`` from outside the
        host, exactly what the real-kill harness throws) is detected and
        respawned instead of a stale pid being reported.  Recovery and
        restore paths probe; the per-operation fast path does not — it
        already surfaces a dead worker through
        :class:`~concurrent.futures.process.BrokenProcessPool`.
        """
        if probe and self._pool is not None:
            try:
                self.pid = self._pool.submit(os.getpid).result()
            except BrokenProcessPool:
                self._discard()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=1, mp_context=self._mp_context
            )
            self.pid = self._pool.submit(os.getpid).result()
            self.spawns += 1
            if self._killed_at is not None:
                self.kill_to_recovered.append(
                    time.monotonic() - self._killed_at
                )
                self._killed_at = None
        assert self.pid is not None
        return self.pid

    def call(self, fn: Callable, *args: object) -> object:
        self.ensure_alive()
        assert self._pool is not None
        try:
            return self._pool.submit(fn, *args).result()
        except BrokenProcessPool as error:
            # The worker died under us (external SIGKILL): the in-flight
            # operation is NOT retried — whether its commit reached the
            # disk is decided by the sqlite journal on respawn, exactly
            # like a crashed database server.
            pid = self.pid
            self._discard()
            raise StorageFault(
                f"storage worker process (pid {pid}) died mid-call"
            ) from error

    def kill(self) -> bool:
        """Really SIGKILL the worker process (crash-stop, made physical)."""
        if self._pool is None or self.pid is None:
            return False
        self.kills += 1
        self._killed_at = time.monotonic()
        os.kill(self.pid, signal.SIGKILL)
        self._discard()
        return True

    def _discard(self) -> None:
        if self._killed_at is None:
            self._killed_at = time.monotonic()
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        self.pid = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self.pid = None

    @property
    def alive(self) -> bool:
        return self._pool is not None


class ProcPoolBackend(StoreBackend):
    """Store held by an external worker process (real crash faults).

    Every operation is a real IPC round-trip into the shared
    :class:`ProcWorkerHost`; the worker keeps the data in the same
    sqlite file format as :class:`SqliteBackend`, so committed state
    survives a worker ``SIGKILL`` and recovery replays the WAL against
    the surviving on-disk state.
    """

    kind = "procpool"
    killable = True

    def __init__(
        self,
        path: str,
        host: ProcWorkerHost,
        faults: Optional[DiskFaultPolicy] = None,
    ) -> None:
        self.path = path
        self.host = host
        self.faults = faults
        self.fsyncs = 0

    def _call(self, op: str, payload: object = None) -> object:
        return self.host.call(_worker_op, self.path, op, payload)

    def get(self, key: str, default: object = None) -> object:
        found, value = self._call("get", key)  # type: ignore[misc]
        return value if found else default

    def exists(self, key: str) -> bool:
        found, _ = self._call("get", key)  # type: ignore[misc]
        return bool(found)

    def version(self, key: str) -> int:
        return int(self._call("version", key))  # type: ignore[arg-type]

    def apply(self, writes: Mapping[str, object]) -> None:
        if not writes:
            return  # a read-only commit writes nothing, fsyncs nothing
        if self.faults is not None and self.faults.take_fsync_failure():
            raise StorageFault(
                f"{self.path}: injected fsync failure — commit could not "
                f"be made durable"
            )
        try:
            self._call("apply", dict(writes))
        except StorageFault:
            raise
        except sqlite3.DatabaseError as error:
            raise StorageFault(
                f"{self.path}: store commit failed in worker: {error}"
            ) from error
        self.fsyncs += 1

    def delete(self, key: str) -> None:
        self._call("delete", key)

    def snapshot(self) -> Dict[str, object]:
        return dict(self._call("snapshot"))  # type: ignore[arg-type]

    def keys(self) -> Iterator[str]:
        return iter(list(self._call("keys")))  # type: ignore[arg-type]

    def __len__(self) -> int:
        return int(self._call("len"))  # type: ignore[arg-type]

    def seed(self, initial: Mapping[str, object]) -> None:
        if initial:
            self._call("seed", dict(initial))

    def ensure_alive(self) -> None:
        self.host.ensure_alive(probe=True)

    def kill(self) -> bool:
        return self.host.kill()

    def close(self) -> None:
        """The shared host outlives individual stores; the hub closes it."""


class BackendHub:
    """Factory and lifecycle owner for one run's store backends.

    ``backend_for(name)`` is the ``backend_factory`` that
    :class:`~repro.subsystems.subsystem.SubsystemRegistry` consults when
    a subsystem is (auto-)provisioned.  Durable backends share one
    storage ``directory`` (a temporary one by default, removed on
    :meth:`close`) and, for ``procpool``, one :class:`ProcWorkerHost`.
    Reusing a hub across a crash/recover cycle reuses the same store
    paths — the surviving on-disk state.
    """

    def __init__(
        self,
        kind: str = "memory",
        directory: Optional[str] = None,
        faults: Optional[DiskFaultPolicy] = None,
    ) -> None:
        if kind not in BACKEND_KINDS:
            raise ValueError(
                f"unknown backend kind {kind!r}; expected one of "
                f"{', '.join(BACKEND_KINDS)}"
            )
        self.kind = kind
        self.faults = faults
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if kind != "memory" and directory is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-store-")
            directory = self._tmp.name
        self.directory = directory
        self.host: Optional[ProcWorkerHost] = (
            ProcWorkerHost() if kind == "procpool" else None
        )
        self._created: List[StoreBackend] = []

    def path_for(self, name: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"{name}.store.sqlite")

    def backend_for(self, name: str) -> StoreBackend:
        """Create the backend for subsystem ``name`` (one per subsystem)."""
        if self.kind == "memory":
            backend: StoreBackend = MemoryBackend()
        elif self.kind == "sqlite":
            backend = SqliteBackend(self.path_for(name), faults=self.faults)
        else:
            assert self.host is not None
            backend = ProcPoolBackend(
                self.path_for(name), self.host, faults=self.faults
            )
        self._created.append(backend)
        return backend

    @property
    def fsyncs(self) -> int:
        """Store fsyncs across every backend this hub created."""
        return sum(backend.fsyncs for backend in self._created)

    def close(self) -> None:
        for backend in self._created:
            backend.close()
        self._created.clear()
        if self.host is not None:
            self.host.close()
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def __enter__(self) -> "BackendHub":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
