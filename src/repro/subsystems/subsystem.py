"""Transactional subsystems (paper §2.3).

A transactional subsystem executes service invocations as atomic local
transactions and offers, per the paper's assumptions, *either* the
ability to compensate already committed services *or* support for a
two-phase commit protocol (prepared transactions with deferred commit).
Our subsystems offer both; which one an activity uses is decided by its
termination guarantee:

* **compensatable** activities commit their local transaction
  immediately — their compensation service undoes the effect later if
  needed;
* **pivot** and **retriable** activities are left *prepared* (``hold``)
  so the process scheduler can defer and atomically commit them through
  2PC (Lemma 1), or roll them back natively if the process becomes an
  abort victim before its pivot group hardens.

The :class:`SubsystemRegistry` routes invocations by subsystem name and
is the single integration point for the scheduler, the baselines and
the examples.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.core.conflict import ConflictRelation
from repro.errors import (
    ServiceNotFoundError,
    ServiceTimeout,
    StorageFault,
    SubsystemError,
    SubsystemUnavailable,
    TransactionAborted,
)
from repro.subsystems.backend import StoreBackend
from repro.subsystems.failures import Fault, FaultKind, FailurePolicy, NoFailures
from repro.subsystems.resource import LockManager, VersionedStore, WouldBlock
from repro.subsystems.services import (
    Service,
    ServiceContext,
    ServicePair,
    conflicts_from_services,
)
from repro.subsystems.transaction import LocalTransaction, TransactionState

__all__ = ["Invocation", "Subsystem", "SubsystemRegistry"]


@dataclass
class Invocation:
    """Result of a successful service invocation."""

    subsystem: str
    service: str
    transaction: LocalTransaction
    return_value: object
    #: Extra virtual time an injected latency spike added to the call
    #: (below the invoker's timeout — otherwise the call would have
    #: been abandoned instead of succeeding).
    latency: float = 0.0

    @property
    def txn_id(self) -> str:
        return self.transaction.txn_id

    @property
    def is_prepared(self) -> bool:
        return self.transaction.state is TransactionState.PREPARED


class Subsystem:
    """One transactional subsystem with its store, locks and services."""

    _txn_ids = itertools.count(1)

    #: Fallback virtual wait charged to a hang when the invoker set no
    #: timeout (the hang must still release eventually).
    DEFAULT_HANG_BUDGET = 10.0

    def __init__(
        self,
        name: str,
        initial_state: Optional[Mapping[str, object]] = None,
        backend: Optional[StoreBackend] = None,
    ) -> None:
        self.name = name
        self.store = VersionedStore(initial_state, backend=backend)
        self.locks = LockManager()
        self._services: Dict[str, Service] = {}
        self._transactions: Dict[str, LocalTransaction] = {}
        #: Virtual clock consulted for crash-stop recovery; ``None``
        #: means outages last until :meth:`restore` is called.
        self.clock = None
        #: Virtual time until which the subsystem is crash-stopped.
        self._down_until: Optional[float] = None
        #: Optional structured trace bus (wired by the scheduler's
        #: ``attach_trace``); fault injections are emitted on it.
        self.trace = None
        #: Optional observer ``(txn_id, committed) -> None`` invoked on
        #: every prepared-transaction resolution — the federation's
        #: decision ledger audits lost/duplicated 2PC outcomes with it.
        self.on_resolve = None

    @property
    def backend(self) -> StoreBackend:
        """The storage backend behind this subsystem's store."""
        return self.store.backend

    def close(self) -> None:
        """Release the store backend's resources (idempotent)."""
        self.store.close()

    def __enter__(self) -> "Subsystem":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- registration ---------------------------------------------------------

    def register(self, service: Union[Service, ServicePair]) -> "Subsystem":
        """Register a service or a compensatable service pair."""
        if isinstance(service, ServicePair):
            self._register_one(service.forward)
            self._register_one(service.compensation)
        else:
            self._register_one(service)
        return self

    def _register_one(self, service: Service) -> None:
        if service.name in self._services:
            raise SubsystemError(
                f"service {service.name!r} already registered on "
                f"subsystem {self.name!r}"
            )
        self._services[service.name] = service

    def service(self, name: str) -> Service:
        try:
            return self._services[name]
        except KeyError:
            raise ServiceNotFoundError(
                f"subsystem {self.name!r} provides no service {name!r}"
            ) from None

    def services(self) -> Iterator[Service]:
        return iter(self._services.values())

    def provides(self, name: str) -> bool:
        return name in self._services

    # -- invocation --------------------------------------------------------------

    def invoke(
        self,
        service_name: str,
        params: Optional[Mapping[str, object]] = None,
        hold: bool = False,
        attempt: int = 1,
        failures: Optional[FailurePolicy] = None,
        txn_id: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Invocation:
        """Invoke a service as an atomic local transaction.

        With ``hold=True`` the transaction is *prepared* instead of
        committed — the deferred-commit mode for non-compensatable
        activities.  Raises :class:`TransactionAborted` when the
        invocation fails (injected or raised by the handler) and
        :class:`WouldBlock` when a lock conflict requires waiting; in
        both cases the transaction is rolled back and no effects remain.

        ``timeout`` is the invoker's patience in virtual time: a hang
        fault (or a latency spike at least that long) abandons the call
        with :class:`~repro.errors.ServiceTimeout`.  While the subsystem
        is crash-stopped, every invocation fails fast with
        :class:`~repro.errors.SubsystemUnavailable`.
        """
        service = self.service(service_name)
        policy = failures or NoFailures()
        self._check_available(service_name)
        identifier = txn_id or f"{self.name}/t{next(self._txn_ids)}"
        transaction = LocalTransaction(identifier, self.store, self.locks)
        self._transactions[identifier] = transaction
        latency = 0.0
        try:
            fault = policy.fault_for(service_name, attempt)
            if fault is not None:
                latency = self._apply_fault(
                    fault, service_name, attempt, timeout
                )
            context = ServiceContext(transaction, params or {}, self.name)
            value = service.run(context)
        except (TransactionAborted, WouldBlock):
            transaction.rollback()
            del self._transactions[identifier]
            raise
        except Exception as error:
            transaction.rollback()
            del self._transactions[identifier]
            raise TransactionAborted(
                f"service {service_name!r} raised {error!r}"
            ) from error
        if hold:
            transaction.prepare()
        else:
            try:
                transaction.commit()
            except StorageFault:
                # The backend failed to make the batch durable (injected
                # fsync fault, dead worker) and rolled it back; abort the
                # transaction so no locks leak — atomicity holds, the
                # invocation surfaces as an ordinary failed attempt.
                transaction.rollback()
                del self._transactions[identifier]
                raise
            del self._transactions[identifier]
        return Invocation(
            subsystem=self.name,
            service=service_name,
            transaction=transaction,
            return_value=value,
            latency=latency,
        )

    # -- fault injection ------------------------------------------------------

    def _apply_fault(
        self,
        fault: Fault,
        service_name: str,
        attempt: int,
        timeout: Optional[float],
    ) -> float:
        """Realise an injected fault; returns survivable extra latency."""
        trace = self.trace
        if trace is not None and trace.enabled:
            trace.emit(
                "fault",
                fault=fault.kind.value,
                service=service_name,
                subsystem=self.name,
                attempt=attempt,
                duration=fault.duration,
            )
        where = (
            f"{service_name!r} (attempt {attempt}) on subsystem {self.name!r}"
        )
        if fault.kind is FaultKind.ABORT:
            raise TransactionAborted(f"injected abort of {where}")
        if fault.kind is FaultKind.HANG:
            budget = timeout if timeout is not None else (
                fault.duration or self.DEFAULT_HANG_BUDGET
            )
            raise ServiceTimeout(
                f"injected hang of {where}: abandoned after {budget} "
                f"virtual time units",
                elapsed=budget,
            )
        if fault.kind is FaultKind.LATENCY:
            if timeout is not None and fault.duration >= timeout:
                raise ServiceTimeout(
                    f"injected latency spike of {fault.duration:.3f} on "
                    f"{where} exceeded the timeout of {timeout}",
                    elapsed=timeout,
                )
            return fault.duration
        if fault.kind is FaultKind.CRASH:
            # The crash-stop *kills* the in-flight transaction — a real
            # failed attempt, so retry counters advance — and downs the
            # subsystem.  Invocations arriving during the outage get the
            # transient :class:`SubsystemUnavailable` refusal instead
            # (see :meth:`_check_available`).
            self.crash_for(fault.duration)
            raise TransactionAborted(
                f"injected crash-stop of subsystem {self.name!r} killed "
                f"{where}; down for {fault.duration:.3f} virtual time units"
            )
        raise SubsystemError(  # pragma: no cover - exhaustive enum
            f"unknown fault kind {fault.kind!r}"
        )

    def _check_available(self, service_name: str) -> None:
        if self._down_until is None:
            return
        now = self.clock.now if self.clock is not None else None
        if now is not None and now >= self._down_until:
            self._down_until = None  # outage over: crash-recover
            # A killable backend really lost its process; respawn it so
            # the recovered subsystem serves from the surviving state.
            self.backend.ensure_alive()
            return
        remaining = (
            self._down_until - now if now is not None else float("inf")
        )
        raise SubsystemUnavailable(
            f"subsystem {self.name!r} is crash-stopped; {service_name!r} "
            f"rejected",
            retry_after=remaining,
        )

    def crash_for(self, duration: float) -> None:
        """Crash-stop the subsystem for ``duration`` virtual time.

        Without a :attr:`clock`, the outage lasts until
        :meth:`restore` — the crash-stop-without-recovery model.
        """
        if self.clock is not None:
            until = self.clock.now + duration
            self._down_until = max(self._down_until or 0.0, until)
        else:
            self._down_until = float("inf")
        # On a killable backend the crash-stop is physical: the storage
        # worker process is really SIGKILLed.  Committed state survives
        # on disk; the outage-end/restore path respawns the worker.
        self.backend.kill()

    def restore(self) -> None:
        """Bring a crash-stopped subsystem back (manual recovery)."""
        self._down_until = None
        self.backend.ensure_alive()

    @property
    def is_down(self) -> bool:
        if self._down_until is None:
            return False
        now = self.clock.now if self.clock is not None else None
        return now is None or now < self._down_until

    # -- prepared transaction management -------------------------------------------

    def commit_prepared(self, txn_id: str) -> None:
        """Commit a prepared transaction (2PC phase two).

        Phase two happens *after* the coordinator durably logged the
        commit decision, so this commit must eventually succeed —
        injected fsync faults are therefore suspended here (the real
        system retries phase two until the disk heals; presumed-commit
        anchoring, Lemma 1).  A genuinely dead storage worker still
        raises :class:`~repro.errors.StorageFault` with the transaction
        left prepared: the caller respawns and retries.
        """
        transaction = self._require_transaction(txn_id)
        transaction.require_prepared()
        faults = self.backend.faults
        if faults is not None:
            suspended = faults.suspended
            faults.suspended = True
            try:
                transaction.commit()
            finally:
                faults.suspended = suspended
        else:
            transaction.commit()
        del self._transactions[txn_id]
        if self.on_resolve is not None:
            self.on_resolve(txn_id, True)

    def rollback_prepared(self, txn_id: str) -> None:
        """Roll back a prepared transaction (2PC abort / victim abort)."""
        transaction = self._require_transaction(txn_id)
        transaction.require_prepared()
        transaction.rollback()
        del self._transactions[txn_id]
        if self.on_resolve is not None:
            self.on_resolve(txn_id, False)

    def prepared_transactions(self) -> List[LocalTransaction]:
        """In-doubt transactions, e.g. to be resolved by crash recovery."""
        return [
            transaction
            for transaction in self._transactions.values()
            if transaction.state is TransactionState.PREPARED
        ]

    def _require_transaction(self, txn_id: str) -> LocalTransaction:
        try:
            return self._transactions[txn_id]
        except KeyError:
            raise SubsystemError(
                f"subsystem {self.name!r} knows no open transaction "
                f"{txn_id!r}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Subsystem({self.name!r}, services={len(self._services)}, "
            f"open_txns={len(self._transactions)})"
        )


class SubsystemRegistry:
    """Routes service invocations to subsystems by name.

    Also aggregates the semantic conflict relation over all registered
    services, which the scheduler combines with any explicitly declared
    conflicts.
    """

    def __init__(
        self,
        subsystems: Iterable[Subsystem] = (),
        backend_factory: Optional[Callable[[str], StoreBackend]] = None,
    ) -> None:
        self._subsystems: Dict[str, Subsystem] = {}
        #: ``name -> StoreBackend`` factory consulted whenever a
        #: subsystem is auto-provisioned (scheduler/baselines create
        #: subsystems on demand for services no one registered).  A
        #: :class:`~repro.subsystems.backend.BackendHub`'s
        #: ``backend_for`` is the canonical factory; ``None`` keeps the
        #: seed's in-memory default.
        self.backend_factory = backend_factory
        for subsystem in subsystems:
            self.add(subsystem)

    def provision(self, name: str) -> Subsystem:
        """Create, register and return a subsystem named ``name``,
        backed through :attr:`backend_factory` when one is set."""
        backend = (
            self.backend_factory(name)
            if self.backend_factory is not None
            else None
        )
        subsystem = Subsystem(name, backend=backend)
        self.add(subsystem)
        return subsystem

    def close(self) -> None:
        """Close every subsystem's store backend (idempotent)."""
        for subsystem in self._subsystems.values():
            subsystem.close()

    def __enter__(self) -> "SubsystemRegistry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def add(self, subsystem: Subsystem) -> "SubsystemRegistry":
        if subsystem.name in self._subsystems:
            raise SubsystemError(
                f"duplicate subsystem name {subsystem.name!r}"
            )
        self._subsystems[subsystem.name] = subsystem
        return self

    def get(self, name: str) -> Subsystem:
        try:
            return self._subsystems[name]
        except KeyError:
            raise SubsystemError(f"unknown subsystem {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._subsystems

    def subsystems(self) -> Iterator[Subsystem]:
        return iter(self._subsystems.values())

    def find_provider(self, service_name: str) -> Subsystem:
        """The subsystem providing a service (names must be unique)."""
        providers = [
            subsystem
            for subsystem in self._subsystems.values()
            if subsystem.provides(service_name)
        ]
        if not providers:
            raise ServiceNotFoundError(
                f"no subsystem provides service {service_name!r}"
            )
        if len(providers) > 1:
            raise SubsystemError(
                f"service {service_name!r} provided by multiple subsystems: "
                f"{[subsystem.name for subsystem in providers]}"
            )
        return providers[0]

    def semantic_conflicts(self) -> ConflictRelation:
        """Conflicts derived from all services' read/write sets."""
        return conflicts_from_services(
            service
            for subsystem in self._subsystems.values()
            for service in subsystem.services()
        )

    def prepared_transactions(self) -> List[Tuple[Subsystem, LocalTransaction]]:
        """All in-doubt transactions across subsystems."""
        found: List[Tuple[Subsystem, LocalTransaction]] = []
        for subsystem in self._subsystems.values():
            for transaction in subsystem.prepared_transactions():
                found.append((subsystem, transaction))
        return found

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Value snapshot of every store (for effect-freeness checks)."""
        return {
            name: subsystem.store.snapshot()
            for name, subsystem in self._subsystems.items()
        }
