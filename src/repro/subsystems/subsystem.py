"""Transactional subsystems (paper §2.3).

A transactional subsystem executes service invocations as atomic local
transactions and offers, per the paper's assumptions, *either* the
ability to compensate already committed services *or* support for a
two-phase commit protocol (prepared transactions with deferred commit).
Our subsystems offer both; which one an activity uses is decided by its
termination guarantee:

* **compensatable** activities commit their local transaction
  immediately — their compensation service undoes the effect later if
  needed;
* **pivot** and **retriable** activities are left *prepared* (``hold``)
  so the process scheduler can defer and atomically commit them through
  2PC (Lemma 1), or roll them back natively if the process becomes an
  abort victim before its pivot group hardens.

The :class:`SubsystemRegistry` routes invocations by subsystem name and
is the single integration point for the scheduler, the baselines and
the examples.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from repro.core.conflict import ConflictRelation
from repro.errors import (
    ServiceNotFoundError,
    SubsystemError,
    TransactionAborted,
)
from repro.subsystems.failures import FailurePolicy, NoFailures
from repro.subsystems.resource import LockManager, VersionedStore, WouldBlock
from repro.subsystems.services import (
    Service,
    ServiceContext,
    ServicePair,
    conflicts_from_services,
)
from repro.subsystems.transaction import LocalTransaction, TransactionState

__all__ = ["Invocation", "Subsystem", "SubsystemRegistry"]


@dataclass
class Invocation:
    """Result of a successful service invocation."""

    subsystem: str
    service: str
    transaction: LocalTransaction
    return_value: object

    @property
    def txn_id(self) -> str:
        return self.transaction.txn_id

    @property
    def is_prepared(self) -> bool:
        return self.transaction.state is TransactionState.PREPARED


class Subsystem:
    """One transactional subsystem with its store, locks and services."""

    _txn_ids = itertools.count(1)

    def __init__(
        self,
        name: str,
        initial_state: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.name = name
        self.store = VersionedStore(initial_state)
        self.locks = LockManager()
        self._services: Dict[str, Service] = {}
        self._transactions: Dict[str, LocalTransaction] = {}

    # -- registration ---------------------------------------------------------

    def register(self, service: Union[Service, ServicePair]) -> "Subsystem":
        """Register a service or a compensatable service pair."""
        if isinstance(service, ServicePair):
            self._register_one(service.forward)
            self._register_one(service.compensation)
        else:
            self._register_one(service)
        return self

    def _register_one(self, service: Service) -> None:
        if service.name in self._services:
            raise SubsystemError(
                f"service {service.name!r} already registered on "
                f"subsystem {self.name!r}"
            )
        self._services[service.name] = service

    def service(self, name: str) -> Service:
        try:
            return self._services[name]
        except KeyError:
            raise ServiceNotFoundError(
                f"subsystem {self.name!r} provides no service {name!r}"
            ) from None

    def services(self) -> Iterator[Service]:
        return iter(self._services.values())

    def provides(self, name: str) -> bool:
        return name in self._services

    # -- invocation --------------------------------------------------------------

    def invoke(
        self,
        service_name: str,
        params: Optional[Mapping[str, object]] = None,
        hold: bool = False,
        attempt: int = 1,
        failures: Optional[FailurePolicy] = None,
        txn_id: Optional[str] = None,
    ) -> Invocation:
        """Invoke a service as an atomic local transaction.

        With ``hold=True`` the transaction is *prepared* instead of
        committed — the deferred-commit mode for non-compensatable
        activities.  Raises :class:`TransactionAborted` when the
        invocation fails (injected or raised by the handler) and
        :class:`WouldBlock` when a lock conflict requires waiting; in
        both cases the transaction is rolled back and no effects remain.
        """
        service = self.service(service_name)
        policy = failures or NoFailures()
        identifier = txn_id or f"{self.name}/t{next(self._txn_ids)}"
        transaction = LocalTransaction(identifier, self.store, self.locks)
        self._transactions[identifier] = transaction
        try:
            if policy.should_fail(service_name, attempt):
                raise TransactionAborted(
                    f"injected abort of {service_name!r} "
                    f"(attempt {attempt}) on subsystem {self.name!r}"
                )
            context = ServiceContext(transaction, params or {}, self.name)
            value = service.run(context)
        except (TransactionAborted, WouldBlock):
            transaction.rollback()
            del self._transactions[identifier]
            raise
        except Exception as error:
            transaction.rollback()
            del self._transactions[identifier]
            raise TransactionAborted(
                f"service {service_name!r} raised {error!r}"
            ) from error
        if hold:
            transaction.prepare()
        else:
            transaction.commit()
            del self._transactions[identifier]
        return Invocation(
            subsystem=self.name,
            service=service_name,
            transaction=transaction,
            return_value=value,
        )

    # -- prepared transaction management -------------------------------------------

    def commit_prepared(self, txn_id: str) -> None:
        """Commit a prepared transaction (2PC phase two)."""
        transaction = self._require_transaction(txn_id)
        transaction.require_prepared()
        transaction.commit()
        del self._transactions[txn_id]

    def rollback_prepared(self, txn_id: str) -> None:
        """Roll back a prepared transaction (2PC abort / victim abort)."""
        transaction = self._require_transaction(txn_id)
        transaction.require_prepared()
        transaction.rollback()
        del self._transactions[txn_id]

    def prepared_transactions(self) -> List[LocalTransaction]:
        """In-doubt transactions, e.g. to be resolved by crash recovery."""
        return [
            transaction
            for transaction in self._transactions.values()
            if transaction.state is TransactionState.PREPARED
        ]

    def _require_transaction(self, txn_id: str) -> LocalTransaction:
        try:
            return self._transactions[txn_id]
        except KeyError:
            raise SubsystemError(
                f"subsystem {self.name!r} knows no open transaction "
                f"{txn_id!r}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Subsystem({self.name!r}, services={len(self._services)}, "
            f"open_txns={len(self._transactions)})"
        )


class SubsystemRegistry:
    """Routes service invocations to subsystems by name.

    Also aggregates the semantic conflict relation over all registered
    services, which the scheduler combines with any explicitly declared
    conflicts.
    """

    def __init__(self, subsystems: Iterable[Subsystem] = ()) -> None:
        self._subsystems: Dict[str, Subsystem] = {}
        for subsystem in subsystems:
            self.add(subsystem)

    def add(self, subsystem: Subsystem) -> "SubsystemRegistry":
        if subsystem.name in self._subsystems:
            raise SubsystemError(
                f"duplicate subsystem name {subsystem.name!r}"
            )
        self._subsystems[subsystem.name] = subsystem
        return self

    def get(self, name: str) -> Subsystem:
        try:
            return self._subsystems[name]
        except KeyError:
            raise SubsystemError(f"unknown subsystem {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._subsystems

    def subsystems(self) -> Iterator[Subsystem]:
        return iter(self._subsystems.values())

    def find_provider(self, service_name: str) -> Subsystem:
        """The subsystem providing a service (names must be unique)."""
        providers = [
            subsystem
            for subsystem in self._subsystems.values()
            if subsystem.provides(service_name)
        ]
        if not providers:
            raise ServiceNotFoundError(
                f"no subsystem provides service {service_name!r}"
            )
        if len(providers) > 1:
            raise SubsystemError(
                f"service {service_name!r} provided by multiple subsystems: "
                f"{[subsystem.name for subsystem in providers]}"
            )
        return providers[0]

    def semantic_conflicts(self) -> ConflictRelation:
        """Conflicts derived from all services' read/write sets."""
        return conflicts_from_services(
            service
            for subsystem in self._subsystems.values()
            for service in subsystem.services()
        )

    def prepared_transactions(self) -> List[Tuple[Subsystem, LocalTransaction]]:
        """All in-doubt transactions across subsystems."""
        found: List[Tuple[Subsystem, LocalTransaction]] = []
        for subsystem in self._subsystems.values():
            for transaction in subsystem.prepared_transactions():
                found.append((subsystem, transaction))
        return found

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Value snapshot of every store (for effect-freeness checks)."""
        return {
            name: subsystem.store.snapshot()
            for name, subsystem in self._subsystems.items()
        }
