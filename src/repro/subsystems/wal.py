"""Write-ahead logging for scheduler crash recovery.

The transactional process scheduler logs every state transition before
acting on it: process admission, activity start/commit/compensation,
2PC decisions and process terminations.  After a crash, restart recovery
(:mod:`repro.subsystems.recovery`) replays the log to reconstruct which
processes were active and which activities had committed, then performs
the group abort of Definition 8 2(b).

Two log implementations share one interface:

* :class:`InMemoryWAL` — survives a *simulated* scheduler crash (the
  scheduler object is discarded, the log object is handed to recovery),
  the default for tests and benchmarks;
* :class:`FileWAL` — durable on-disk log, re-openable across real
  process restarts.

Records are plain dictionaries with a ``type`` key; every append gets a
monotonically increasing log sequence number (``lsn``).

On-disk format (WAL v2)
-----------------------

Each record is one line::

    <crc32 hex, 8 chars> <canonical compact JSON>\\n

The checksum covers the JSON payload bytes.  Loading distinguishes two
corruption shapes:

* **torn tail** — the *last* record of the file is partial, fails its
  checksum or does not parse.  That is the signature of a crash during
  an append; the salvage policy truncates the torn record and the log
  reopens with every durable record intact (``FileWAL.salvaged``
  reports what was dropped).
* **mid-log corruption** — a damaged record *followed by intact
  records* cannot be a torn append; loading raises a typed
  :class:`~repro.errors.LogCorruptionError` carrying the LSN and byte
  offset of the damage.

Legacy v1 lines (bare JSON without a checksum prefix) are still read.

Checkpoints
-----------

``checkpoint(state)`` appends a ``{"type": "checkpoint", "state": …}``
record and then *compacts* the log: records preceding the checkpoint
are dropped (the checkpoint's state subsumes them), so replay cost
after a crash is bounded by the distance to the last checkpoint rather
than the total history length.  LSNs keep increasing monotonically
across compactions; :meth:`truncate` is the full reset (empty log,
LSNs restart at zero).
"""

from __future__ import annotations

import json
import logging
import os
import zlib
from typing import Dict, Iterator, List, Optional

from repro.errors import LogCorruptionError

__all__ = ["WriteAheadLog", "InMemoryWAL", "FileWAL", "CHECKPOINT"]

#: Record type of checkpoint records (shared with recovery's analysis).
CHECKPOINT = "checkpoint"

#: Module logger; the ``repro`` package logger carries a NullHandler,
#: so nothing prints unless the embedding application configures
#: logging.
logger = logging.getLogger(__name__)


def _encode(record: Dict[str, object]) -> str:
    """Canonical v2 line for a record (without the trailing newline)."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {payload}"


class WriteAheadLog:
    """Interface of an append-only record log."""

    #: Optional structured trace bus (see :mod:`repro.obs.bus`); the
    #: scheduler's :meth:`attach_trace` wires it.  Emission is guarded
    #: on ``trace.enabled``, so an unattached or disabled bus costs one
    #: attribute test per append.
    trace: Optional[object] = None

    def _emit(self, kind: str, **data: object) -> None:
        trace = self.trace
        if trace is not None and trace.enabled:  # type: ignore[attr-defined]
            trace.emit(kind, **data)  # type: ignore[attr-defined]

    def append(self, record: Dict[str, object]) -> int:
        """Append a record; returns its log sequence number."""
        raise NotImplementedError

    def records(self) -> List[Dict[str, object]]:
        """All retained records in append order (each includes its ``lsn``)."""
        raise NotImplementedError

    def checkpoint(self, state: Dict[str, object]) -> int:
        """Append a checkpoint record and compact the log up to it.

        ``state`` is the serialized WAL scan state (see
        :meth:`repro.subsystems.recovery.WalScanState.to_dict`); records
        before the checkpoint are discarded.  Returns the checkpoint's
        LSN.
        """
        raise NotImplementedError

    def truncate(self) -> None:
        """Discard all records and restart LSNs at zero."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (no-op for in-memory logs)."""

    def sync(self) -> None:
        """Force durability of all appended records (no-op in memory)."""

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self.records())

    def __len__(self) -> int:
        return len(self.records())


class InMemoryWAL(WriteAheadLog):
    """Log kept in memory; survives simulated crashes, not real ones."""

    def __init__(self) -> None:
        self._records: List[Dict[str, object]] = []
        self._next_lsn = 0

    def append(self, record: Dict[str, object]) -> int:
        lsn = self._next_lsn
        self._next_lsn += 1
        stamped = dict(record)
        stamped["lsn"] = lsn
        self._records.append(stamped)
        self._emit(
            "wal_append",
            lsn=lsn,
            record_type=record.get("type"),
            process=record.get("process"),
        )
        return lsn

    def records(self) -> List[Dict[str, object]]:
        return list(self._records)

    def checkpoint(self, state: Dict[str, object]) -> int:
        lsn = self.append({"type": CHECKPOINT, "state": state})
        # Compact: the checkpoint subsumes everything before it.
        dropped = len(self._records) - 1
        self._records = [self._records[-1]]
        self._emit("wal_checkpoint", lsn=lsn, compacted=dropped)
        return lsn

    def truncate(self) -> None:
        """Discard all records (checkpointing support)."""
        dropped = len(self._records)
        self._records.clear()
        self._next_lsn = 0
        self._emit("wal_truncate", dropped=dropped)


class FileWAL(WriteAheadLog):
    """Checksummed JSON-lines log on disk, re-openable across restarts.

    The file handle is opened once and held for the WAL's lifetime
    (:meth:`close` releases it; appending after close reopens).  The
    flush policy decides when appended records become durable:

    * ``flush="always"`` (default) — flush to the OS after every append
      (a crash of *this process* loses nothing);
    * ``flush="never"`` — buffered until :meth:`sync`/:meth:`close`
      (fastest, a crash may tear the buffered tail — which the salvage
      policy then repairs on reopen).

    ``fsync=True`` additionally fsyncs after every append (survives an
    OS crash, at real I/O cost).  ``salvage=False`` disables torn-tail
    truncation and turns any tail damage into a
    :class:`~repro.errors.LogCorruptionError`.
    """

    def __init__(
        self,
        path: str,
        flush: str = "always",
        fsync: bool = False,
        salvage: bool = True,
    ) -> None:
        if flush not in ("always", "never"):
            raise ValueError(f"flush must be 'always' or 'never', got {flush!r}")
        self.path = path
        self.flush = flush
        self.fsync = fsync
        #: Details of the torn-tail truncation performed on load, if
        #: any: ``{"offset": int, "dropped_bytes": int, "reason": str}``.
        self.salvaged: Optional[Dict[str, object]] = None
        #: Real ``os.fsync`` calls this log performed (benchmark X14's
        #: honest durability-cost metric).
        self.fsyncs = 0
        self._records: List[Dict[str, object]] = []
        self._next_lsn = 0
        self._handle = None
        if os.path.exists(path):
            self._load(salvage=salvage)

    # -- loading -----------------------------------------------------------

    def _load(self, salvage: bool) -> None:
        with open(self.path, "rb") as handle:
            raw = handle.read()
        offset = 0
        lines: List[tuple] = []  # (byte offset, line bytes)
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline == -1:
                lines.append((offset, raw[offset:]))
                break
            lines.append((offset, raw[offset:newline]))
            offset = newline + 1
        content = [(off, line) for off, line in lines if line.strip()]
        for index, (off, line) in enumerate(content):
            is_tail = index == len(content) - 1
            try:
                record = self._parse_line(line, off)
            except LogCorruptionError as error:
                if is_tail and salvage:
                    self._salvage(off, len(raw) - off, str(error))
                    return
                raise
            # A checksum-valid tail record merely missing its newline is
            # kept; _open() restores the newline before the next append.
            self._records.append(record)
        self._next_lsn = self._infer_next_lsn()

    def _parse_line(self, line: bytes, offset: int) -> Dict[str, object]:
        lsn = self._infer_next_lsn()
        try:
            text = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise LogCorruptionError(
                f"{self.path}: undecodable bytes at offset {offset} "
                f"(lsn {lsn}): {error}",
                lsn=lsn,
                offset=offset,
            ) from error
        if len(text) > 9 and text[8] == " " and _is_hex8(text[:8]):
            payload = text[9:]
            expected = int(text[:8], 16)
            actual = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
            if actual != expected:
                raise LogCorruptionError(
                    f"{self.path}: checksum mismatch at offset {offset} "
                    f"(lsn {lsn}): recorded {expected:08x}, "
                    f"computed {actual:08x}",
                    lsn=lsn,
                    offset=offset,
                )
        else:
            # Legacy v1 line: bare JSON without a checksum prefix.
            payload = text
        try:
            record = json.loads(payload)
        except json.JSONDecodeError as error:
            raise LogCorruptionError(
                f"{self.path}: unparsable record at offset {offset} "
                f"(lsn {lsn}): {error}",
                lsn=lsn,
                offset=offset,
            ) from error
        if not isinstance(record, dict) or "type" not in record:
            raise LogCorruptionError(
                f"{self.path}: record without type at offset {offset} "
                f"(lsn {lsn})",
                lsn=lsn,
                offset=offset,
            )
        return record

    def _infer_next_lsn(self) -> int:
        # LSNs are monotone, so the last record decides; hand-written
        # legacy records without an ``lsn`` fall back to the count.
        if self._records:
            last = self._records[-1].get("lsn")
            if isinstance(last, int):
                return last + 1
        return len(self._records)

    def _salvage(self, offset: int, dropped: int, reason: str) -> None:
        with open(self.path, "r+b") as handle:
            handle.truncate(offset)
        self.salvaged = {
            "offset": offset,
            "dropped_bytes": dropped,
            "reason": reason,
        }
        self._next_lsn = self._infer_next_lsn()
        # Salvage happens during construction, before any trace bus can
        # be attached — the stdlib logger is the right channel here.
        logger.warning(
            "%s: salvaged torn WAL tail at offset %d (%d bytes dropped): %s",
            self.path,
            offset,
            dropped,
            reason,
        )

    # -- the persistent handle ---------------------------------------------

    def _open(self):
        if self._handle is None:
            # Repair a missing trailing newline before appending, so a
            # record accepted off a newline-less tail never merges with
            # the next append.
            if os.path.exists(self.path):
                with open(self.path, "rb") as probe:
                    probe.seek(0, os.SEEK_END)
                    size = probe.tell()
                    if size:
                        probe.seek(size - 1)
                        needs_newline = probe.read(1) != b"\n"
                    else:
                        needs_newline = False
                if needs_newline:
                    with open(self.path, "ab") as repair:
                        repair.write(b"\n")
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def sync(self) -> None:
        handle = self._open()
        handle.flush()
        os.fsync(handle.fileno())
        self.fsyncs += 1
        self._emit("wal_sync", lsn=self._next_lsn - 1)

    # -- appending ----------------------------------------------------------

    def append(self, record: Dict[str, object]) -> int:
        lsn = self._next_lsn
        self._next_lsn += 1
        stamped = dict(record)
        stamped["lsn"] = lsn
        handle = self._open()
        handle.write(_encode(stamped))
        handle.write("\n")
        if self.flush == "always":
            handle.flush()
        fsynced = self.fsync
        if fsynced:
            handle.flush()
            os.fsync(handle.fileno())
            self.fsyncs += 1
        self._records.append(stamped)
        self._emit(
            "wal_append",
            lsn=lsn,
            record_type=record.get("type"),
            process=record.get("process"),
            fsync=fsynced,
        )
        return lsn

    def records(self) -> List[Dict[str, object]]:
        return list(self._records)

    # -- checkpointing -------------------------------------------------------

    def checkpoint(self, state: Dict[str, object]) -> int:
        lsn = self.append({"type": CHECKPOINT, "state": state})
        dropped = len(self._records) - 1
        self._records = [self._records[-1]]
        self._rewrite()
        self._emit("wal_checkpoint", lsn=lsn, compacted=dropped)
        return lsn

    def truncate(self) -> None:
        """Empty the log on disk; a reopened truncated log has no records."""
        dropped = len(self._records)
        self._records = []
        self._next_lsn = 0
        self._rewrite()
        self._emit("wal_truncate", dropped=dropped)

    def _rewrite(self) -> None:
        """Atomically replace the file with the retained records.

        Restores the handle to its prior open/closed state — a closed
        WAL stays closed after a compaction, so lifecycle tests can
        assert no handle survives ``close()``.
        """
        was_open = self._handle is not None
        self.close()
        tmp_path = f"{self.path}.compact"
        with open(tmp_path, "w", encoding="utf-8") as tmp:
            for record in self._records:
                tmp.write(_encode(record))
                tmp.write("\n")
            tmp.flush()
            os.fsync(tmp.fileno())
        self.fsyncs += 1
        os.replace(tmp_path, self.path)
        if was_open:
            self._open()


def _is_hex8(text: str) -> bool:
    if len(text) != 8:
        return False
    try:
        int(text, 16)
    except ValueError:
        return False
    return True
