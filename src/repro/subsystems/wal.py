"""Write-ahead logging for scheduler crash recovery.

The transactional process scheduler logs every state transition before
acting on it: process admission, activity start/commit/compensation,
2PC decisions and process terminations.  After a crash, restart recovery
(:mod:`repro.subsystems.recovery`) replays the log to reconstruct which
processes were active and which activities had committed, then performs
the group abort of Definition 8 2(b).

Two log implementations share one interface:

* :class:`InMemoryWAL` — survives a *simulated* scheduler crash (the
  scheduler object is discarded, the log object is handed to recovery),
  the default for tests and benchmarks;
* :class:`FileWAL` — appends JSON lines to a file and can be re-opened,
  for examples that demonstrate real restart.

Records are plain dictionaries with a ``type`` key; every append gets a
monotonically increasing log sequence number (``lsn``).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import LogCorruptionError

__all__ = ["WriteAheadLog", "InMemoryWAL", "FileWAL"]


class WriteAheadLog:
    """Interface of an append-only record log."""

    def append(self, record: Dict[str, object]) -> int:
        """Append a record; returns its log sequence number."""
        raise NotImplementedError

    def records(self) -> List[Dict[str, object]]:
        """All records in append order (each includes its ``lsn``)."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self.records())

    def __len__(self) -> int:
        return len(self.records())


class InMemoryWAL(WriteAheadLog):
    """Log kept in memory; survives simulated crashes, not real ones."""

    def __init__(self) -> None:
        self._records: List[Dict[str, object]] = []

    def append(self, record: Dict[str, object]) -> int:
        lsn = len(self._records)
        stamped = dict(record)
        stamped["lsn"] = lsn
        self._records.append(stamped)
        return lsn

    def records(self) -> List[Dict[str, object]]:
        return list(self._records)

    def truncate(self) -> None:
        """Discard all records (checkpointing support)."""
        self._records.clear()


class FileWAL(WriteAheadLog):
    """JSON-lines log on disk, re-openable across real process restarts."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._records: List[Dict[str, object]] = []
        if os.path.exists(path):
            self._load()

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    raise LogCorruptionError(
                        f"{self.path}:{line_number + 1}: {error}"
                    ) from error
                if not isinstance(record, dict) or "type" not in record:
                    raise LogCorruptionError(
                        f"{self.path}:{line_number + 1}: record without type"
                    )
                self._records.append(record)

    def append(self, record: Dict[str, object]) -> int:
        lsn = len(self._records)
        stamped = dict(record)
        stamped["lsn"] = lsn
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(stamped, sort_keys=True))
            handle.write("\n")
        self._records.append(stamped)
        return lsn

    def records(self) -> List[Dict[str, object]]:
        return list(self._records)
