"""Weak order inside subsystems (paper §3.6, composite systems).

The process model's strong order executes an activity only after its
predecessor *terminated*.  The weak order of the composite-systems
theory is more permissive: two (even conflicting) activities may run in
parallel inside a subsystem "as long as the overall effect is the same
as if they would have been executed as specified by the strong order".
The subsystem guarantees this by **commit-order serializability**: the
local transactions may interleave, but they commit in the prescribed
weak order, and reads respect it.

This module implements that protocol for our subsystems, plus the
paper's special treatment of retriable re-invocation:

    "If the local transaction T_ik corresponding to a_ik^r terminates
    aborting after some operations of T_ik have already been executed,
    then, in general, the local transaction T_jl running in parallel to
    T_ik has to be aborted, too.  However, as this is not due to a
    failure of T_jl, it must not lead to an exception of P_j … after
    T_ik is restarted, T_jl has to be restarted within the subsystem,
    too."

:class:`WeakOrderSession` wraps one subsystem.  Activities are enlisted
with an explicit weak-order position; their handlers run immediately
against a session-private overlay (so conflicting work can proceed in
parallel without tripping the strict-2PL locks), and the session
commits the group to the real store in weak order.  If an enlisted
invocation aborts and is re-invoked (the retriable case), every
transaction ordered *after* it in the weak order is rolled back and
re-executed — the cascaded restart of §3.6, invisible to the process
layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import SubsystemError, TransactionAborted
from repro.subsystems.failures import FailurePolicy, NoFailures
from repro.subsystems.services import ServiceContext
from repro.subsystems.subsystem import Subsystem

__all__ = ["WeakEnlistment", "WeakOrderSession"]


class _OverlayTransaction:
    """A transaction against a session-private overlay of the store.

    Reads see the overlay state as produced by every *earlier* (in weak
    order) enlisted transaction — the commit-order-serializable view —
    without acquiring store locks, so conflicting enlistments can run
    concurrently in wall-clock terms.
    """

    def __init__(self, base_read: Callable[[str, object], object]) -> None:
        self._base_read = base_read
        self.writes: Dict[str, object] = {}
        self.reads: Set[str] = set()

    def read(self, key: str, default: object = None) -> object:
        self.reads.add(key)
        if key in self.writes:
            return self.writes[key]
        return self._base_read(key, default)

    def write(self, key: str, value: object) -> None:
        self.writes[key] = value

    def increment(self, key: str, amount: float = 1) -> float:
        current = self.read(key, 0)
        updated = (current or 0) + amount  # type: ignore[operator]
        self.write(key, updated)
        return updated  # type: ignore[return-value]


@dataclass
class WeakEnlistment:
    """One activity enlisted into a weak-order session."""

    position: int
    service_name: str
    params: Mapping[str, object]
    attempt: int = 1
    #: Result of the latest (re-)execution.
    return_value: object = None
    executed: bool = False
    #: How many times §3.6's cascaded restart re-ran this transaction.
    restarts: int = 0
    _overlay: Optional[_OverlayTransaction] = None


class WeakOrderSession:
    """Commit-order-serializable execution of a group of activities.

    Usage::

        session = WeakOrderSession(subsystem)
        first = session.enlist("transfer", position=0)
        second = session.enlist("audit", position=1)   # conflicts with first
        session.execute_all()        # both run, in parallel semantics
        session.commit()             # effects installed in weak order

    Re-invoking a failed enlistment (:meth:`reinvoke`) restarts every
    later transaction automatically.
    """

    def __init__(
        self,
        subsystem: Subsystem,
        failures: Optional[FailurePolicy] = None,
    ) -> None:
        self.subsystem = subsystem
        self._failures = failures or NoFailures()
        self._enlistments: List[WeakEnlistment] = []
        self._committed = False

    # -- enlistment ---------------------------------------------------------

    def enlist(
        self,
        service_name: str,
        position: Optional[int] = None,
        params: Optional[Mapping[str, object]] = None,
    ) -> WeakEnlistment:
        """Add an activity at a weak-order position (append by default)."""
        if self._committed:
            raise SubsystemError("weak-order session already committed")
        self.subsystem.service(service_name)  # validate early
        if position is None:
            position = len(self._enlistments)
        enlistment = WeakEnlistment(
            position=position,
            service_name=service_name,
            params=dict(params or {}),
        )
        self._enlistments.append(enlistment)
        self._enlistments.sort(key=lambda entry: entry.position)
        return enlistment

    def _ordered(self) -> List[WeakEnlistment]:
        return sorted(self._enlistments, key=lambda entry: entry.position)

    # -- execution -----------------------------------------------------------

    def _view_before(self, enlistment: WeakEnlistment):
        """Read function seeing the overlay of all earlier enlistments."""
        earlier = [
            entry
            for entry in self._ordered()
            if entry.position < enlistment.position
            and entry.executed
            and entry._overlay is not None
        ]

        def read(key: str, default: object = None) -> object:
            for entry in reversed(earlier):
                overlay = entry._overlay
                assert overlay is not None
                if key in overlay.writes:
                    return overlay.writes[key]
            return self.subsystem.store.get(key, default)

        return read

    def _run_one(self, enlistment: WeakEnlistment) -> None:
        service = self.subsystem.service(enlistment.service_name)
        if self._failures.should_fail(
            enlistment.service_name, enlistment.attempt
        ):
            raise TransactionAborted(
                f"injected abort of {enlistment.service_name!r} "
                f"(attempt {enlistment.attempt}) in weak-order session"
            )
        overlay = _OverlayTransaction(self._view_before(enlistment))
        context = ServiceContext(
            overlay,  # type: ignore[arg-type] - duck-typed transaction
            enlistment.params,
            self.subsystem.name,
        )
        enlistment.return_value = service.run(context)
        enlistment._overlay = overlay
        enlistment.executed = True

    def execute_all(self) -> None:
        """(Re-)execute every pending enlistment in weak order.

        Raises :class:`TransactionAborted` for the first failing
        enlistment; already-executed earlier enlistments keep their
        overlays (they are unaffected — only *later* ones depend on the
        failed one and remain unexecuted).
        """
        for enlistment in self._ordered():
            if not enlistment.executed:
                self._run_one(enlistment)

    def reinvoke(self, enlistment: WeakEnlistment) -> None:
        """Re-invoke a failed (retriable) enlistment — §3.6 semantics.

        Every enlistment ordered after it is rolled back and re-executed
        so that all reads again respect the weak order.  The restart is
        not a failure of those activities: their ``restarts`` counters
        increase, their attempts do not.
        """
        enlistment.attempt += 1
        for entry in self._ordered():
            if entry.position > enlistment.position and entry.executed:
                entry.executed = False
                entry._overlay = None
                entry.restarts += 1
        self._run_one(enlistment)
        for entry in self._ordered():
            if not entry.executed:
                self._run_one(entry)

    # -- commitment ------------------------------------------------------------

    def commit(self) -> None:
        """Install every overlay into the store, in weak order.

        The installation is the commit-order-serializable step: effects
        land exactly as if the group had executed sequentially in the
        prescribed order, regardless of the wall-clock interleaving.
        """
        if self._committed:
            raise SubsystemError("weak-order session already committed")
        pending = [
            entry for entry in self._ordered() if not entry.executed
        ]
        if pending:
            raise SubsystemError(
                f"cannot commit: enlistments not executed: "
                f"{[entry.service_name for entry in pending]}"
            )
        for entry in self._ordered():
            overlay = entry._overlay
            assert overlay is not None
            self.subsystem.store.apply(overlay.writes)
        self._committed = True

    def abort(self) -> None:
        """Drop every overlay; the store is untouched (atomicity)."""
        for entry in self._enlistments:
            entry.executed = False
            entry._overlay = None
        self._committed = True

    # -- introspection -----------------------------------------------------------

    def effects_match_strong_order(self) -> bool:
        """Check the §3.6 guarantee against a strong-order re-execution.

        Replays the enlisted services sequentially on a scratch copy of
        the store and compares the final values with what :meth:`commit`
        would install — ``True`` iff the weak execution is effect-
        equivalent to the strong order.
        """
        scratch: Dict[str, object] = dict(self.subsystem.store.snapshot())

        class _Scratch:
            def read(self, key, default=None):
                return scratch.get(key, default)

            def write(self, key, value):
                scratch[key] = value

            def increment(self, key, amount=1):
                value = (scratch.get(key, 0) or 0) + amount
                scratch[key] = value
                return value

        for entry in self._ordered():
            if not entry.executed:
                return False
            service = self.subsystem.service(entry.service_name)
            service.run(
                ServiceContext(
                    _Scratch(),  # type: ignore[arg-type]
                    entry.params,
                    self.subsystem.name,
                )
            )

        combined: Dict[str, object] = {}
        for entry in self._ordered():
            assert entry._overlay is not None
            combined.update(entry._overlay.writes)
        return all(scratch.get(key) == value for key, value in combined.items())
