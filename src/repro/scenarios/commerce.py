"""E-commerce order fulfilment processes (paper §1's motivation).

The paper names electronic commerce as a prime application of
transactional process management.  This scenario models an order
pipeline over four subsystems:

* ``shop`` — the storefront: order records (compensatable — orders can
  be cancelled);
* ``inventory`` — stock reservation (compensatable — reservations can
  be released);
* ``payments`` — charging the customer: the **pivot** (a captured card
  payment is neither safely retriable nor silently reversible in this
  model — refunds are a business decision, not a compensation the shop
  may unilaterally schedule);
* ``logistics`` — shipping label + dispatch (retriable: the courier API
  is eventually available).

If the payment fails, the order process falls back to an alternative
that marks the order "awaiting manual payment" and notifies the
customer (retriable activities), demonstrating guaranteed termination:
the order never ends half-processed.

Two order processes for the *same article* conflict in the inventory
subsystem (reserve/reserve on one stock record) — the concurrent flavor
the X2 benchmarks sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.conflict import ConflictRelation
from repro.core.flex import build_process, choice, comp, pivot, retr, seq
from repro.core.process import Process
from repro.errors import TransactionAborted
from repro.subsystems.services import Service, ServicePair, append_service
from repro.subsystems.subsystem import Subsystem, SubsystemRegistry

__all__ = ["CommerceScenario", "build_commerce_scenario", "order_process"]


def order_process(order_id: str, article: str) -> Process:
    """One order fulfilment process for ``article``."""
    return build_process(
        f"Order-{order_id}",
        seq(
            comp(
                "record_order",
                service="record_order",
                subsystem="shop",
                params={"item": order_id},
            ),
            comp(
                "reserve_stock",
                service=f"reserve_{article}",
                subsystem="inventory",
            ),
            pivot(
                "charge",
                service="charge_payment",
                subsystem="payments",
            ),
            choice(
                seq(
                    retr(
                        "ship",
                        service="dispatch",
                        subsystem="logistics",
                        params={"item": order_id},
                    ),
                    retr(
                        "confirm",
                        service="confirm_order",
                        subsystem="shop",
                        params={"item": order_id},
                    ),
                ),
                seq(
                    retr(
                        "manual_payment",
                        service="flag_manual_payment",
                        subsystem="shop",
                        params={"item": order_id},
                    ),
                    retr(
                        "notify",
                        service="notify_customer",
                        subsystem="shop",
                        params={"item": order_id},
                    ),
                ),
            ),
        ),
    )


@dataclass
class CommerceScenario:
    """Subsystems, conflicts and ready-made order processes."""

    registry: SubsystemRegistry
    conflicts: ConflictRelation
    orders: List[Process]


def build_commerce_scenario(
    orders: int = 3,
    articles: Tuple[str, ...] = ("widget",),
    stock: int = 100,
) -> CommerceScenario:
    """Build the four subsystems and ``orders`` processes per article."""
    shop = Subsystem(
        "shop",
        initial_state={"orders": [], "confirmed": [], "manual": [], "notified": []},
    )
    shop.register(append_service("record_order", "orders"))
    shop.register(append_service("confirm_order", "confirmed").forward)
    shop.register(append_service("flag_manual_payment", "manual").forward)
    shop.register(append_service("notify_customer", "notified").forward)

    inventory = Subsystem(
        "inventory",
        initial_state={f"stock:{article}": stock for article in articles},
    )
    for article in articles:
        key = f"stock:{article}"

        def reserve(context, key=key):
            remaining = context.increment(key, -1)
            if remaining < 0:  # type: ignore[operator]
                raise TransactionAborted(f"{key} exhausted")
            return remaining

        def release(context, key=key):
            return context.increment(key, 1)

        keys = frozenset({key})
        inventory.register(
            ServicePair(
                Service(f"reserve_{article}", reserve, reads=keys, writes=keys),
                Service(f"reserve_{article}~inv", release, reads=keys, writes=keys),
            )
        )

    payments = Subsystem("payments", initial_state={"captured": 0})
    payments.register(
        Service(
            "charge_payment",
            lambda context: context.increment("captured"),
            reads=frozenset({"captured"}),
            writes=frozenset({"captured"}),
        )
    )

    logistics = Subsystem("logistics", initial_state={"dispatched": []})
    logistics.register(append_service("dispatch", "dispatched").forward)

    registry = SubsystemRegistry([shop, inventory, payments, logistics])
    processes = [
        order_process(f"{article}-{index + 1}", article)
        for article in articles
        for index in range(orders)
    ]
    return CommerceScenario(
        registry=registry,
        conflicts=registry.semantic_conflicts(),
        orders=processes,
    )
