"""Concrete domain scenarios: the paper's figures, CIM, commerce, travel."""

from repro.scenarios.cim import (
    CimScenario,
    build_cim_scenario,
    construction_process,
    production_process,
)
from repro.scenarios.commerce import (
    CommerceScenario,
    build_commerce_scenario,
    order_process,
)
from repro.scenarios.paper import (
    MarkedSchedule,
    figure9_conflicts,
    paper_conflicts,
    process_p1,
    process_p2,
    process_p3,
    schedule_fig4a,
    schedule_fig4b,
    schedule_fig7,
    schedule_fig9,
    schedule_fig9_incorrect,
)
from repro.scenarios.travel import TravelScenario, build_travel_scenario, trip_process
