"""The CIM scenario of the paper's §2 (Figure 1).

Two processes coordinate Computer-Integrated Manufacturing subsystems:

* the **construction process** — design a part in the CAD system
  (compensatable: drawings can be archived/discarded), enter the bill
  of materials into the product data management system (compensatable:
  the PDM entry can be removed), run the *test* (pivot: a physical test
  consumes material and cannot be undone or guaranteed), then either
  write the full technical documentation (retriable) or — if the test
  failed — document the CAD drawing for later reuse (the alternative
  §2.1 describes);
* the **production process** — read the BOM from the PDM system
  (compensatable), order materials (compensatable: orders can be
  cancelled), schedule production (compensatable), and *produce*
  (pivot: once parts are physically made there is no inverse), then
  update stock (retriable).

The two processes conflict in the PDM system: the construction process
*writes* the BOM entry the production process *reads* (§2.2).  The
paper's point: ordering the two PDM activities suffices for concurrency
control, but recovery additionally requires the production pivot to be
deferred until the construction process commits — otherwise a failed
test compensates the PDM entry out from under physical production.

All services operate on real stores, so tests can assert effects and
effect-freeness of compensation, not just event orderings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.conflict import ConflictRelation
from repro.core.flex import build_process, choice, comp, pivot, retr, seq
from repro.core.process import Process
from repro.subsystems.services import (
    Service,
    ServicePair,
    append_service,
    counter_service,
)
from repro.subsystems.subsystem import Subsystem, SubsystemRegistry

__all__ = [
    "CimScenario",
    "build_cim_scenario",
    "construction_process",
    "production_process",
]


def construction_process() -> Process:
    """The construction process of Figure 1.

    The preferred path enters the BOM into the PDM system, runs the
    test and writes the technical documentation.  If the *test* (the
    pivot) fails, the process backtracks: the PDM entry is compensated
    and only the CAD drawing is archived for later reuse — exactly the
    partial rollback §2.1 describes ("undo only the PDM entry and
    document the CAD drawing").  The long-running design activity is
    never undone.
    """
    return build_process(
        "Construction",
        seq(
            comp("design", service="cad_design", subsystem="cad"),
            pivot("approve", service="approve_design", subsystem="cad"),
            choice(
                seq(
                    comp("pdm_entry", service="pdm_write_bom", subsystem="pdm"),
                    pivot("test", service="test_part", subsystem="testdb"),
                    retr(
                        "tech_doc",
                        service="write_tech_doc",
                        subsystem="docs",
                    ),
                ),
                seq(
                    retr(
                        "doc_drawing",
                        service="archive_drawing",
                        subsystem="docs",
                    ),
                ),
            ),
        ),
    )


def production_process() -> Process:
    """The production process of Figure 1."""
    return build_process(
        "Production",
        seq(
            comp("read_bom", service="pdm_read_bom", subsystem="pdm"),
            comp("order", service="order_material", subsystem="erp"),
            comp("schedule", service="schedule_production", subsystem="erp"),
            pivot("produce", service="produce_parts", subsystem="floor"),
            retr("stock", service="update_stock", subsystem="erp"),
        ),
    )


@dataclass
class CimScenario:
    """Everything needed to run the CIM example."""

    registry: SubsystemRegistry
    conflicts: ConflictRelation
    construction: Process
    production: Process

    @property
    def processes(self) -> Tuple[Process, Process]:
        return (self.construction, self.production)


def run_cim(fail_test: bool = False, paranoid: bool = True):
    """Run the Figure-1 scenario end to end; returns (scenario, scheduler).

    The production process is submitted once the construction process
    has entered the BOM into the PDM system (the BOM is production's
    trigger), so the two processes overlap exactly as in Figure 1: the
    conflicting PDM activities are ordered write-before-read, and the
    production pivot is deferred behind the active construction process
    (Lemma 1).  With ``fail_test=True`` the test activity fails, the
    construction process compensates the PDM entry and archives the
    drawing instead — and the scheduler *cascades* the abort into the
    production process, whose BOM has been invalidated (§2.2).
    """
    from repro.core.scheduler import (  # local import: avoid cycle
        SchedulerRules,
        TransactionalProcessScheduler,
    )
    from repro.subsystems.failures import FailurePlan, NoFailures

    scenario = build_cim_scenario()
    scheduler = TransactionalProcessScheduler(
        scenario.registry,
        scenario.conflicts,
        rules=SchedulerRules(paranoid=paranoid),
    )
    failures = (
        FailurePlan.fail_once(["test_part"]) if fail_test else NoFailures()
    )
    scheduler.submit(scenario.construction, failures=failures)
    # Drive construction until the BOM exists, then release production.
    guard = 0
    while scenario.registry.get("pdm").store.get("bom") is None:
        guard += 1
        if guard > 100:
            raise RuntimeError("construction never produced a BOM")
        scheduler.step_round()
    scheduler.submit(scenario.production)
    # Production reads the (now valid) BOM before construction goes on —
    # the Figure-1 interleaving whose recovery §2.2 analyses.
    scheduler.step("Production")
    scheduler.run()
    return scenario, scheduler


def build_cim_scenario() -> CimScenario:
    """Build the five CIM subsystems with real services and state.

    Subsystems (paper Figure 1): CAD, PDM, test database, technical
    documentation repository, business application / program repository
    / product DBMS (folded into ``erp``) and the production floor.
    """
    cad = Subsystem("cad", initial_state={"drawings": [], "approved": 0})
    cad.register(append_service("cad_design", "drawings", item_param="part"))
    cad.register(
        Service(
            "approve_design",
            lambda context: context.increment("approved"),
            reads=frozenset({"approved"}),
            writes=frozenset({"approved"}),
        )
    )

    pdm = Subsystem("pdm", initial_state={"bom": None, "bom_version": 0})

    def write_bom(context):
        context.write("bom", context.param("part", "part-1"))
        return context.increment("bom_version")

    def unwrite_bom(context):
        context.write("bom", None)
        return context.increment("bom_version")

    def read_bom(context):
        return context.read("bom")

    pdm.register(
        ServicePair(
            Service(
                "pdm_write_bom",
                write_bom,
                reads=frozenset({"bom", "bom_version"}),
                writes=frozenset({"bom", "bom_version"}),
            ),
            Service(
                "pdm_write_bom~inv",
                unwrite_bom,
                reads=frozenset({"bom", "bom_version"}),
                writes=frozenset({"bom", "bom_version"}),
            ),
        )
    )
    # Reading the BOM is compensatable with a no-op inverse: undoing a
    # read means invalidating what was derived from it, which is what
    # the *cascading abort* of the production process models.
    pdm.register(
        ServicePair(
            Service(
                "pdm_read_bom", read_bom, reads=frozenset({"bom"})
            ),
            Service("pdm_read_bom~inv", lambda context: None),
        )
    )

    testdb = Subsystem("testdb", initial_state={"tests_run": 0})
    testdb.register(
        Service(
            "test_part",
            lambda context: context.increment("tests_run"),
            reads=frozenset({"tests_run"}),
            writes=frozenset({"tests_run"}),
        )
    )

    docs = Subsystem("docs", initial_state={"documents": []})
    docs.register(append_service("write_tech_doc", "documents", item_param="part").forward)
    docs.register(append_service("archive_drawing", "documents", item_param="part").forward)

    erp = Subsystem(
        "erp",
        initial_state={"orders": [], "scheduled": [], "stock": 0},
    )
    erp.register(append_service("order_material", "orders", item_param="part"))
    erp.register(append_service("schedule_production", "scheduled", item_param="part"))
    erp.register(counter_service("update_stock", "stock").forward)

    floor = Subsystem("floor", initial_state={"produced": 0})
    floor.register(
        Service(
            "produce_parts",
            lambda context: context.increment("produced"),
            reads=frozenset({"produced"}),
            writes=frozenset({"produced"}),
        )
    )

    registry = SubsystemRegistry([cad, pdm, testdb, docs, erp, floor])
    # The semantic conflict between the two PDM activities (write vs
    # read of the BOM) falls out of their access sets.
    conflicts = registry.semantic_conflicts()
    return CimScenario(
        registry=registry,
        conflicts=conflicts,
        construction=construction_process(),
        production=production_process(),
    )
