"""Travel booking — the classic flex-transaction scenario.

The flex transaction literature the paper builds on (ELLR90, MRSK92,
ZNBB94) motivates its model with travel booking: reserve parts of a
trip across independent providers, with alternatives when a preferred
provider fails.  Our rendition:

* reserve a flight with carrier A (compensatable — cancellable), or,
  if A has no seats, with carrier B (the alternative branch — also
  compensatable, followed by its own ticketing pivot and retriable
  confirmation);
* **ticketing** is the pivot: issuing the ticket is non-compensatable
  (rebooking fees are not a compensation);
* hotel and notification steps are retriable.

Two trips compete for the last seats of the same flight, which is how
the scenario exercises semantic conflicts (seat-counter services
commute until the capacity boundary, where reservation fails and the
alternative kicks in).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.conflict import ConflictRelation
from repro.core.flex import build_process, choice, comp, pivot, retr, seq
from repro.core.process import Process
from repro.errors import TransactionAborted
from repro.subsystems.services import Service, ServicePair, append_service
from repro.subsystems.subsystem import Subsystem, SubsystemRegistry

__all__ = ["TravelScenario", "build_travel_scenario", "trip_process"]


def trip_process(trip_id: str) -> Process:
    """One trip: carrier A preferred, carrier B as the alternative."""
    return build_process(
        f"Trip-{trip_id}",
        seq(
            comp(
                "reserve_a",
                service="reserve_carrier_a",
                subsystem="carrier_a",
            ),
            pivot("ticket_a", service="ticket_carrier_a", subsystem="carrier_a"),
            choice(
                seq(
                    comp(
                        "hotel",
                        service="book_hotel",
                        subsystem="hotel",
                        params={"item": trip_id},
                    ),
                    pivot("hotel_guarantee", service="guarantee_hotel", subsystem="hotel"),
                    retr(
                        "itinerary",
                        service="send_itinerary",
                        subsystem="notify",
                        params={"item": trip_id},
                    ),
                ),
                seq(
                    retr(
                        "notify_no_hotel",
                        service="notify_no_hotel",
                        subsystem="notify",
                        params={"item": trip_id},
                    ),
                ),
            ),
        ),
    )


@dataclass
class TravelScenario:
    registry: SubsystemRegistry
    conflicts: ConflictRelation
    trips: List[Process]


def _seat_services(subsystem: Subsystem, name: str, key: str) -> None:
    """Register reserve/release seat-counter services with capacity."""

    def reserve(context):
        remaining = context.increment(key, -1)
        if remaining < 0:  # type: ignore[operator]
            raise TransactionAborted(f"no seats left on {key}")
        return remaining

    def release(context):
        return context.increment(key, 1)

    keys = frozenset({key})
    subsystem.register(
        ServicePair(
            Service(f"reserve_{name}", reserve, reads=keys, writes=keys),
            Service(f"reserve_{name}~inv", release, reads=keys, writes=keys),
        )
    )
    subsystem.register(
        Service(
            f"ticket_{name}",
            lambda context: context.increment("tickets"),
            reads=frozenset({"tickets"}),
            writes=frozenset({"tickets"}),
        )
    )


def build_travel_scenario(trips: int = 2, seats: int = 1) -> TravelScenario:
    """Build providers with ``seats`` capacity and ``trips`` processes.

    With ``seats=1`` and two trips, exactly one trip gets carrier A and
    conflict handling plus alternatives do the rest.
    """
    carrier_a = Subsystem("carrier_a", initial_state={"seats": seats, "tickets": 0})
    _seat_services(carrier_a, "carrier_a", "seats")

    hotel = Subsystem("hotel", initial_state={"rooms": [], "guaranteed": 0})
    hotel.register(append_service("book_hotel", "rooms"))
    hotel.register(
        Service(
            "guarantee_hotel",
            lambda context: context.increment("guaranteed"),
            reads=frozenset({"guaranteed"}),
            writes=frozenset({"guaranteed"}),
        )
    )

    notify = Subsystem(
        "notify", initial_state={"sent": []}
    )
    notify.register(append_service("send_itinerary", "sent").forward)
    notify.register(append_service("notify_no_hotel", "sent").forward)

    registry = SubsystemRegistry([carrier_a, hotel, notify])
    processes = [trip_process(str(index + 1)) for index in range(trips)]
    return TravelScenario(
        registry=registry,
        conflicts=registry.semantic_conflicts(),
        trips=processes,
    )
