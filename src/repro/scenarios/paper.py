"""The paper's own processes, conflicts and schedules (Figures 2-9).

This module is the single source of truth for every worked example the
paper contains; the paper test-suite and the figure benchmarks both
import from here.

* ``process_p1()`` — Figure 2's process ``P_1``:
  ``a11^c ≪ a12^p``, then alternatives ``(a13^c ≪ a14^p) ◁ (a15^r ≪ a16^r)``.
* ``process_p2()`` — ``P_2`` of Figure 4:
  ``a21^c ≪ a22^c ≪ a23^p ≪ a24^r ≪ a25^r``.
* ``process_p3()`` — ``P_3`` of Figure 9:
  ``a31^c ≪ a32^p ≪ a33^r`` with ``a31`` conflicting ``a11``.
* ``paper_conflicts()`` — Example 3's conflict pairs
  ``(a11,a21)``, ``(a12,a24)``, ``(a15,a25)``.
* schedule builders for Figure 4(a) ``S``, Figure 4(b) ``S'``,
  Figure 7 ``S''`` and Figure 9 ``S*``, each with the prefix positions
  ``t_1``/``t_2`` the examples refer to.

Conventions: every activity is its own service (``s11`` for ``a11``
etc.), matching the paper's abstract treatment where conflicts are
declared directly between activities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.conflict import ExplicitConflicts
from repro.core.flex import build_process, choice, comp, pivot, retr, seq
from repro.core.process import Process
from repro.core.schedule import ProcessSchedule

__all__ = [
    "process_p1",
    "process_p2",
    "process_p3",
    "paper_conflicts",
    "figure9_conflicts",
    "MarkedSchedule",
    "schedule_fig4a",
    "schedule_fig4b",
    "schedule_fig7",
    "schedule_fig9",
    "schedule_fig9_incorrect",
]


def process_p1() -> Process:
    """Process ``P_1`` of Figure 2 (four valid executions, Example 1)."""
    return build_process(
        "P1",
        seq(
            comp("a11", service="s11"),
            pivot("a12", service="s12"),
            choice(
                seq(comp("a13", service="s13"), pivot("a14", service="s14")),
                seq(retr("a15", service="s15"), retr("a16", service="s16")),
            ),
        ),
    )


def process_p2() -> Process:
    """Process ``P_2`` of Figure 4."""
    return build_process(
        "P2",
        seq(
            comp("a21", service="s21"),
            comp("a22", service="s22"),
            pivot("a23", service="s23"),
            retr("a24", service="s24"),
            retr("a25", service="s25"),
        ),
    )


def process_p3() -> Process:
    """Process ``P_3`` of Figure 9 (quasi-commit example)."""
    return build_process(
        "P3",
        seq(
            comp("a31", service="s31"),
            pivot("a32", service="s32"),
            retr("a33", service="s33"),
        ),
    )


def paper_conflicts() -> ExplicitConflicts:
    """Example 3's conflicting pairs between ``P_1`` and ``P_2``."""
    return ExplicitConflicts(
        [("s11", "s21"), ("s12", "s24"), ("s15", "s25")]
    )


def figure9_conflicts() -> ExplicitConflicts:
    """Figure 9: only ``a11`` and ``a31`` conflict."""
    return ExplicitConflicts([("s11", "s31")])


@dataclass(frozen=True)
class MarkedSchedule:
    """A schedule with the prefix lengths the paper's examples mark."""

    schedule: ProcessSchedule
    #: Prefix length corresponding to the figure's time ``t_1``.
    t1: int
    #: Prefix length corresponding to the figure's time ``t_2``.
    t2: int

    def at_t1(self) -> ProcessSchedule:
        return self.schedule.prefix(self.t1)

    def at_t2(self) -> ProcessSchedule:
        return self.schedule.prefix(self.t2)


def schedule_fig4a() -> MarkedSchedule:
    """Figure 4(a): the serializable execution ``S`` of ``P_1 ∥ P_2``.

    At ``t_1`` process ``P_1`` has executed only ``a11`` while ``P_2``
    has progressed past its pivot (Example 8 analyses this prefix); at
    ``t_2`` the conflicting pairs are ordered ``a11 ≪ a21`` and
    ``a12 ≪ a24`` (Example 4).
    """
    schedule = ProcessSchedule([process_p1(), process_p2()], paper_conflicts())
    schedule.record("P1", "a11")
    schedule.record("P2", "a21")
    schedule.record("P2", "a22")
    schedule.record("P2", "a23")  # t1 reached: P2 in F-REC, P1 in B-REC
    schedule.record("P1", "a12")
    schedule.record("P1", "a13")
    schedule.record("P2", "a24")  # t2
    return MarkedSchedule(schedule, t1=4, t2=7)


def schedule_fig4b() -> MarkedSchedule:
    """Figure 4(b): the non-serializable execution ``S'`` (Example 3).

    Here ``a24`` executes *before* ``a12``, closing the cycle
    ``P_1 → P_2 → P_1`` through the pairs ``(a11,a21)`` and
    ``(a12,a24)``.
    """
    schedule = ProcessSchedule([process_p1(), process_p2()], paper_conflicts())
    schedule.record("P1", "a11")
    schedule.record("P2", "a21")
    schedule.record("P2", "a22")
    schedule.record("P2", "a23")
    schedule.record("P2", "a24")
    schedule.record("P1", "a12")
    schedule.record("P1", "a13")  # t2
    return MarkedSchedule(schedule, t1=4, t2=7)


def schedule_fig7() -> MarkedSchedule:
    """Figure 7: a prefix-reducible execution ``S''`` of ``P_1 ∥ P_2``.

    The conflicting activity ``a21`` is deferred until ``P_1``'s pivot
    ``a12`` committed, so every prefix completes into a reducible
    schedule (Examples 7 and 9).
    """
    schedule = ProcessSchedule([process_p1(), process_p2()], paper_conflicts())
    schedule.record("P1", "a11")
    schedule.record("P1", "a12")
    schedule.record("P2", "a21")
    schedule.record("P2", "a22")
    schedule.record("P1", "a13")
    schedule.record("P1", "a14")
    schedule.record("P2", "a23")
    schedule.record("P2", "a24")  # t1
    schedule.record("P2", "a25")
    schedule.record_commit("P1")
    schedule.record_commit("P2")
    return MarkedSchedule(schedule, t1=8, t2=11)


def schedule_fig9() -> MarkedSchedule:
    """Figure 9: exploiting the quasi-commit of ``a12`` (Example 10).

    ``a31`` conflicts with ``a11``, but executes only after ``P_1``'s
    pivot committed: ``P_1`` is in ``F-REC``, compensation of ``a11`` is
    no longer available, so no conflict cycle can arise through
    ``a11^{-1}`` — the interleaving is correct.
    """
    schedule = ProcessSchedule([process_p1(), process_p3()], figure9_conflicts())
    schedule.record("P1", "a11")
    schedule.record("P1", "a12")
    schedule.record("P3", "a31")  # t1: correct despite the conflict
    return MarkedSchedule(schedule, t1=3, t2=3)


def schedule_fig9_incorrect() -> MarkedSchedule:
    """The Figure 9 interleaving *without* the quasi-commit.

    Executing ``a31`` (and ``P_3``'s pivot) before ``a12`` commits makes
    the prefix irreducible: completing it must compensate ``a11`` while
    ``P_3`` is already forward-recoverable — Example 8's pattern.
    """
    schedule = ProcessSchedule([process_p1(), process_p3()], figure9_conflicts())
    schedule.record("P1", "a11")
    schedule.record("P3", "a31")
    schedule.record("P3", "a32")  # t1: P3 in F-REC, P1 still in B-REC
    return MarkedSchedule(schedule, t1=3, t2=3)
