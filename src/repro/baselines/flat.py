"""Flat-ACID baseline: all-or-nothing processes without alternatives.

Models the classical transaction disciplines (and process models like
ConTracts/CREW that assume every step invertible) the paper generalises:
a process is a monolithic unit of work — any activity failure rolls the
*whole* process back and restarts it from scratch.  Alternative
execution paths and forward recovery are ignored; the flexible
atomicity of guaranteed termination is exactly what this baseline
lacks.

The scheduler interleaves processes with the same conflict-locking as
:class:`~repro.baselines.locking.LockingScheduler` (so comparisons
isolate the *recovery* discipline, not the concurrency control), but on
a non-retriable failure it:

1. compensates every committed compensatable activity — a flat rollback
   that pretends pivots never happened: a failure after a committed
   pivot leaves the pivot's effects behind, which the offline checkers
   then flag as correctness violations;
2. restarts the process as a fresh instance, up to ``max_restarts``.

Benchmark X2 measures the cost: wasted work and restarts climb with the
failure rate, while the flex scheduler routes failures to cheap
alternatives (and benchmark X6 shows the violations).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.locking import LockingScheduler
from repro.core.instance import ActionType, InstanceStatus, ProcessInstance
from repro.core.schedule import ProcessSchedule
from repro.errors import SchedulerError

__all__ = ["FlatScheduler"]


class FlatScheduler(LockingScheduler):
    """All-or-nothing execution with restart-on-failure."""

    name = "flat"

    def __init__(self, *args, max_restarts: int = 10, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._max_restarts = max_restarts
        #: processes rolled back by a failure, due for a restart.
        self._restart_due: Dict[str, bool] = {}

    def _step_one(self, managed) -> bool:
        action = managed.instance.next_action()
        if action.type is ActionType.FINISHED:
            return self._finish_one(managed)
        assert action.activity is not None
        definition = managed.instance.definition(action.activity)

        if action.type is ActionType.INVOKE:
            service = definition.service
            assert service is not None
            blocker = self._lock_conflicting(managed.process_id, service)
            if blocker is not None:
                self.stats.deferred += 1
                return False
            before = len(managed.instance.trace())
            progressed = self._execute(managed, action)
            if progressed:
                trace = managed.instance.trace()
                failed = (
                    len(trace) > before and trace[-1].kind.name == "FAILED"
                )
                if failed and not definition.kind.is_retriable:
                    # Flat semantics: no alternatives — convert the
                    # failure into a whole-process rollback + restart.
                    self._force_flat_rollback(managed)
            return progressed
        # A compensation (part of a flat rollback).
        return self._execute(managed, action)

    def _finish_one(self, managed) -> bool:
        self._release(managed.process_id)
        restart = (
            managed.instance.status is InstanceStatus.ABORTED
            and self._restart_due.pop(managed.process_id, False)
            and managed.restarts < self._max_restarts
        )
        self._restart_due.pop(managed.process_id, None)
        self._terminate(managed)
        if not managed.committed:
            self.stats.aborts += 1
        if restart:
            # The restart is a fresh instance under a fresh id: the
            # aborted attempt stays in the history as its own process.
            self.stats.restarts += 1
            new_id = f"{managed.process_id}~r{managed.restarts + 1}"
            fresh = self.submit(
                managed.template,
                instance_id=new_id,
                failures=managed.failures,
            )
            self.managed(fresh).restarts = managed.restarts + 1
        return True

    def _force_flat_rollback(self, managed) -> None:
        """Roll the whole process back, ignoring committed pivots.

        ``hardened=frozenset()`` makes the completion pretend no
        non-compensatable activity committed: only compensatable
        activities are compensated, and any committed pivot's effects
        are silently left behind — the flat baseline's defect.
        """
        if not managed.instance.status.is_terminal:
            managed.instance.request_abort(hardened=frozenset())
            self._restart_due[managed.process_id] = True

    def _on_stall(self) -> None:
        victims = [
            managed
            for managed in self._managed.values()
            if not managed.terminated and not managed.instance.status.is_terminal
        ]
        if not victims:
            raise SchedulerError("flat baseline stalled")
        victim = min(
            victims,
            key=lambda managed: len(managed.instance.committed_sequence()),
        )
        # flat rollback pretends everything is compensatable (B-REC), so
        # the completion only touches services the victim already holds:
        # locks are kept until termination, preserving 2PL.
        victim.instance.request_abort(hardened=frozenset())
        self._restart_due[victim.process_id] = True
        self.stats.aborts += 1
