"""Concurrency-control-only baseline: conflict locking over activities.

Represents the line of work the paper contrasts itself with — analysing
"concurrency control without considering recovery" (§1, [AAHD97]).  The
scheduler serialises processes correctly by acquiring *conflict locks*
at the service granularity and holding them until process termination
(strict two-phase locking lifted to processes), but it is oblivious to
termination guarantees: pivot and retriable activities commit
immediately, compensations run whenever the instance asks for them.

Consequences the benchmarks demonstrate:

* histories stay serializable as long as no recovery interferes —
  concurrency control alone is fine while nothing aborts;
* a 2PL deadlock whose only victims are *forward-recoverable* cannot be
  resolved within the lock discipline: the victim's retriable
  completion needs new locks, so the recovery-oblivious baseline runs
  it unlocked and may lose serializability even failure-free;
* under failures, histories additionally violate PRED/Proc-REC (e.g. a
  process compensates an activity another process already depends on).
  The offline checkers count all of this against the baseline in X2/X6
  — it is precisely the paper's point that concurrency control and
  recovery must be solved together.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.baselines.base import BaselineProcess, BaselineScheduler
from repro.core.instance import ActionType
from repro.errors import SchedulerError

__all__ = ["LockingScheduler"]


class LockingScheduler(BaselineScheduler):
    """Strict 2PL at the process level, recovery-oblivious."""

    name = "locking"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: process id -> services it has conflict-locked (until the end)
        self._owned: Dict[str, Set[str]] = {}

    def _lock_conflicting(self, pid: str, service: str) -> Optional[str]:
        """Try to lock ``service`` for ``pid``; returns a blocker or None.

        Two services need mutual exclusion iff they conflict; a request
        checks every held service of every other live process.
        """
        for owner, services in self._owned.items():
            if owner == pid:
                continue
            for held in services:
                if self.conflicts.conflicts(held, service):
                    return owner
        self._owned.setdefault(pid, set()).add(service)
        return None

    def _release(self, pid: str) -> None:
        self._owned.pop(pid, None)

    def _step_one(self, managed: BaselineProcess) -> bool:
        action = managed.instance.next_action()
        if action.type is ActionType.FINISHED:
            self._release(managed.process_id)
            self._terminate(managed)
            if not managed.committed:
                self.stats.aborts += 1
            return True
        assert action.activity is not None
        definition = managed.instance.definition(action.activity)
        service = definition.service
        assert service is not None
        blocker = self._lock_conflicting(managed.process_id, service)
        if blocker is not None:
            self.stats.deferred += 1
            return False
        return self._execute(managed, action)

    def _on_stall(self) -> None:
        # 2PL deadlock: abort a blocked process.  Backward-recoverable
        # victims are preferred: their completion only compensates
        # services they already hold locks on, so the deadlock resolves
        # without breaking two-phase locking.  A forward-recoverable
        # victim's completion needs *new* locks the baseline cannot
        # grant two-phase; recovery-oblivious as it is, it releases the
        # victim's locks and lets the forward recovery run unlocked —
        # the correctness defect benchmarks X2/X6 measure.
        from repro.core.instance import RecoveryState

        victims = [
            managed
            for managed in self._managed.values()
            if not managed.terminated
            and not managed.instance.status.is_terminal
        ]
        if not victims:
            raise SchedulerError("locking baseline stalled")
        backward = [
            managed
            for managed in victims
            if managed.instance.recovery_state() is RecoveryState.B_REC
        ]
        pool = backward or victims
        victim = min(
            pool,
            key=lambda managed: len(managed.instance.committed_sequence()),
        )
        victim.instance.request_abort()
        if not backward:
            # forward recovery outside the lock discipline (the defect)
            self._release(victim.process_id)
        self.stats.aborts += 1
