"""Shared machinery for baseline schedulers.

The benchmark suite (X2) compares the paper's PRED scheduler against
four classical disciplines:

* serial execution (one process at a time),
* conflict-locking without recovery awareness (concurrency control
  only, as in workflow-concurrency work the paper cites),
* flat-ACID execution (no alternatives: any failure aborts the whole
  process, which is then restarted),
* optimistic execution with commit-time validation.

All baselines drive the same :class:`~repro.core.instance.ProcessInstance`
state machines against the same subsystems and produce the same
:class:`~repro.core.schedule.ProcessSchedule` histories, so the offline
checkers (serializability, Proc-REC, PRED) can grade every discipline on
equal footing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.activity import ActivityDef, ActivityId, Direction
from repro.core.conflict import ConflictRelation, NoConflicts, UnionConflicts
from repro.core.instance import Action, ActionType, InstanceStatus, ProcessInstance
from repro.core.process import Process
from repro.core.schedule import (
    AbortEvent,
    ActivityEvent,
    CommitEvent,
    ProcessSchedule,
)
from repro.errors import SchedulerError, TransactionAborted, UnknownProcessError
from repro.subsystems.failures import FailurePolicy, NoFailures
from repro.subsystems.resource import WouldBlock
from repro.subsystems.services import noop_service
from repro.subsystems.subsystem import Subsystem, SubsystemRegistry

__all__ = ["BaselineStats", "BaselineProcess", "BaselineScheduler"]


@dataclass
class BaselineStats:
    """Counters every baseline reports for the comparison tables."""

    dispatched: int = 0
    deferred: int = 0
    aborts: int = 0
    restarts: int = 0
    violations_detected: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "dispatched": self.dispatched,
            "deferred": self.deferred,
            "aborts": self.aborts,
            "restarts": self.restarts,
            "violations_detected": self.violations_detected,
        }


@dataclass
class BaselineProcess:
    """Per-instance state shared by all baselines."""

    instance: ProcessInstance
    failures: FailurePolicy
    template: Process
    terminated: bool = False
    committed: bool = False
    restarts: int = 0

    @property
    def process_id(self) -> str:
        return self.instance.instance_id


class BaselineScheduler:
    """Common driver: instance table, subsystem execution, history."""

    name = "baseline"
    _instance_ids = itertools.count(1)

    def __init__(
        self,
        registry: Optional[SubsystemRegistry] = None,
        conflicts: Optional[ConflictRelation] = None,
        use_semantic_conflicts: bool = True,
        auto_provision: bool = True,
        max_rounds: int = 100_000,
    ) -> None:
        self.registry = registry if registry is not None else SubsystemRegistry()
        explicit = conflicts if conflicts is not None else NoConflicts()
        if use_semantic_conflicts:
            self.conflicts: ConflictRelation = UnionConflicts(
                (explicit, self.registry.semantic_conflicts())
            )
        else:
            self.conflicts = explicit
        self._auto_provision = auto_provision
        self._max_rounds = max_rounds
        self._managed: Dict[str, BaselineProcess] = {}
        self._events: List[object] = []
        self.stats = BaselineStats()

    # -- submission ------------------------------------------------------

    def submit(
        self,
        process: Process,
        instance_id: Optional[str] = None,
        failures: Optional[FailurePolicy] = None,
    ) -> str:
        identifier = instance_id or (
            f"{process.process_id}#{next(self._instance_ids)}"
            if process.process_id in self._managed
            else process.process_id
        )
        if identifier in self._managed:
            raise SchedulerError(f"instance id {identifier!r} already in use")
        if self._auto_provision:
            self._provision(process)
        process = process.renamed(identifier)
        self._managed[identifier] = BaselineProcess(
            instance=ProcessInstance(process, instance_id=identifier),
            failures=failures or NoFailures(),
            template=process,
        )
        return identifier

    def _provision(self, process: Process) -> None:
        for definition in process.activities():
            subsystem = self._subsystem_for(definition, create=True)
            service = definition.service
            assert service is not None
            if not subsystem.provides(service):
                subsystem.register(noop_service(service))
            if definition.is_compensatable:
                inverse = definition.compensation_service
                assert inverse is not None
                if not subsystem.provides(inverse):
                    subsystem.register(noop_service(inverse))

    def _subsystem_for(
        self, definition: ActivityDef, create: bool = False
    ) -> Subsystem:
        name = definition.subsystem
        if name in self.registry:
            return self.registry.get(name)
        service = definition.service
        assert service is not None
        for subsystem in self.registry.subsystems():
            if subsystem.provides(service):
                return subsystem
        if create:
            return self.registry.provision(name)
        raise SchedulerError(
            f"no subsystem for activity {definition.name!r}"
        )

    def managed(self, instance_id: str) -> BaselineProcess:
        try:
            return self._managed[instance_id]
        except KeyError:
            raise UnknownProcessError(
                f"no managed process {instance_id!r}"
            ) from None

    # -- execution helpers --------------------------------------------------

    def _execute(self, managed: BaselineProcess, action: Action) -> bool:
        """Run one instance action against its subsystem.

        Returns ``True`` on progress; feeds outcomes into the instance.
        Baselines commit every local transaction immediately — none of
        them implements deferred commits (that is the PRED scheduler's
        distinguishing feature).
        """
        assert action.activity is not None
        definition = managed.instance.definition(action.activity)
        subsystem = self._subsystem_for(definition)
        if action.type is ActionType.COMPENSATE:
            service = definition.compensation_service
            direction = Direction.COMPENSATION
        else:
            service = definition.service
            direction = Direction.FORWARD
        assert service is not None
        try:
            subsystem.invoke(
                service,
                params=definition.params,
                hold=False,
                attempt=action.attempt,
                failures=managed.failures,
            )
        except WouldBlock:
            self.stats.deferred += 1
            return False
        except TransactionAborted:
            managed.instance.on_failed(action.activity)
            return True
        self._record(managed, action.activity, direction, definition)
        managed.instance.on_committed(action.activity)
        self.stats.dispatched += 1
        return True

    def _record(
        self,
        managed: BaselineProcess,
        activity_name: str,
        direction: Direction,
        definition: ActivityDef,
    ) -> None:
        service = (
            definition.compensation_service
            if direction is Direction.COMPENSATION
            else definition.service
        )
        assert service is not None
        self._events.append(
            ActivityEvent(
                activity=ActivityId(
                    managed.process_id, activity_name, direction
                ),
                service=service,
                conflict_service=definition.service,  # type: ignore[arg-type]
                kind=definition.kind,
                effect_free=definition.effect_free,
            )
        )

    def _terminate(self, managed: BaselineProcess) -> None:
        managed.terminated = True
        if managed.instance.status is InstanceStatus.COMMITTED:
            managed.committed = True
            self._events.append(CommitEvent(managed.process_id))
        else:
            self._events.append(AbortEvent(managed.process_id))

    # -- history ---------------------------------------------------------------

    def history(self) -> ProcessSchedule:
        schedule = ProcessSchedule(
            (managed.template for managed in self._managed.values()),
            self.conflicts,
        )
        for event in self._events:
            schedule.append(event)  # type: ignore[arg-type]
        return schedule

    def all_terminated(self) -> bool:
        return all(managed.terminated for managed in self._managed.values())

    def instance_ids(self) -> List[str]:
        return list(self._managed)

    def is_terminated(self, instance_id: str) -> bool:
        return self.managed(instance_id).terminated

    # -- timeline access (used by the discrete-event simulation) -------------------

    def timeline_length(self) -> int:
        return len(self._events)

    def timeline_event(self, index: int):
        return self._events[index]

    # -- the scheduling loop ---------------------------------------------------------

    def _step_one(self, managed: BaselineProcess) -> bool:
        """Advance one instance by one action; baseline-specific."""
        raise NotImplementedError

    def _on_stall(self) -> None:
        """Called when a full round made no progress; baseline-specific."""
        raise SchedulerError(f"{self.name} baseline stalled")

    def step_instance(self, instance_id: str) -> bool:
        """Step one instance (the simulation's entry point)."""
        managed = self.managed(instance_id)
        if managed.terminated:
            return False
        return self._step_one(managed)

    def resolve_stall(self) -> None:
        """Public stall hook for external drivers."""
        self._on_stall()

    def run(self) -> ProcessSchedule:
        rounds = 0
        while not self.all_terminated():
            rounds += 1
            if rounds > self._max_rounds:
                raise SchedulerError(
                    f"{self.name} baseline did not converge"
                )
            progressed = False
            for managed in list(self._managed.values()):
                if managed.terminated:
                    continue
                if self._step_one(managed):
                    progressed = True
            if not progressed:
                self._on_stall()
        return self.history()
