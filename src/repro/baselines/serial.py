"""Serial baseline: one process at a time behind a global lock.

The trivially correct discipline — every history is serial, hence
serializable, Proc-REC and PRED — at the cost of zero inter-process
parallelism.  Benchmark X1 uses it as the "time-to-market" baseline the
paper's §2.2 motivates parallel execution against; X2 uses it as the
throughput floor (or ceiling, under extreme conflict rates, since it
never aborts).
"""

from __future__ import annotations

from repro.baselines.base import BaselineProcess, BaselineScheduler
from repro.core.instance import ActionType
from repro.errors import SchedulerError

__all__ = ["SerialScheduler"]


class SerialScheduler(BaselineScheduler):
    """Runs each submitted process to termination before the next."""

    name = "serial"

    def _head(self) -> BaselineProcess:
        for managed in self._managed.values():
            if not managed.terminated:
                return managed
        raise SchedulerError("no runnable process")  # pragma: no cover

    def _step_one(self, managed: BaselineProcess) -> bool:
        # Only the oldest non-terminated process may run — global lock.
        if managed is not self._head():
            return False
        action = managed.instance.next_action()
        if action.type is ActionType.FINISHED:
            self._terminate(managed)
            if not managed.committed:
                self.stats.aborts += 1
            return True
        # Serial execution never blocks on locks (nothing else runs).
        return self._execute(managed, action)
