"""Optimistic baseline: run freely, validate at commit.

Processes execute without any admission control — every activity is
dispatched immediately.  When a process is ready to commit, the
scheduler validates that committing it keeps the committed projection of
the history conflict-serializable; a process whose commit would close a
serialization cycle is aborted instead (backward recovery when it is
still possible) and optionally restarted.

This is the classical optimistic concurrency control recipe lifted to
processes, and it exhibits the paper's core point: validation at commit
time comes *too late* for processes whose pivots have already committed
— such a process can neither commit (cycle) nor abort cleanly (no
inverse for the pivot), so the scheduler must count a correctness
violation (``stats.violations_detected``) and force it through.
Benchmark X2 charts how the violation and abort rates grow with the
conflict rate, against the PRED scheduler's zero violations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.baselines.base import BaselineProcess, BaselineScheduler
from repro.core.instance import ActionType, InstanceStatus, RecoveryState
from repro.core.schedule import CommitEvent, ProcessSchedule
from repro.errors import SchedulerError

__all__ = ["OptimisticScheduler"]


class OptimisticScheduler(BaselineScheduler):
    """Free execution with commit-time serializability validation."""

    name = "optimistic"

    def __init__(self, *args, max_restarts: int = 3, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._max_restarts = max_restarts

    def _step_one(self, managed: BaselineProcess) -> bool:
        action = managed.instance.next_action()
        if action.type is ActionType.FINISHED:
            self._validate_and_finish(managed)
            return True
        return self._execute(managed, action)

    def _validate_and_finish(self, managed: BaselineProcess) -> None:
        if managed.instance.status is not InstanceStatus.COMMITTED:
            self._terminate(managed)
            self.stats.aborts += 1
            return
        if self._commit_is_serializable(managed.process_id):
            self._terminate(managed)
            return
        # Validation failed: abort if backward recovery is still
        # possible, otherwise the process is stuck — a violation.
        self.stats.aborts += 1
        if managed.instance.recovery_state() is RecoveryState.B_REC:
            managed.instance.request_abort()
            if managed.restarts < self._max_restarts:
                managed.restarts += 1
                self.stats.restarts += 1
                # Drain the compensations now, then restart fresh.
                self._drain_abort(managed)
                self._terminate(managed)
                new_id = f"{managed.process_id}~r{managed.restarts}"
                fresh = self.submit(
                    managed.template,
                    instance_id=new_id,
                    failures=managed.failures,
                )
                self.managed(fresh).restarts = managed.restarts
                return
            self._drain_abort(managed)
            self._terminate(managed)
            return
        # Pivot already committed: neither commit nor clean abort is
        # correct.  Force the commit and record the violation — this is
        # the failure mode PRED scheduling prevents by construction.
        self.stats.violations_detected += 1
        self._terminate(managed)

    def _drain_abort(self, managed: BaselineProcess) -> None:
        guard = 0
        while not managed.instance.status.is_terminal:
            guard += 1
            if guard > self._max_rounds:  # pragma: no cover - safety net
                raise SchedulerError("abort drain did not converge")
            action = managed.instance.next_action()
            if action.type is ActionType.FINISHED:
                break
            self._execute(managed, action)

    def _commit_is_serializable(self, pid: str) -> bool:
        """Would committing ``pid`` keep the committed projection acyclic?"""
        history = self.history()
        history.append(CommitEvent(pid))
        committed = history.committed_processes()
        graph = history.serialization_graph()
        # Restrict the graph to committed processes and check for a
        # cycle through ``pid``.
        seen: Set[str] = set()
        stack = [
            target for target in graph.get(pid, ()) if target in committed
        ]
        while stack:
            current = stack.pop()
            if current == pid:
                return False
            if current in seen:
                continue
            seen.add(current)
            stack.extend(
                target
                for target in graph.get(current, ())
                if target in committed
            )
        return True
