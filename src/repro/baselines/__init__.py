"""Baseline schedulers for the comparison benchmarks (X2, X6)."""

from repro.baselines.base import BaselineProcess, BaselineScheduler, BaselineStats
from repro.baselines.flat import FlatScheduler
from repro.baselines.locking import LockingScheduler
from repro.baselines.optimistic import OptimisticScheduler
from repro.baselines.serial import SerialScheduler
