"""Analysis utilities: graphs, ASCII visualisation, report tables."""

from repro.analysis.graphs import (
    activity_conflict_pairs,
    conflict_graph,
    find_cycle,
    reachable,
    topological_order,
    transitive_closure,
)
from repro.analysis.report import format_table, print_table
from repro.analysis.viz import render_conflicts, render_process, render_schedule
from repro.analysis.dot import (
    process_to_dot,
    schedule_to_dot,
    serialization_graph_to_dot,
)
