"""Graphviz (DOT) exporters for processes and schedules.

Complements the ASCII renderers with machine-consumable graph exports:

* :func:`process_to_dot` — the process graph in the visual language of
  the paper's Figure 2: solid edges for the precedence order ``≪``,
  dashed edges for the preference order ``◁``, node shapes per
  termination guarantee;
* :func:`schedule_to_dot` — one subgraph lane per process with the
  conflict arcs between lanes (the dashed arcs of Figure 4);
* :func:`serialization_graph_to_dot` — the process-level conflict graph
  whose acyclicity is serializability.

The output is plain DOT text; rendering requires graphviz, which is
deliberately not a dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.activity import ActivityKind
from repro.core.process import Process
from repro.core.schedule import ProcessSchedule

__all__ = ["process_to_dot", "schedule_to_dot", "serialization_graph_to_dot"]

_SHAPES = {
    ActivityKind.COMPENSATABLE: "ellipse",
    ActivityKind.PIVOT: "box",
    ActivityKind.RETRIABLE: "diamond",
}


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def process_to_dot(process: Process) -> str:
    """Render a process template as DOT (Figure-2 visual language)."""
    lines = [f"digraph {_quote(process.process_id)} {{", "  rankdir=LR;"]
    for name in process.activity_names:
        definition = process.activity(name)
        label = f"{name}^{definition.kind.symbol}"
        lines.append(
            f"  {_quote(name)} [label={_quote(label)} "
            f"shape={_SHAPES[definition.kind]}];"
        )
    for before, after in process.edges():
        lines.append(f"  {_quote(before)} -> {_quote(after)};")
    for source in process.preference_sources():
        branches = process.alternatives(source)
        for higher, lower in zip(branches, branches[1:]):
            lines.append(
                f"  {_quote(higher)} -> {_quote(lower)} "
                f"[style=dashed constraint=false "
                f"label={_quote('◁')}];"
            )
    lines.append("}")
    return "\n".join(lines)


def schedule_to_dot(schedule: ProcessSchedule) -> str:
    """Render a schedule: per-process lanes plus conflict arcs."""
    lines = ["digraph schedule {", "  rankdir=LR;"]
    lanes: Dict[str, List[str]] = {}
    node_ids: List[str] = []
    for position, event in schedule.activity_events():
        node = f"n{position}"
        node_ids.append(node)
        label = str(event.activity).split(".", 1)[1]
        lanes.setdefault(event.process_id, []).append(
            f"    {node} [label={_quote(label)}];"
        )
    for index, (process_id, nodes) in enumerate(sorted(lanes.items())):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f"    label={_quote(process_id)};")
        lines.extend(nodes)
        lines.append("  }")
    # intra-process order
    per_process: Dict[str, List[int]] = {}
    for position, event in schedule.activity_events():
        per_process.setdefault(event.process_id, []).append(position)
    for positions in per_process.values():
        for before, after in zip(positions, positions[1:]):
            lines.append(f"  n{before} -> n{after};")
    # conflict arcs (the dashed arcs of Figure 4)
    for i, left, j, right in schedule.conflicting_pairs():
        lines.append(
            f"  n{i} -> n{j} [style=dashed color=red constraint=false];"
        )
    lines.append("}")
    return "\n".join(lines)


def serialization_graph_to_dot(schedule: ProcessSchedule) -> str:
    """Render the process-level conflict graph (acyclic ⇔ serializable)."""
    graph = schedule.serialization_graph()
    lines = ["digraph serialization {"]
    for node in sorted(graph):
        lines.append(f"  {_quote(node)};")
    for source in sorted(graph):
        for target in sorted(graph[source]):
            lines.append(f"  {_quote(source)} -> {_quote(target)};")
    lines.append("}")
    return "\n".join(lines)
