"""Graph utilities over processes and schedules.

Thin, dependency-free helpers shared by the checkers, the viz module
and the tests: cycle detection, topological orders, reachability and
conflict-graph construction in explicit dictionary form (the heavier
lifting inside the schedulers uses specialised inline versions; these
are the reference implementations the property tests compare against).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.schedule import ActivityEvent, ProcessSchedule

__all__ = [
    "topological_order",
    "find_cycle",
    "reachable",
    "transitive_closure",
    "conflict_graph",
    "activity_conflict_pairs",
]

Graph = Dict[str, Set[str]]


def topological_order(graph: Graph) -> Optional[List[str]]:
    """Deterministic topological order, or ``None`` if cyclic."""
    nodes = set(graph)
    for targets in graph.values():
        nodes.update(targets)
    in_degree = {node: 0 for node in nodes}
    for source, targets in graph.items():
        for target in targets:
            in_degree[target] += 1
    frontier = sorted(node for node, degree in in_degree.items() if degree == 0)
    order: List[str] = []
    while frontier:
        current = frontier.pop(0)
        order.append(current)
        for target in sorted(graph.get(current, ())):
            in_degree[target] -= 1
            if in_degree[target] == 0:
                frontier.append(target)
        frontier.sort()
    if len(order) != len(nodes):
        return None
    return order


def find_cycle(graph: Graph) -> Optional[List[str]]:
    """Some elementary cycle as a node list, or ``None``."""
    visiting: Set[str] = set()
    visited: Set[str] = set()
    stack: List[str] = []

    def visit(node: str) -> Optional[List[str]]:
        visiting.add(node)
        stack.append(node)
        for target in sorted(graph.get(node, ())):
            if target in visiting:
                index = stack.index(target)
                return stack[index:] + [target]
            if target not in visited:
                found = visit(target)
                if found is not None:
                    return found
        visiting.discard(node)
        visited.add(node)
        stack.pop()
        return None

    for node in sorted(graph):
        if node not in visited:
            found = visit(node)
            if found is not None:
                return found
    return None


def reachable(graph: Graph, source: str) -> Set[str]:
    """All nodes reachable from ``source`` (exclusive of the source
    unless it lies on a cycle)."""
    seen: Set[str] = set()
    stack = list(graph.get(source, ()))
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(graph.get(current, ()))
    return seen


def transitive_closure(graph: Graph) -> Graph:
    """The reachability closure of a graph."""
    return {node: reachable(graph, node) for node in graph}


def conflict_graph(schedule: ProcessSchedule) -> Graph:
    """Process-level conflict graph of a schedule (reference version)."""
    graph: Graph = {}
    events = [event for _, event in schedule.activity_events()]
    for left_index in range(len(events)):
        left = events[left_index]
        graph.setdefault(left.process_id, set())
        for right_index in range(left_index + 1, len(events)):
            right = events[right_index]
            if left.process_id == right.process_id:
                continue
            if schedule.events_conflict(left, right):
                graph[left.process_id].add(right.process_id)
    return graph


def activity_conflict_pairs(
    schedule: ProcessSchedule,
) -> List[Tuple[ActivityEvent, ActivityEvent]]:
    """All ordered conflicting activity-event pairs of a schedule."""
    return [
        (left, right)
        for _, left, _, right in schedule.conflicting_pairs(
            inter_process_only=False
        )
    ]
