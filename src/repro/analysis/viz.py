"""ASCII rendering of processes and schedules.

Pure-text visualisation used by the examples and handy when debugging
schedules: processes render as indented structure trees (the flex
grammar), schedules as one swimlane per process with time flowing left
to right — the same visual language as the paper's figures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.flex import FlexActivity, FlexChoice, FlexSeq, parse_flex
from repro.core.process import Process
from repro.core.schedule import (
    AbortEvent,
    ActivityEvent,
    CommitEvent,
    GroupAbortEvent,
    ProcessSchedule,
)

__all__ = ["render_process", "render_schedule", "render_conflicts"]


def render_process(process: Process) -> str:
    """Render a process's flex structure as an indented tree.

    Example output for the paper's ``P_1``::

        Process P1
        └─ a11^c ≪ a12^p
           ├─ alternative 1: a13^c ≪ a14^p
           └─ alternative 2: a15^r ≪ a16^r
    """
    tree = parse_flex(process)
    lines = [f"Process {process.process_id}"]

    def chain_label(seq: FlexSeq) -> Tuple[str, Optional[FlexChoice]]:
        labels: List[str] = []
        for item in seq.items:
            if isinstance(item, FlexActivity):
                labels.append(f"{item.name}^{item.kind.symbol}")
            else:
                return (" ≪ ".join(labels), item)
        return (" ≪ ".join(labels), None)

    def walk(seq: FlexSeq, indent: str) -> None:
        label, choice_node = chain_label(seq)
        lines.append(f"{indent}└─ {label or '(empty)'}")
        if choice_node is None:
            return
        child_indent = indent + "   "
        for index, branch in enumerate(choice_node.branches):
            branch_label, nested = chain_label(branch)
            connector = "├─" if index < len(choice_node.branches) - 1 else "└─"
            lines.append(
                f"{child_indent}{connector} alternative {index + 1}: "
                f"{branch_label or '(empty)'}"
            )
            if nested is not None:
                walk_branch_tail(nested, child_indent + "   ")

    def walk_branch_tail(choice_node: FlexChoice, indent: str) -> None:
        for index, branch in enumerate(choice_node.branches):
            branch_label, nested = chain_label(branch)
            connector = "├─" if index < len(choice_node.branches) - 1 else "└─"
            lines.append(
                f"{indent}{connector} alternative {index + 1}: "
                f"{branch_label or '(empty)'}"
            )
            if nested is not None:
                walk_branch_tail(nested, indent + "   ")

    walk(tree, "")
    return "\n".join(lines)


def render_schedule(schedule: ProcessSchedule) -> str:
    """Render a schedule as swimlanes, one row per process.

    Example::

        P1 | a11          a12  a13
        P2 |      a21 a22           a24
           +------------------------------ time →
    """
    lanes: Dict[str, List[str]] = {}
    order: List[str] = []
    columns: List[Tuple[Optional[str], str]] = []
    for event in schedule.events:
        if isinstance(event, ActivityEvent):
            label = event.activity.activity_name + (
                "⁻¹" if event.is_compensation else ""
            )
            columns.append((event.process_id, label))
            if event.process_id not in lanes:
                lanes[event.process_id] = []
                order.append(event.process_id)
        elif isinstance(event, CommitEvent):
            columns.append((event.process_id, "C"))
            if event.process_id not in lanes:
                lanes[event.process_id] = []
                order.append(event.process_id)
        elif isinstance(event, AbortEvent):
            columns.append((event.process_id, "A"))
            if event.process_id not in lanes:
                lanes[event.process_id] = []
                order.append(event.process_id)
        elif isinstance(event, GroupAbortEvent):
            columns.append((None, f"A({','.join(event.process_ids)})"))

    widths = [max(len(label), 1) for _, label in columns]
    rows: Dict[str, List[str]] = {pid: [] for pid in order}
    group_row: List[str] = []
    for (pid, label), width in zip(columns, widths):
        for row_pid in order:
            cell = label if row_pid == pid else ""
            rows[row_pid].append(cell.ljust(width))
        group_row.append((label if pid is None else "").ljust(width))

    name_width = max((len(pid) for pid in order), default=2)
    lines = [
        f"{pid.ljust(name_width)} | " + " ".join(rows[pid]) for pid in order
    ]
    if any(cell.strip() for cell in group_row):
        lines.append(f"{'*'.ljust(name_width)} | " + " ".join(group_row))
    ruler = "-" * (sum(widths) + len(widths))
    lines.append(f"{' ' * name_width} +{ruler} time →")
    return "\n".join(lines)


def render_conflicts(schedule: ProcessSchedule) -> str:
    """List the ordered conflicting pairs of a schedule."""
    lines = []
    for _, left, _, right in schedule.conflicting_pairs():
        lines.append(f"{left} —✕— {right}")
    return "\n".join(lines) if lines else "(no conflicting pairs)"
