"""Plain-text tables for the benchmark harness.

Every benchmark prints the rows EXPERIMENTS.md records; this module
renders lists of dictionaries as aligned ASCII tables so the bench
output is directly comparable across runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["format_table", "print_table"]


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned ASCII table.

    Column order follows ``columns`` when given, else the key order of
    the first row.  Missing values render as ``-``.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    headers = list(columns) if columns else list(rows[0].keys())
    table = [[_cell(row.get(column)) for column in headers] for row in rows]
    widths = [
        max(len(header), *(len(line[index]) for line in table))
        for index, header in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(width) for header, width in zip(headers, widths))
    )
    lines.append("  ".join("-" * width for width in widths))
    for line in table:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        )
    return "\n".join(lines)


def print_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> None:
    """Print :func:`format_table` output (bench entry point)."""
    print()
    print(format_table(rows, columns=columns, title=title))
