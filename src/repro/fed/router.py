"""Shard routing by service footprint.

Processes are partitioned across scheduler shards by the services their
activities touch: every service has exactly one *owner* shard, and a
process is routed to the shard owning the majority of its footprint
(ties prefer the shard owning the first pivot — the non-compensatable
leg is the one worth keeping local to its coordinator).  A process
whose footprint spans several owners is *cross-shard*: its foreign legs
run through proxied subsystems and its pivot group commits through the
message-based cross-shard 2PC.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Set

from repro.core.activity import COMPENSATION_SUFFIX
from repro.core.process import Process

__all__ = ["ShardRouter"]


def _base(service: str) -> str:
    if service.endswith(COMPENSATION_SUFFIX):
        return service[: -len(COMPENSATION_SUFFIX)]
    return service


class ShardRouter:
    """Maps services to owner shards and processes to home shards."""

    def __init__(self, owners: Dict[str, str]) -> None:
        if not owners:
            raise ValueError("router needs at least one service owner")
        self._owners = dict(owners)
        self._shards: List[str] = sorted(set(owners.values()))

    @property
    def shard_ids(self) -> List[str]:
        return list(self._shards)

    def owner(self, service: str) -> str:
        base = _base(service)
        try:
            return self._owners[base]
        except KeyError:
            raise KeyError(f"service {base!r} has no owner shard") from None

    def owns(self, shard_id: str, service: str) -> bool:
        return self.owner(service) == shard_id

    def footprint(self, process: Process) -> Set[str]:
        """The set of shards a process's services touch."""
        return {
            self.owner(definition.service)
            for definition in process.activities()
            if definition.service is not None
        }

    def route(self, process: Process) -> str:
        """Home shard: majority service footprint, pivot breaks ties."""
        votes: Counter = Counter()
        pivot_owner: Optional[str] = None
        for definition in process.activities():
            if definition.service is None:
                continue
            owner = self.owner(definition.service)
            votes[owner] += 1
            if pivot_owner is None and not definition.kind.is_compensatable:
                pivot_owner = owner
        if not votes:
            return self._shards[0]
        best = max(votes.values())
        leaders = sorted(shard for shard, n in votes.items() if n == best)
        if pivot_owner in leaders:
            return pivot_owner
        return leaders[0]

    def is_cross_shard(self, process: Process) -> bool:
        return len(self.footprint(process)) > 1

    def services_owned_by(self, shard_id: str) -> Set[str]:
        return {
            service
            for service, owner in self._owners.items()
            if owner == shard_id
        }

    def partition(
        self, processes: Iterable[Process]
    ) -> Dict[str, List[Process]]:
        """Group processes by home shard (every shard gets an entry)."""
        groups: Dict[str, List[Process]] = {
            shard: [] for shard in self._shards
        }
        for process in processes:
            groups[self.route(process)].append(process)
        return groups
