"""Discrete-event driver for a scheduler federation.

One virtual clock, one event queue, N shards.  Each round the runner
pumps the message layer (edge-exchange delivery, decision resends, the
termination protocol), then offers every live shard's runnable
processes a dispatch chance subject to four gates:

* the **local strong-order gate** (same as the single-shard runner): a
  conflicting activity may not start while a conflicting one is in
  flight on the same shard;
* the **capacity gate**: at most ``capacity`` concurrently executing
  activities per shard — keeping per-shard capacity fixed is what makes
  the scaling sweep's aggregate throughput meaningful;
* ``fed-shard-unreachable``: an activity whose service is owned by a
  dead/partitioned/breaker-open shard is deferred, as is the commit
  step of a process with prepared legs on an unreachable shard;
* ``fed-foreign-conflict`` — the **start gate**: a process whose
  potential service footprint conflicts with foreign-homed work may
  not *start* while edge-exchange messages are still undelivered to
  this shard (the conservative barrier) or while the foreign view
  shows an active potentially-conflicting process.  Once started, a
  process runs without foreign interference — every potentially
  conflicting foreign process defers to it until it terminates, so
  conflicting cross-shard pairs are fully serialized and a shard
  crash-recovery's completions can never conflict with live foreign
  work.

Shard kills, recoveries and network partitions are scheduled as events
on the same queue; a genuine distributed stall is resolved by aborting
the cheapest federation-deferred process (cross-shard victim), falling
back to each shard's local stall resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.instance import ActionType
from repro.core.schedule import AbortEvent, ActivityEvent, CommitEvent
from repro.subsystems.recovery import scan_wal
from repro.errors import SchedulerError
from repro.fed.federation import Federation
from repro.obs.bus import tracing
from repro.obs.explain import DecisionRecord
from repro.sim.engine import EventQueue
from repro.sim.runner import DurationModel, constant_durations

__all__ = ["FederationRunMetrics", "FederationRunner"]


@dataclass
class _Flight:
    process_id: str
    conflict_service: str


@dataclass
class FederationRunMetrics:
    """What a federated run produced, for results and benchmarks."""

    makespan: float = 0.0
    committed: int = 0
    aborted: int = 0
    dispatched: int = 0
    fed_deferrals: int = 0
    cross_victims: int = 0
    iterations: int = 0
    #: (start, end) per terminated process.
    process_spans: Dict[str, Tuple[float, float]] = field(
        default_factory=dict
    )

    @property
    def throughput(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.committed / self.makespan


class FederationRunner:
    """Drives a :class:`~repro.fed.federation.Federation` in virtual time."""

    def __init__(
        self,
        federation: Federation,
        durations: Optional[DurationModel] = None,
        capacity: int = 4,
        kills: Sequence[Tuple[float, str, float]] = (),
        partitions: Sequence[Tuple[float, str, str, float]] = (),
        max_iterations: int = 1_000_000,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.fed = federation
        self.durations = durations or constant_durations()
        self.capacity = capacity
        self.queue = EventQueue(clock=federation.clock)  # type: ignore[arg-type]
        if federation.trace is not None:
            federation.trace.attach_clock(self.queue.clock)
        self._max_iterations = max_iterations
        self._flights: Dict[str, List[_Flight]] = {
            shard: [] for shard in federation.shards
        }
        self._busy: Dict[str, Set[str]] = {
            shard: set() for shard in federation.shards
        }
        self._cursor: Dict[str, int] = {
            shard: 0 for shard in federation.shards
        }
        #: Last federation-gate decision per process, to avoid
        #: re-recording (and re-tracing) an unchanged deferral every
        #: round of a long wait.
        self._last_gate: Dict[str, Tuple[str, Tuple[str, ...]]] = {}
        #: pids currently deferred by a federation gate (victim pool).
        self._fed_deferred: Set[str] = set()
        #: pids that passed the start gate (announced + stepped once).
        self._started: Set[str] = set()
        self._spans_start: Dict[str, float] = {}
        self.metrics = FederationRunMetrics()
        #: ``(time, shard, downtime)`` kill schedule.
        self._kills = list(kills)
        self._partitions = list(partitions)
        #: Optional per-round observer ``callback(now)`` invoked after
        #: the message pump and shard steps of every loop iteration —
        #: the nemesis monitor's hook for online invariant checks and
        #: state-triggered fault arming.  Exceptions propagate and stop
        #: the run.
        self.on_round = None

    # -- chaos schedule ------------------------------------------------

    def _schedule_chaos(self) -> None:
        for time, shard, downtime in self._kills:
            self.queue.schedule_at(time, self._kill_event(shard))
            self.queue.schedule_at(
                time + downtime, self._recover_event(shard)
            )
        for time, a, b, duration in self._partitions:
            until = time + duration
            self.queue.schedule_at(time, self._partition_event(a, b, until))
            # Wake the loop at heal time so blocked work resumes.
            self.queue.schedule_at(until, lambda: None)

    def _kill_event(self, shard_id: str):
        def fire() -> None:
            self.fed.kill(shard_id, self.queue.clock.now)
            # In-flight activities die with the shard: their events are
            # logged (they happened), but completions never fire.
            for flight in self._flights[shard_id]:
                self._busy[shard_id].discard(flight.process_id)
            self._flights[shard_id] = []
            self._busy[shard_id] = set()

        return fire

    def _recover_event(self, shard_id: str):
        def fire() -> None:
            self.fed.recover_shard(shard_id, self.queue.clock.now)
            shard = self.fed.shards[shard_id]
            self._cursor[shard_id] = shard.scheduler.timeline_length()
            self._busy[shard_id] = set()
            self._flights[shard_id] = []

        return fire

    def _partition_event(self, a: str, b: str, until: float):
        def fire() -> None:
            self.fed.network.policy.partition(a, b, until=until)

        return fire

    # -- gating --------------------------------------------------------

    def _local_gated(self, shard_id: str, pid: str) -> bool:
        """Strong temporal order within the shard (conflicting overlap)."""
        scheduler = self.fed.shards[shard_id].scheduler
        managed = scheduler.managed(pid)
        action = managed.instance.next_action()
        if action.type is ActionType.FINISHED or action.activity is None:
            return False
        definition = managed.instance.definition(action.activity)
        service = definition.service
        if service is None:
            return False
        relation = scheduler.conflicts
        for flight in self._flights[shard_id]:
            if flight.process_id == pid:
                continue
            if relation.conflicts(flight.conflict_service, service):
                return True
        return False

    def _fed_gate(
        self, shard_id: str, pid: str, now: float
    ) -> Optional[DecisionRecord]:
        """The cross-shard gates; a record means 'defer, this rule'."""
        fed = self.fed
        scheduler = fed.shards[shard_id].scheduler
        managed = scheduler.managed(pid)
        action = managed.instance.next_action()
        if action.type is ActionType.FINISHED or action.activity is None:
            # Commit step: hardening needs every prepared leg's owner
            # shard reachable — otherwise the 2PC would veto and abort a
            # process that only suffered a transient link failure.
            for prepared in managed.prepared:
                owner = fed._sub_owner.get(prepared.subsystem.name)
                if (
                    owner is not None
                    and owner != shard_id
                    and not fed.network.reachable(shard_id, owner, now)
                ):
                    return DecisionRecord(
                        kind="deferred",
                        rule="fed-shard-unreachable",
                        reason=(
                            f"prepared leg {prepared.txn_id!r} lives on "
                            f"unreachable shard {owner!r}; commit deferred"
                        ),
                        process=pid,
                        service=prepared.subsystem.name,
                        waiting_for=(owner,),
                    )
            return None
        definition = managed.instance.definition(action.activity)
        service = definition.service
        if service is not None:
            owner = fed.router.owner(service)
            if owner != shard_id and not fed.network.reachable(
                shard_id, owner, now
            ):
                return DecisionRecord(
                    kind="deferred",
                    rule="fed-shard-unreachable",
                    reason=(
                        f"service {service!r} is owned by shard "
                        f"{owner!r}, which is dead, partitioned away or "
                        f"breaker-open"
                    ),
                    process=pid,
                    activity=action.activity,
                    service=service,
                    waiting_for=(owner,),
                )
        if pid in self._started:
            # The start gate was passed: this process owns every
            # cross-shard conflict it can touch until it terminates
            # (potentially conflicting foreign processes defer to it),
            # so no further foreign-conflict checks apply — including
            # to its compensations.
            return None
        if not fed.has_conflict_potential(shard_id, pid):
            return None
        if fed.network.pending_inbound(shard_id) > 0:
            return DecisionRecord(
                kind="deferred",
                rule="fed-foreign-conflict",
                reason=(
                    f"process {pid!r} has foreign conflict potential and "
                    f"edge-exchange messages are still in flight to this "
                    f"shard; start deferred until the view is current"
                ),
                process=pid,
                activity=action.activity,
                service=service,
            )
        blockers = fed.foreign_blockers(
            shard_id, fed.process_footprint(pid)
        )
        if blockers:
            return DecisionRecord(
                kind="deferred",
                rule="fed-foreign-conflict",
                reason=(
                    f"potentially conflicting foreign processes are "
                    f"active: {', '.join(sorted(blockers))}; start "
                    f"deferred until they terminate"
                ),
                process=pid,
                activity=action.activity,
                service=service,
                waiting_for=tuple(sorted(blockers)),
            )
        return None

    def _record_gate(
        self, shard_id: str, pid: str, record: DecisionRecord
    ) -> None:
        scheduler = self.fed.shards[shard_id].scheduler
        signature = (record.rule, record.waiting_for)
        if self._last_gate.get(pid) == signature:
            return
        self._last_gate[pid] = signature
        scheduler.decisions[pid] = record
        scheduler.stats["deferred"] += 1
        self.metrics.fed_deferrals += 1
        bus = tracing(self.fed.trace)
        if bus is not None:
            bus.emit(
                "deferred",
                process=pid,
                activity=record.activity,
                rule=record.rule,
                reason=record.reason,
                service=record.service,
                waiting_for=list(record.waiting_for),
            )

    # -- stepping ------------------------------------------------------

    def _step_shard(self, shard_id: str, now: float) -> bool:
        shard = self.fed.shards[shard_id]
        if not shard.alive:
            return False
        scheduler = shard.scheduler
        progressed = False
        for pid in scheduler.instance_ids():
            if scheduler.is_terminated(pid) or pid in self._busy[shard_id]:
                continue
            if len(self._flights[shard_id]) >= self.capacity:
                break
            if self._local_gated(shard_id, pid):
                continue
            gate = self._fed_gate(shard_id, pid, now)
            if gate is not None:
                self._record_gate(shard_id, pid, gate)
                self._fed_deferred.add(pid)
                continue
            if pid not in self._started:
                # Commit to starting: announce the footprint *before*
                # the first step so peers stepped later this round see
                # the pending message (the barrier closes the
                # simultaneous-start race).
                self._started.add(pid)
                self.fed.announce_active(shard_id, pid, now)
            before = scheduler.timeline_length()
            if not scheduler.step_instance(pid):
                continue
            progressed = True
            self._fed_deferred.discard(pid)
            self._last_gate.pop(pid, None)
            self._spans_start.setdefault(pid, now)
            self._absorb(shard_id, before, now)
        return progressed

    def _absorb(self, shard_id: str, before: int, now: float) -> None:
        shard = self.fed.shards[shard_id]
        scheduler = shard.scheduler
        for index in range(before, scheduler.timeline_length()):
            event = scheduler.timeline_event(index)
            if isinstance(event, ActivityEvent):
                self.fed.stamp(
                    shard_id,
                    (
                        "event",
                        event.process_id,
                        event.activity.activity_name,
                        event.activity.direction.exponent,
                    ),
                )
                duration = self.durations(event.conflict_service)
                flight = _Flight(event.process_id, event.conflict_service)
                self._flights[shard_id].append(flight)
                self._busy[shard_id].add(event.process_id)
                self.queue.schedule(
                    duration, self._completion(shard_id, flight)
                )
                self.metrics.dispatched += 1
                bus = tracing(self.fed.trace)
                if bus is not None:
                    bus.emit(
                        "exec",
                        process=event.process_id,
                        activity=event.activity.activity_name,
                        service=event.service,
                        duration=duration,
                        direction=event.activity.direction.exponent,
                        shard=shard_id,
                    )
            elif isinstance(event, (CommitEvent, AbortEvent)):
                kind = (
                    "commit" if isinstance(event, CommitEvent) else "abort"
                )
                self.fed.stamp(shard_id, (kind, event.process_id))
                self.fed.announce_termination(event.process_id, now)
                start = self._spans_start.get(event.process_id, now)
                self.metrics.process_spans[event.process_id] = (start, now)
                if kind == "commit":
                    self.metrics.committed += 1
                else:
                    self.metrics.aborted += 1

    def _completion(self, shard_id: str, flight: _Flight):
        def on_finish() -> None:
            flights = self._flights[shard_id]
            if flight not in flights:
                return  # the shard was killed while this was in flight
            flights.remove(flight)
            if not any(
                other.process_id == flight.process_id for other in flights
            ):
                self._busy[shard_id].discard(flight.process_id)

        return on_finish

    # -- stall resolution ----------------------------------------------

    def _resolve_stall(self) -> None:
        """Nothing moved anywhere: sacrifice a cross-shard victim."""
        candidates: List[Tuple[int, str, str]] = []
        for shard_id, shard in self.fed.shards.items():
            if not shard.alive:
                continue
            scheduler = shard.scheduler
            for pid in scheduler.instance_ids():
                if pid not in self._fed_deferred:
                    continue
                managed = scheduler.managed(pid)
                if managed.status.is_terminal or managed.abort_pending:
                    continue
                if managed.is_hardened:
                    continue  # F-REC: must run forward, never a victim
                weight = len(managed.instance.trace())
                candidates.append((weight, pid, shard_id))
        if candidates:
            _, pid, shard_id = min(candidates)
            self.fed.shards[shard_id].scheduler.abort(
                pid, reason="federation cross-shard stall victim"
            )
            self._fed_deferred.discard(pid)
            self._last_gate.pop(pid, None)
            self.metrics.cross_victims += 1
            return
        for shard in self.fed.shards.values():
            if shard.alive and not shard.scheduler.all_terminated():
                shard.scheduler.resolve_stall()
                return
        raise SchedulerError("federation stall with no victim available")

    # -- the loop ------------------------------------------------------

    def _next_wakeup(self, now: float) -> Optional[float]:
        """Earliest future instant at which blocked work could move."""
        times: List[float] = []
        due = self.fed.network.next_due()
        if due is not None:
            times.append(max(due, now))
        reopen = self.fed.network.next_reopen()
        if reopen is not None and reopen > now:
            times.append(reopen)
        for shard in self.fed.shards.values():
            if not shard.alive:
                continue
            for group in shard.agent.groups.values():
                times.append(
                    max(group.voted_at + self.fed.indoubt_timeout, now)
                )
        future = [time for time in times if time > now]
        return min(future) if future else None

    def _finished(self) -> bool:
        return (
            all(shard.alive for shard in self.fed.shards.values())
            and self.fed.all_terminated()
            and self.fed.quiescent()
            and not any(self._flights.values())
        )

    def run(self) -> FederationRunMetrics:
        self._schedule_chaos()
        iterations = 0
        while not self._finished():
            iterations += 1
            if iterations > self._max_iterations:
                raise SchedulerError("federated simulation did not converge")
            now = self.queue.clock.now
            progressed = self.fed.pump(now)
            for shard_id in self.fed.shards:
                if self._step_shard(shard_id, now):
                    progressed = True
            if self.on_round is not None:
                self.on_round(now)
            if progressed:
                continue
            if any(self._flights.values()):
                self.queue.run_next()
                continue
            if not self.queue.empty:
                self.queue.run_next()
                continue
            wake = self._next_wakeup(now)
            if wake is not None:
                self.queue.schedule_at(wake, lambda: None)
                self.queue.run_next()
                continue
            self._resolve_stall()
        while not self.queue.empty:
            self.queue.run_next()
        self.metrics.makespan = self.queue.clock.now
        self.metrics.iterations = iterations
        # Terminations applied inside shard recovery (B-REC/F-REC of
        # processes that were live at the kill) never pass through the
        # runner's event flow, and a recovered scheduler only re-manages
        # processes that were still live at the crash — the WAL is the
        # one place every outcome is durable.  Tally from there.
        committed: Set[str] = set()
        aborted: Set[str] = set()
        for shard in self.fed.shards.values():
            scan = scan_wal(shard.wal)
            committed |= scan.committed
            aborted |= scan.aborted
        self.metrics.committed = len(committed)
        self.metrics.aborted = len(aborted - committed)
        return self.metrics
