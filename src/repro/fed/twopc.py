"""Cross-shard two-phase commit with crash-tolerant completion.

Extends the local :class:`~repro.subsystems.twophase.TwoPhaseCoordinator`
(Lemma 1) to pivot groups whose prepared legs live on several scheduler
shards:

* the **coordinator** (the process's home shard) logs ``2pc_begin``
  before any message, collects votes over the unreliable RPC fabric,
  logs the ``2pc_commit`` decision *before* phase two (the recovery
  anchor), and keeps a durable resend list until every participant
  acknowledged — ``2pc_end`` is only logged once the group is fully
  acknowledged;
* each **participant shard** runs a :class:`ShardCommitAgent`: a
  ``vote_req`` logs ``2pc_vote`` on the *participant's* WAL before the
  YES travels back (so its own recovery holds the leg in doubt instead
  of presuming abort), and a ``decision`` is applied idempotently —
  duplicates and resends are suppressed, never double-applied;
* recovery follows **presumed abort**: a coordinator that finds a begun
  but undecided group in its log aborts it and notifies participants; a
  participant that voted resolves through the cooperative **termination
  protocol** (query the peers for the logged decision) rather than
  guessing.

Crash points are injected via the base class's ``boundary`` hook —
:class:`~repro.subsystems.twophase.CoordinatorCrash` may be raised after
any message boundary and the test harnesses then drive recovery.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.fed.messages import FederationNetwork
from repro.obs.bus import tracing
from repro.obs.spans import group_process
from repro.subsystems.subsystem import SubsystemRegistry
from repro.subsystems.transaction import TransactionState
from repro.subsystems.twophase import (
    BoundaryHook,
    CommitOutcome,
    Participant,
    TwoPhaseCoordinator,
    VoteFunction,
)
from repro.subsystems.wal import WriteAheadLog

__all__ = [
    "DecisionLedger",
    "ShardCommitAgent",
    "CrossShardCoordinator",
]


class DecisionLedger:
    """Audit trail of prepared-transaction resolutions.

    Bound to every *real* subsystem via ``on_resolve``, it observes each
    commit/rollback of a prepared transaction exactly where it becomes
    durable — the ground truth the end-of-run audit compares against the
    logged 2PC decisions (zero lost, zero doubly-applied).
    """

    def __init__(self) -> None:
        self.commits: Counter = Counter()
        self.rollbacks: Counter = Counter()
        #: Decision messages suppressed as duplicates/redundant resends.
        self.dup_suppressed = 0

    def bind(self, subsystem) -> None:
        subsystem.on_resolve = self._record

    def _record(self, txn_id: str, committed: bool) -> None:
        if committed:
            self.commits[txn_id] += 1
        else:
            self.rollbacks[txn_id] += 1


def _trace(bus, kind: str, **data: Any) -> None:
    bus = tracing(bus)
    if bus is not None:
        process = data.pop("process", None)
        if process is None and "group" in data:
            # Harden groups encode their process id; attributing the
            # 2PC protocol events to it is what lets the span DAG and
            # the critical-path analysis charge vote/decision latency
            # to the right process.
            process = group_process(str(data["group"]))
        bus.emit(kind, process=process, **data)


@dataclass
class ParticipantGroup:
    """One in-doubt voted group held by a participant shard."""

    group_id: str
    coordinator: Optional[str]
    #: ``(subsystem_name, txn_id)`` legs this shard voted on.
    legs: List[Tuple[str, str]]
    voted_at: float = 0.0
    #: Recorded an in-doubt-hold decision already (avoid re-noising).
    held: bool = False


class ShardCommitAgent:
    """Participant side of the cross-shard protocol, one per shard."""

    def __init__(
        self,
        shard_id: str,
        wal: WriteAheadLog,
        registry: SubsystemRegistry,
        ledger: Optional[DecisionLedger] = None,
        trace: Optional[object] = None,
        clock: Optional[object] = None,
    ) -> None:
        self.shard_id = shard_id
        self.wal = wal
        self.registry = registry
        self.ledger = ledger
        self.trace = trace
        self.clock = clock
        #: In-doubt groups this shard voted YES on, by group id.
        self.groups: Dict[str, ParticipantGroup] = {}
        #: Groups whose decision has been applied (idempotence set).
        self.applied: Set[str] = set()
        #: group id -> decision, for termination-protocol queries.
        self.decisions_seen: Dict[str, bool] = {}
        self.dup_suppressed = 0

    def _now(self) -> float:
        return float(self.clock.now) if self.clock is not None else 0.0

    # -- message handlers ----------------------------------------------

    def handle(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        op = payload.get("op")
        if op == "vote_req":
            return self._handle_vote(payload)
        if op == "decision":
            return self._handle_decision(payload)
        if op == "query":
            return self.answer_query(str(payload.get("group")))
        return {"error": f"unknown op {op!r}"}

    def _handle_vote(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        group = str(payload["group"])
        if group in self.applied:
            # Late duplicate of a vote request for a finished group.
            self.dup_suppressed += 1
            return {"vote": False, "duplicate": True}
        legs = [self._split(leg) for leg in payload.get("legs", ())]
        for subsystem_name, txn_id in legs:
            if not self._is_prepared(subsystem_name, txn_id):
                return {"vote": False}
        if group in self.groups:
            # Duplicate vote request: re-affirm without re-logging.
            self.dup_suppressed += 1
            return {"vote": True, "duplicate": True}
        # The YES vote is durable *before* it travels back: recovery
        # must hold these legs in doubt, never presume abort.
        self.wal.append(
            {
                "type": "2pc_vote",
                "group": group,
                "coordinator": payload.get("coordinator"),
                "participants": [
                    f"{subsystem}:{txn}" for subsystem, txn in legs
                ],
            }
        )
        self.groups[group] = ParticipantGroup(
            group_id=group,
            coordinator=payload.get("coordinator"),
            legs=legs,
            voted_at=self._now(),
        )
        return {"vote": True}

    def _handle_decision(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        group = str(payload["group"])
        commit = bool(payload.get("commit"))
        if group in self.applied:
            self.dup_suppressed += 1
            if self.ledger is not None:
                self.ledger.dup_suppressed += 1
            return {"ack": True, "duplicate": True}
        # The decision carries its legs so a shard that never saw the
        # vote request (dropped message) can still resolve the group's
        # prepared transactions instead of leaking them.
        legs = [self._split(leg) for leg in payload.get("legs", ())]
        self.apply_decision(group, commit, legs=legs)
        return {"ack": True}

    def answer_query(self, group: str) -> Dict[str, Any]:
        seen = self.decisions_seen.get(group)
        if seen is not None:
            return {"known": True, "commit": seen}
        return {"known": False}

    # -- decision application ------------------------------------------

    def apply_decision(
        self,
        group: str,
        commit: bool,
        via: Optional[str] = None,
        legs: Optional[List[Tuple[str, str]]] = None,
    ) -> None:
        """Durably apply a decision to this shard's legs, idempotently."""
        if group in self.applied:
            self.dup_suppressed += 1
            return
        info = self.groups.pop(group, None)
        if info is not None:
            legs = info.legs
        elif legs is None:
            legs = []
        self.wal.append(
            {
                "type": "2pc_commit" if commit else "2pc_abort",
                "group": group,
                "role": "participant",
            }
        )
        for subsystem_name, txn_id in legs:
            if not self._is_prepared(subsystem_name, txn_id):
                # Already resolved (e.g. recovery re-committed a decided
                # leg before the resend arrived) — suppress, don't
                # double-apply.
                self.dup_suppressed += 1
                if self.ledger is not None:
                    self.ledger.dup_suppressed += 1
                continue
            subsystem = self.registry.get(subsystem_name)
            if commit:
                subsystem.commit_prepared(txn_id)
            else:
                subsystem.rollback_prepared(txn_id)
        if commit:
            self.wal.append(
                {"type": "2pc_end", "group": group, "role": "participant"}
            )
        self.applied.add(group)
        self.decisions_seen[group] = commit
        if via is not None:
            _trace(
                self.trace,
                "xshard_resolved",
                shard=self.shard_id,
                group=group,
                commit=commit,
                via=via,
            )

    def in_doubt(self, now: float, timeout: float) -> List[ParticipantGroup]:
        """Voted groups whose decision is overdue (termination trigger)."""
        return [
            group
            for group in self.groups.values()
            if now - group.voted_at >= timeout
        ]

    def has_in_doubt(self) -> bool:
        return bool(self.groups)

    def rebuild(self, voted_txns: Dict[str, str], now: float) -> None:
        """Reconstruct in-doubt state after a shard crash.

        ``voted_txns`` is the recovered WAL scan's transaction→group map
        of YES votes; every such transaction still prepared re-enters the
        in-doubt table for the termination protocol.
        """
        by_group: Dict[str, List[Tuple[str, str]]] = {}
        for txn_id, group in voted_txns.items():
            if group in self.applied or group in self.decisions_seen:
                continue
            location = self._find_prepared(txn_id)
            if location is None:
                continue  # already resolved before (or during) the crash
            by_group.setdefault(group, []).append((location, txn_id))
        for group, legs in by_group.items():
            self.groups[group] = ParticipantGroup(
                group_id=group,
                coordinator=None,
                legs=legs,
                voted_at=now,
            )

    # -- internals -----------------------------------------------------

    @staticmethod
    def _split(leg: object) -> Tuple[str, str]:
        subsystem, _, txn = str(leg).partition(":")
        return subsystem, txn

    def _is_prepared(self, subsystem_name: str, txn_id: str) -> bool:
        if subsystem_name not in self.registry:
            return False
        subsystem = self.registry.get(subsystem_name)
        return any(
            transaction.txn_id == txn_id
            and transaction.state is TransactionState.PREPARED
            for transaction in subsystem.prepared_transactions()
        )

    def _find_prepared(self, txn_id: str) -> Optional[str]:
        for subsystem, transaction in self.registry.prepared_transactions():
            if transaction.txn_id == txn_id:
                return subsystem.name
        return None


@dataclass
class _PendingGroup:
    """A decided cross-shard group awaiting participant acknowledgement."""

    commit: bool
    #: shard -> its ``"subsystem:txn"`` legs, kept until that shard acks.
    shards: Dict[str, List[str]] = field(default_factory=dict)


class CrossShardCoordinator(TwoPhaseCoordinator):
    """2PC coordinator whose participants may live on other shards.

    All-local groups take the parent's fast path unchanged.  Cross-shard
    groups run the message protocol: durable begin → vote RPCs → durable
    decision → decision RPCs with resend-until-acked → durable end.
    An unreachable participant shard vetoes the group in phase one
    (presumed abort keeps that safe); in phase two unreachability only
    delays completion — the decision is already durable and
    :meth:`resend` finishes the group when the link heals.
    """

    def __init__(
        self,
        shard_id: str,
        wal: WriteAheadLog,
        network: FederationNetwork,
        owner_of: Callable[[str], str],
        clock: Optional[object] = None,
        vote: Optional[VoteFunction] = None,
        boundary: Optional[BoundaryHook] = None,
        trace: Optional[object] = None,
    ) -> None:
        super().__init__(wal=wal, vote=vote, shard_id=shard_id, boundary=boundary)
        self.network = network
        self._owner_of = owner_of
        self.clock = clock
        self.trace = trace
        #: Decided groups awaiting acknowledgement, by group id.
        self.pending: Dict[str, _PendingGroup] = {}
        #: Groups this coordinator began (authority for queries).
        self._begun: Set[str] = set()
        #: group id -> decision.
        self._decided: Dict[str, bool] = {}
        #: Cross-shard groups get a fresh incarnation suffix so a retry
        #: after a veto is a *different* group to every participant —
        #: stale resends can never touch a newer incarnation's legs.
        #: Seeded past the begin records already in the log so the ids
        #: stay unique across coordinator crashes.
        existing = sum(
            1
            for record in wal.records()
            if record.get("type") == "2pc_begin"
            and record.get("coordinator") == shard_id
        )
        self._incarnations = itertools.count(existing + 1)

    def _now(self) -> float:
        return float(self.clock.now) if self.clock is not None else 0.0

    # -- the protocol --------------------------------------------------

    def commit_group(
        self,
        participants: Sequence[Participant],
        group_id: Optional[str] = None,
    ) -> CommitOutcome:
        by_shard: Dict[str, List[Participant]] = {}
        for participant in participants:
            shard = self._owner_of(participant.subsystem.name)
            by_shard.setdefault(shard, []).append(participant)
        remote = {
            shard: legs
            for shard, legs in by_shard.items()
            if shard != self.shard_id
        }
        if not remote:
            outcome = super().commit_group(participants, group_id=group_id)
            self._begun.add(outcome.group_id)
            self._decided[outcome.group_id] = outcome.committed
            return outcome
        base = group_id or self._fresh_group_id()
        identifier = f"{base}#{next(self._incarnations)}"
        return self._commit_cross(participants, by_shard, remote, identifier)

    def _commit_cross(
        self,
        participants: Sequence[Participant],
        by_shard: Dict[str, List[Participant]],
        remote: Dict[str, List[Participant]],
        identifier: str,
    ) -> CommitOutcome:
        now = self._now()
        names = tuple(str(participant) for participant in participants)
        shards = sorted(by_shard)
        self._log(
            {
                "type": "2pc_begin",
                "group": identifier,
                "participants": list(names),
                "coordinator": self.shard_id,
                "shards": shards,
            }
        )
        self._begun.add(identifier)
        self._cross("begin_logged")
        _trace(
            self.trace,
            "xshard_begin",
            shard=self.shard_id,
            group=identifier,
            shards=shards,
        )

        # Phase 1 — local legs vote in-process, remote legs over RPC.
        veto: Optional[str] = None
        for participant in by_shard.get(self.shard_id, []):
            transaction = self._find_transaction(participant)
            if (
                transaction is None
                or transaction.state is not TransactionState.PREPARED
                or not self._vote(participant)
            ):
                veto = str(participant)
                break
            self._cross(f"vote:{participant}")
        attempted: List[str] = []
        if veto is None:
            for shard in sorted(remote):
                attempted.append(shard)
                response = self.network.request(
                    self.shard_id,
                    shard,
                    {
                        "op": "vote_req",
                        "group": identifier,
                        "coordinator": self.shard_id,
                        "legs": [str(leg) for leg in remote[shard]],
                        "shards": shards,
                    },
                    now,
                )
                if response is None:
                    veto = f"shard-unreachable:{shard}"
                    break
                if not response.get("vote"):
                    veto = f"shard:{shard}"
                    break
                self._cross(f"vote:{shard}")
        self._cross("votes_collected")

        if veto is not None:
            self._log(
                {"type": "2pc_abort", "group": identifier, "veto": veto}
            )
            self._decided[identifier] = False
            self._cross("abort_logged")
            _trace(
                self.trace,
                "xshard_decision",
                shard=self.shard_id,
                group=identifier,
                commit=False,
                veto=veto,
            )
            self._rollback_all(by_shard.get(self.shard_id, []))
            if remote:
                # Every shard with a prepared leg learns the abort —
                # including ones whose vote request was dropped (the
                # abort carries the legs, so they can still roll back)
                # and ones never reached before the veto.
                self.pending[identifier] = _PendingGroup(
                    commit=False,
                    shards={
                        shard: [str(leg) for leg in legs]
                        for shard, legs in remote.items()
                    },
                )
                self.resend(now)
            return CommitOutcome(
                group_id=identifier,
                committed=False,
                participants=names,
                veto=veto,
            )

        # Decision logged before any phase-2 message — the anchor that
        # makes coordinator crashes recoverable.
        self._log({"type": "2pc_commit", "group": identifier})
        self._decided[identifier] = True
        self._cross("decision_logged")
        _trace(
            self.trace,
            "xshard_decision",
            shard=self.shard_id,
            group=identifier,
            commit=True,
        )

        # Phase 2 — commit local legs, push the decision to the shards.
        for participant in by_shard.get(self.shard_id, []):
            participant.subsystem.commit_prepared(participant.txn_id)
            self._cross(f"committed:{participant}")
        self.pending[identifier] = _PendingGroup(
            commit=True,
            shards={
                shard: [str(leg) for leg in legs]
                for shard, legs in remote.items()
            },
        )
        self.resend(now)
        return CommitOutcome(
            group_id=identifier, committed=True, participants=names
        )

    # -- completion / recovery -----------------------------------------

    def resend(self, now: Optional[float] = None) -> bool:
        """Push pending decisions; returns True when anything acked."""
        if now is None:
            now = self._now()
        progressed = False
        for group, info in list(self.pending.items()):
            for shard in sorted(info.shards):
                response = self.network.request(
                    self.shard_id,
                    shard,
                    {
                        "op": "decision",
                        "group": group,
                        "commit": info.commit,
                        "legs": list(info.shards[shard]),
                    },
                    now,
                )
                if response is not None and response.get("ack"):
                    del info.shards[shard]
                    progressed = True
            if not info.shards:
                if info.commit:
                    self._log({"type": "2pc_end", "group": group})
                    self._cross("end_logged")
                del self.pending[group]
                _trace(
                    self.trace,
                    "xshard_end",
                    shard=self.shard_id,
                    group=group,
                    commit=info.commit,
                )
        return progressed

    def decision_for(self, group: str) -> Optional[bool]:
        """This coordinator's authoritative verdict, if it owns the group.

        A begun group always has a decision after :meth:`rebuild` (an
        interrupted one was presumed aborted); an unknown group is not
        ours to answer — ``None``.
        """
        if group in self._decided:
            return self._decided[group]
        if group in self._begun:
            return False  # begun, never decided: presumed abort
        return None

    def rebuild(self, now: Optional[float] = None) -> None:
        """Recover coordinator state from this shard's WAL after a crash.

        Decided-but-unended cross-shard groups re-enter the resend list;
        begun-but-undecided groups are presumed aborted — the abort is
        logged and pushed to every participant shard.
        """
        if self._wal is None:
            return
        if now is None:
            now = self._now()
        begun: Dict[str, Dict[str, List[str]]] = {}
        decided: Dict[str, bool] = {}
        ended: Set[str] = set()
        for record in self._wal.records():
            kind = record.get("type")
            if kind == "2pc_begin" and record.get("coordinator") == self.shard_id:
                group = str(record["group"])
                self._begun.add(group)
                if record.get("shards"):
                    legs: Dict[str, List[str]] = {}
                    for leg in record.get("participants", ()):
                        subsystem = str(leg).partition(":")[0]
                        shard = self._owner_of(subsystem)
                        if shard != self.shard_id:
                            legs.setdefault(shard, []).append(str(leg))
                    begun[group] = legs
            elif kind == "2pc_commit" and record.get("role") != "participant":
                decided[str(record["group"])] = True
            elif kind == "2pc_abort" and record.get("role") != "participant":
                decided[str(record["group"])] = False
            elif kind == "2pc_end" and record.get("role") != "participant":
                ended.add(str(record["group"]))
        for group, shards in begun.items():
            verdict = decided.get(group)
            if verdict is None:
                # Interrupted before the decision: presumed abort.
                self._log({"type": "2pc_abort", "group": group,
                           "veto": "coordinator-crash"})
                decided[group] = False
                verdict = False
            if group in ended:
                continue
            self.pending[group] = _PendingGroup(commit=verdict, shards=shards)
        self._decided.update(decided)
