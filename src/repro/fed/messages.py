"""Inter-shard messaging with seeded fault injection.

The federation's shards communicate over two primitives:

* :meth:`FederationNetwork.request` — an **unreliable RPC** used by the
  cross-shard 2PC and the cooperative termination protocol.  A request
  can fail (partition, dead shard, injected drop, open link breaker) in
  which case the caller gets ``None`` and must treat the peer as
  unreachable; an injected *duplicate* invokes the handler twice,
  exercising the receiver's idempotence.
* :meth:`FederationNetwork.post` — a **reliable-eventual channel** used
  by the serialization-graph edge exchange.  Posted messages are
  delivered by :meth:`deliver_due` once their (possibly fault-delayed)
  due time passes and the link is up; drops and partitions translate
  into retransmission, never loss — conflict knowledge may be late but
  is never silently missing, which is what makes deferral-based gating
  safe.

Faults are injected by :class:`MessageFaultPolicy` in the spirit of
:mod:`repro.subsystems.failures`: per-message probabilities for drop /
delay / duplicate plus explicit named partitions, all deterministic
given the seed.  Every directed link carries a
:class:`~repro.resilience.breaker.CircuitBreaker` so repeated failures
fast-fail (PR 1's breakers reused for inter-shard links).

When a trace bus is attached, every message carries a **trace context**:
the sender emits ``msg_send`` and stamps its sequence number into the
payload under ``_ctx``; the delivery emits ``msg_recv`` with
``cause=<that seq>``.  The pair is the cross-shard happens-before edge
the span DAG (and the Perfetto flow arrows) hang 2PC vote/decision
rounds and edge-exchange propagation on.  With tracing disabled the
payload is never copied for stamping and no context key exists.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.obs.bus import tracing
from repro.resilience.breaker import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)

__all__ = [
    "Envelope",
    "MessageFaultPolicy",
    "FederationNetwork",
]


@dataclass
class Envelope:
    """One queued reliable-eventual message."""

    seq: int
    src: str
    dst: str
    payload: Dict[str, Any]
    due: float


class MessageFaultPolicy:
    """Seeded drop / delay / duplicate / partition injection.

    ``partitions`` maps an unordered shard pair to the virtual time the
    partition heals (``None`` = until explicitly healed).  Rates are
    per-message probabilities; injected counts are kept per kind.
    """

    def __init__(
        self,
        drop_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_span: Tuple[float, float] = (0.5, 2.0),
        duplicate_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        for name, rate in (
            ("drop_rate", drop_rate),
            ("delay_rate", delay_rate),
            ("duplicate_rate", duplicate_rate),
        ):
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1)")
        self.drop_rate = drop_rate
        self.delay_rate = delay_rate
        self.delay_span = delay_span
        self.duplicate_rate = duplicate_rate
        self._rng = random.Random(seed)
        self._partitions: Dict[FrozenSet[str], Optional[float]] = {}
        #: Faults injected, by kind.
        self.injected: Dict[str, int] = {
            "drop": 0,
            "delay": 0,
            "duplicate": 0,
            "partition": 0,
        }

    # -- partitions ----------------------------------------------------

    def partition(self, a: str, b: str, until: Optional[float] = None) -> None:
        """Cut the link between ``a`` and ``b`` (healing at ``until``)."""
        self._partitions[frozenset((a, b))] = until
        self.injected["partition"] += 1

    def heal(self, a: str, b: str) -> None:
        self._partitions.pop(frozenset((a, b)), None)

    def partitioned(self, a: str, b: str, now: float) -> bool:
        key = frozenset((a, b))
        until = self._partitions.get(key, _MISSING)
        if until is _MISSING:
            return False
        if until is not None and now >= until:
            del self._partitions[key]
            return False
        return True

    # -- per-message verdicts ------------------------------------------

    def drop(self) -> bool:
        if self.drop_rate and self._rng.random() < self.drop_rate:
            self.injected["drop"] += 1
            return True
        return False

    def delay(self) -> float:
        if self.delay_rate and self._rng.random() < self.delay_rate:
            self.injected["delay"] += 1
            return self._rng.uniform(*self.delay_span)
        return 0.0

    def duplicate(self) -> bool:
        if self.duplicate_rate and self._rng.random() < self.duplicate_rate:
            self.injected["duplicate"] += 1
            return True
        return False

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())


_MISSING = object()


#: Synchronous RPC handler: payload in, response out.
RpcHandler = Callable[[Dict[str, Any]], Dict[str, Any]]
#: Asynchronous inbox handler for edge-exchange deliveries.
InboxHandler = Callable[[str, Dict[str, Any]], None]


class FederationNetwork:
    """Message fabric between scheduler shards.

    Tracks which shards are up, applies the fault policy to every
    message, and guards each *directed* link with a circuit breaker so
    a persistently unreachable peer is fast-failed instead of hammered.
    """

    #: Retransmission interval for dropped reliable-eventual messages.
    RETRANSMIT = 0.5

    def __init__(
        self,
        policy: Optional[MessageFaultPolicy] = None,
        breaker_config: Optional[BreakerConfig] = None,
        trace: Optional[object] = None,
    ) -> None:
        self.policy = policy if policy is not None else MessageFaultPolicy()
        self._breaker_config = breaker_config or BreakerConfig(
            failure_threshold=3, reset_timeout=2.0
        )
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}
        self._rpc: Dict[str, RpcHandler] = {}
        self._inbox: Dict[str, InboxHandler] = {}
        self._down: set = set()
        self._pending: List[Envelope] = []
        self._seq = itertools.count(1)
        self.trace = trace
        #: Delivery/fault counters surfaced by the harness.
        self.requests_sent = 0
        self.requests_failed = 0
        self.posts_delivered = 0
        self.duplicates_delivered = 0

    # -- membership ----------------------------------------------------

    def bind(
        self,
        shard_id: str,
        rpc: Optional[RpcHandler] = None,
        inbox: Optional[InboxHandler] = None,
    ) -> None:
        if rpc is not None:
            self._rpc[shard_id] = rpc
        if inbox is not None:
            self._inbox[shard_id] = inbox

    def mark_down(self, shard_id: str) -> None:
        self._down.add(shard_id)

    def mark_up(self, shard_id: str) -> None:
        self._down.discard(shard_id)

    def is_down(self, shard_id: str) -> bool:
        return shard_id in self._down

    def breaker(self, src: str, dst: str) -> CircuitBreaker:
        key = (src, dst)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(f"{src}->{dst}", self._breaker_config)
            self._breakers[key] = breaker
        return breaker

    def reachable(self, src: str, dst: str, now: float) -> bool:
        """Link health check *without* consuming a breaker probe."""
        if dst in self._down or src in self._down:
            return False
        if self.policy.partitioned(src, dst, now):
            return False
        return True

    def next_reopen(self) -> Optional[float]:
        """Earliest open-breaker reopen time (a driver wake-up hint)."""
        times = [
            breaker.reopen_at
            for breaker in self._breakers.values()
            if breaker.state is BreakerState.OPEN
        ]
        return min(times) if times else None

    # -- unreliable RPC (2PC / termination protocol) -------------------

    def request(
        self, src: str, dst: str, payload: Dict[str, Any], now: float
    ) -> Optional[Dict[str, Any]]:
        """One synchronous RPC; ``None`` means the peer is unreachable."""
        self.requests_sent += 1
        bus = tracing(self.trace)
        op = str(payload.get("op", "")) if bus is not None else ""
        ctx = (
            bus.emit("msg_send", channel="rpc", op=op, src=src, dst=dst)
            if bus is not None
            else None
        )
        breaker = self.breaker(src, dst)
        if not self.reachable(src, dst, now):
            self._fault("unreachable", src, dst, payload)
            breaker.record_failure(now)
            self.requests_failed += 1
            return None
        if not breaker.allow(now):
            self._fault("breaker_open", src, dst, payload)
            self.requests_failed += 1
            return None
        if self.policy.drop():
            self._fault("drop", src, dst, payload)
            breaker.record_failure(now)
            self.requests_failed += 1
            return None
        handler = self._rpc.get(dst)
        if handler is None:
            breaker.record_failure(now)
            self.requests_failed += 1
            return None
        # Delays on the RPC path only add latency bookkeeping — the
        # discrete-event driver charges them to the run, not the caller.
        self.policy.delay()
        message = dict(payload)
        if ctx is not None:
            message["_ctx"] = ctx
            bus.emit(
                "msg_recv",
                channel="rpc",
                op=op,
                src=src,
                dst=dst,
                cause=ctx,
            )
        response = handler(message)
        if self.policy.duplicate():
            # The duplicate reaches the same handler again; the first
            # response is the one the caller observes.
            self._fault("duplicate", src, dst, payload)
            self.duplicates_delivered += 1
            if ctx is not None:
                bus.emit(
                    "msg_recv",
                    channel="rpc",
                    op=op,
                    src=src,
                    dst=dst,
                    cause=ctx,
                    duplicate=True,
                )
            handler(dict(message))
        breaker.record_success(now)
        return response

    # -- reliable-eventual channel (edge exchange) ---------------------

    def post(
        self, src: str, dst: str, payload: Dict[str, Any], now: float
    ) -> None:
        """Queue a message for eventual delivery (never lost)."""
        due = now + self.policy.delay()
        message = dict(payload)
        bus = tracing(self.trace)
        if bus is not None:
            message["_ctx"] = bus.emit(
                "msg_send",
                channel="post",
                kind_=str(payload.get("kind", "")),
                src=src,
                dst=dst,
            )
        self._pending.append(
            Envelope(next(self._seq), src, dst, message, due)
        )

    def pending_inbound(self, shard_id: str) -> int:
        """Undelivered messages addressed to ``shard_id``."""
        return sum(1 for env in self._pending if env.dst == shard_id)

    def next_due(self) -> Optional[float]:
        if not self._pending:
            return None
        return min(env.due for env in self._pending)

    def deliver_due(self, now: float) -> int:
        """Deliver every due message whose link is up; returns count.

        A drop fault on delivery retransmits (due pushed out) instead of
        losing the message; a duplicate fault invokes the inbox twice.
        """
        delivered = 0
        remaining: List[Envelope] = []
        for env in sorted(self._pending, key=lambda e: (e.due, e.seq)):
            if env.due > now or not self.reachable(env.src, env.dst, now):
                remaining.append(env)
                continue
            if self.policy.drop():
                self._fault("drop", env.src, env.dst, env.payload)
                env.due = now + self.RETRANSMIT
                remaining.append(env)
                continue
            handler = self._inbox.get(env.dst)
            if handler is not None:
                self._trace_recv(env)
                handler(env.src, dict(env.payload))
                if self.policy.duplicate():
                    self._fault("duplicate", env.src, env.dst, env.payload)
                    self.duplicates_delivered += 1
                    self._trace_recv(env, duplicate=True)
                    handler(env.src, dict(env.payload))
            delivered += 1
            self.posts_delivered += 1
        self._pending = remaining
        return delivered

    # -- instrumentation -----------------------------------------------

    def _trace_recv(self, env: Envelope, duplicate: bool = False) -> None:
        bus = tracing(self.trace)
        if bus is None:
            return
        data: Dict[str, Any] = {
            "channel": "post",
            "kind_": str(env.payload.get("kind", "")),
            "src": env.src,
            "dst": env.dst,
        }
        ctx = env.payload.get("_ctx")
        if ctx is not None:
            data["cause"] = ctx
        if duplicate:
            data["duplicate"] = True
        bus.emit("msg_recv", **data)

    def _fault(
        self, kind: str, src: str, dst: str, payload: Dict[str, Any]
    ) -> None:
        bus = tracing(self.trace)
        if bus is not None:
            bus.emit(
                "msg_fault",
                fault=kind,
                src=src,
                dst=dst,
                op=str(payload.get("op", "")),
            )

    def counters(self) -> Dict[str, int]:
        return {
            "requests_sent": self.requests_sent,
            "requests_failed": self.requests_failed,
            "posts_delivered": self.posts_delivered,
            "duplicates_delivered": self.duplicates_delivered,
            "breaker_trips": sum(b.trips for b in self._breakers.values()),
            "breaker_fast_fails": sum(
                b.fast_fails for b in self._breakers.values()
            ),
            **{f"fault_{k}": v for k, v in self.policy.injected.items()},
        }
