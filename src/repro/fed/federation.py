"""Sharded scheduler federation.

Each shard runs a full :class:`TransactionalProcessScheduler` with its
own write-ahead log over a *shard registry*: the real subsystems it
owns plus a :class:`ForeignSubsystem` proxy for every service owned by
a peer.  A proxy delegates invocations to the peer's real subsystem but
stamps the transaction id with the home shard
(``"<home>@<subsystem>/t<n>"``), which gives the federation its
**transaction custody** rule — a shard's recovery resolves exactly the
prepared transactions it created (its native ids and its ``home@``
prefixed foreign legs) plus those it voted YES on, and never touches a
peer's.

Cross-shard correctness rests on three pieces:

* **edge exchange** — when a process starts, its home shard posts the
  process's full potential service footprint on the reliable-eventual
  channel to every shard homing potentially conflicting work; the
  receiving shard's *foreign view* feeds the runner's conflict gate,
  which refuses to *start* a process while a potentially conflicting
  foreign process is active.  Conflicting cross-shard pairs are
  therefore fully serialized (the second never executes anything while
  the first is unterminated) — the invariant that keeps the merged
  history PRED-certifiable *and* makes shard-crash recovery safe: the
  completions a recovering shard drives (compensations and retriable
  forward paths, executed inside :func:`recover` beyond the runner's
  gates) can never conflict with an active foreign process;
* **cross-shard 2PC** (:mod:`repro.fed.twopc`) — pivot groups with
  foreign legs commit through the message protocol with presumed-abort
  recovery and the cooperative termination protocol for in-doubt
  participants;
* the **decision ledger audit** (:meth:`Federation.validate`) — every
  prepared-transaction resolution is observed at the subsystem, and at
  the end of a run each logged 2PC group is checked: decided groups
  committed every leg exactly once, undecided groups committed none,
  and no prepared residue remains anywhere.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.conflict import (
    ConflictRelation,
    NoConflicts,
    UnionConflicts,
    normalize_service,
)
from repro.core.process import Process
from repro.core.schedule import ProcessSchedule
from repro.core.scheduler import (
    SchedulerRules,
    TransactionalProcessScheduler,
)
from repro.fed.messages import FederationNetwork
from repro.fed.router import ShardRouter
from repro.fed.twopc import CrossShardCoordinator, DecisionLedger, ShardCommitAgent
from repro.obs.bus import tracing
from repro.obs.explain import DecisionRecord
from repro.subsystems.recovery import analyze_wal, recover, scan_wal
from repro.subsystems.subsystem import Subsystem, SubsystemRegistry
from repro.subsystems.wal import InMemoryWAL
from repro.errors import SubsystemUnavailable

__all__ = [
    "ForeignSubsystem",
    "ForeignProcess",
    "Shard",
    "FederationAudit",
    "Federation",
]


class ForeignSubsystem:
    """Local stand-in for a subsystem owned by another shard.

    Duck-types the :class:`~repro.subsystems.subsystem.Subsystem`
    surface the scheduler uses, delegating every operation to the real
    subsystem object while injecting home-prefixed transaction ids.
    While the owner shard is unreachable the proxy presents as *down*,
    so the scheduler's ordinary unavailability handling (and the
    runner's ``fed-shard-unreachable`` gate) applies.
    """

    _txn_ids = None  # per-instance, see __init__

    def __init__(
        self,
        home_shard: str,
        owner_shard: str,
        real: Subsystem,
        network: FederationNetwork,
        clock: Optional[object] = None,
    ) -> None:
        self.home_shard = home_shard
        self.owner_shard = owner_shard
        self.real = real
        self.network = network
        self.clock = clock
        self.name = real.name
        self.trace = None
        self.on_resolve = None  # ledger binds the real subsystem only
        self._txn_ids = itertools.count(1)
        self._prefix = f"{home_shard}@"

    # -- identity / lookup ---------------------------------------------

    def provides(self, name: str) -> bool:
        return self.real.provides(name)

    def service(self, name: str):
        return self.real.service(name)

    def services(self):
        return self.real.services()

    @property
    def store(self):
        return self.real.store

    @property
    def locks(self):
        return self.real.locks

    @property
    def is_down(self) -> bool:
        if self.real.is_down:
            return True
        now = float(self.clock.now) if self.clock is not None else 0.0
        return not self.network.reachable(
            self.home_shard, self.owner_shard, now
        )

    # -- delegated operations ------------------------------------------

    def invoke(self, service_name: str, *args: Any, **kwargs: Any):
        if self.is_down and not self.real.is_down:
            raise SubsystemUnavailable(
                f"shard {self.owner_shard!r} (owner of subsystem "
                f"{self.name!r}) is unreachable from {self.home_shard!r}",
                retry_after=1.0,
            )
        kwargs["txn_id"] = (
            f"{self._prefix}{self.name}/t{next(self._txn_ids)}"
        )
        return self.real.invoke(service_name, *args, **kwargs)

    def commit_prepared(self, txn_id: str) -> None:
        self.real.commit_prepared(txn_id)

    def rollback_prepared(self, txn_id: str) -> None:
        self.real.rollback_prepared(txn_id)

    def prepared_transactions(self):
        return [
            transaction
            for transaction in self.real.prepared_transactions()
            if transaction.txn_id.startswith(self._prefix)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ForeignSubsystem({self.name!r}, home={self.home_shard!r}, "
            f"owner={self.owner_shard!r})"
        )


@dataclass
class ForeignProcess:
    """What a shard knows about a peer's process via edge exchange."""

    process_id: str
    home_shard: str
    #: The process's announced potential footprint (base service names).
    services: Set[str] = field(default_factory=set)
    terminated: bool = False


@dataclass
class Shard:
    """One scheduler shard with its log, agent and coordinator."""

    shard_id: str
    registry: SubsystemRegistry
    wal: InMemoryWAL
    scheduler: TransactionalProcessScheduler
    coordinator: CrossShardCoordinator
    agent: ShardCommitAgent
    alive: bool = True
    kills: int = 0
    recoveries: int = 0
    #: pid -> template, for restart recovery's process repository.
    processes: Dict[str, Process] = field(default_factory=dict)
    #: Globally stamped absorb log: ``(stamp, key)`` where key mirrors
    #: the WAL analysis timeline entries — the merge order authority.
    stamp_log: List[Tuple[int, Tuple[object, ...]]] = field(
        default_factory=list
    )


@dataclass
class FederationAudit:
    """End-of-run decision audit (zero lost / zero duplicated)."""

    groups_checked: int = 0
    lost_decisions: List[str] = field(default_factory=list)
    dup_applications: List[str] = field(default_factory=list)
    in_doubt_residue: List[str] = field(default_factory=list)
    #: Submitted processes with no durable terminal outcome anywhere —
    #: a recovery that dropped a process instead of B/F-REC-ing it.
    lost_processes: List[str] = field(default_factory=list)
    dup_suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not (
            self.lost_decisions
            or self.dup_applications
            or self.in_doubt_residue
            or self.lost_processes
        )


class Federation:
    """N scheduler shards, one conflict-correct distributed history."""

    def __init__(
        self,
        router: ShardRouter,
        subsystems: Iterable[Subsystem],
        network: Optional[FederationNetwork] = None,
        conflicts: Optional[ConflictRelation] = None,
        rules: Optional[SchedulerRules] = None,
        clock: Optional[object] = None,
        trace: Optional[object] = None,
        indoubt_timeout: float = 5.0,
    ) -> None:
        self.router = router
        self.network = network if network is not None else FederationNetwork()
        if trace is not None and self.network.trace is None:
            self.network.trace = trace
        self.trace = trace
        self.clock = clock
        self.rules = rules
        self.indoubt_timeout = indoubt_timeout
        self.ledger = DecisionLedger()
        self._explicit = conflicts if conflicts is not None else NoConflicts()

        reals = list(subsystems)
        self._global_registry = SubsystemRegistry(reals)
        #: subsystem name -> owner shard (via the services it provides).
        self._sub_owner: Dict[str, str] = {}
        for subsystem in reals:
            owners = {
                self.router.owner(service.name)
                for service in subsystem.services()
            }
            if len(owners) != 1:
                raise ValueError(
                    f"subsystem {subsystem.name!r} spans owner shards "
                    f"{sorted(owners)}; a subsystem must live on one shard"
                )
            self._sub_owner[subsystem.name] = owners.pop()
            if clock is not None:
                subsystem.clock = clock
            self.ledger.bind(subsystem)

        #: Combined conflict relation every shard (and the merged
        #: certification) evaluates: explicit + global semantic.
        self.conflicts: ConflictRelation = UnionConflicts(
            (self._explicit, self._global_registry.semantic_conflicts())
        )

        self.shards: Dict[str, Shard] = {}
        for shard_id in self.router.shard_ids:
            self.shards[shard_id] = self._build_shard(shard_id, reals)

        #: pid -> template (global process repository).
        self.templates: Dict[str, Process] = {}
        #: pid -> home shard.
        self.homes: Dict[str, str] = {}
        #: shard -> base services used by processes homed there.
        self._shard_use: Dict[str, Set[str]] = {
            shard: set() for shard in self.shards
        }
        #: (home, base service) -> shards to announce to (memo).
        self._gate_memo: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        #: pid -> base-service footprint (memo).
        self._footprints: Dict[str, Set[str]] = {}
        #: Per-shard foreign views fed by the edge exchange.
        self.views: Dict[str, Dict[str, ForeignProcess]] = {
            shard: {} for shard in self.shards
        }
        #: pid -> shards that received the activation announcement
        #: (termination announcements go to exactly these).
        self._announced: Dict[str, Set[str]] = {}
        self._stamps = itertools.count(1)

    # -- construction --------------------------------------------------

    def _build_shard(self, shard_id: str, reals: List[Subsystem]) -> Shard:
        members: List[Any] = []
        for real in reals:
            owner = self._sub_owner[real.name]
            if owner == shard_id:
                members.append(real)
            else:
                members.append(
                    ForeignSubsystem(
                        shard_id, owner, real, self.network, self.clock
                    )
                )
        registry = SubsystemRegistry(members)
        wal = InMemoryWAL()
        coordinator = CrossShardCoordinator(
            shard_id=shard_id,
            wal=wal,
            network=self.network,
            owner_of=self._sub_owner.__getitem__,
            clock=self.clock,
            trace=self.trace,
        )
        scheduler = TransactionalProcessScheduler(
            registry=registry,
            conflicts=self._explicit,
            rules=self.rules,
            wal=wal,
            auto_provision=False,
            coordinator=coordinator,
        )
        if self.trace is not None:
            scheduler.attach_trace(self.trace)
        agent = ShardCommitAgent(
            shard_id,
            wal,
            registry,
            ledger=self.ledger,
            trace=self.trace,
            clock=self.clock,
        )
        shard = Shard(
            shard_id=shard_id,
            registry=registry,
            wal=wal,
            scheduler=scheduler,
            coordinator=coordinator,
            agent=agent,
        )
        # Late-bound handlers: recovery swaps the agent/coordinator and
        # the closures must follow.
        self.network.bind(
            shard_id,
            rpc=lambda payload, s=shard: self._handle_rpc(s, payload),
            inbox=lambda src, payload, s=shard: self._handle_inbox(
                s, src, payload
            ),
        )
        return shard

    def _handle_rpc(self, shard: Shard, payload: Dict[str, Any]):
        if not shard.alive:
            return {"error": "down"}
        if payload.get("op") == "query":
            group = str(payload.get("group"))
            verdict = shard.coordinator.decision_for(group)
            if verdict is not None:
                return {"known": True, "commit": verdict}
            return shard.agent.answer_query(group)
        return shard.agent.handle(payload)

    def _handle_inbox(
        self, shard: Shard, src: str, payload: Dict[str, Any]
    ) -> None:
        view = self.views[shard.shard_id]
        pid = str(payload.get("process"))
        entry = view.get(pid)
        if entry is None:
            entry = view[pid] = ForeignProcess(pid, home_shard=src)
        if payload.get("kind") == "active":
            entry.services.update(
                str(service) for service in payload.get("services", ())
            )
        elif payload.get("kind") == "terminated":
            entry.terminated = True
        bus = tracing(self.trace)
        if bus is not None:
            data = {
                "src": src,
                "dst": shard.shard_id,
                "kind_": str(payload.get("kind")),
            }
            ctx = payload.get("_ctx")
            if ctx is not None:
                data["cause"] = ctx
            bus.emit("edge_exchange", process=pid, **data)

    # -- submission ----------------------------------------------------

    def submit(self, process: Process, failures=None) -> Tuple[str, str]:
        """Route and submit a process; returns ``(shard, instance_id)``.

        ``failures`` is an optional
        :class:`~repro.subsystems.failures.FailurePolicy` threaded to
        the home shard's scheduler — how the nemesis harness drives
        planned subsystem faults through a federated run.
        """
        home = self.router.route(process)
        shard = self.shards[home]
        pid = shard.scheduler.submit(
            process, instance_id=process.process_id, failures=failures
        )
        shard.processes[pid] = process
        self.templates[pid] = process
        self.homes[pid] = home
        use = self._shard_use[home]
        for definition in process.activities():
            if definition.service is not None:
                use.add(normalize_service(definition.service))
        self._gate_memo.clear()
        return home, pid

    # -- edge exchange -------------------------------------------------

    def gate_targets(self, home: str, service: str) -> Tuple[str, ...]:
        """Peer shards homing processes whose services conflict with
        ``service`` — both the announcement fan-out and (symmetrically)
        the evidence that a service needs the inbound-barrier gate."""
        base = normalize_service(service)
        key = (home, base)
        cached = self._gate_memo.get(key)
        if cached is not None:
            return cached
        targets = tuple(
            shard
            for shard, used in sorted(self._shard_use.items())
            if shard != home
            and any(self.conflicts.conflicts(base, other) for other in used)
        )
        self._gate_memo[key] = targets
        return targets

    def process_footprint(self, pid: str) -> Set[str]:
        """Base service names a process can possibly touch (memoized)."""
        footprint = self._footprints.get(pid)
        if footprint is None:
            footprint = {
                normalize_service(definition.service)
                for definition in self.templates[pid].activities()
                if definition.service is not None
            }
            self._footprints[pid] = footprint
        return footprint

    def announce_active(self, home: str, pid: str, now: float) -> None:
        """Announce a starting process's full potential footprint.

        Posted once, the instant before the process executes its first
        action, to every peer shard homing potentially conflicting
        work.  Peers defer *starting* their own conflicting processes
        until this one terminates, which fully serializes conflicting
        cross-shard pairs.
        """
        if pid in self._announced:
            return
        services = self.process_footprint(pid)
        targets: Set[str] = set()
        for service in services:
            targets.update(self.gate_targets(home, service))
        self._announced[pid] = targets
        payload = {
            "kind": "active",
            "process": pid,
            "services": sorted(services),
        }
        for target in sorted(targets):
            self.network.post(home, target, dict(payload), now)

    def announce_termination(self, pid: str, now: float) -> None:
        home = self.homes.get(pid)
        for target in sorted(self._announced.get(pid, ())):
            self.network.post(
                home or "?",
                target,
                {"kind": "terminated", "process": pid},
                now,
            )

    def foreign_blockers(
        self, shard_id: str, services: Iterable[str]
    ) -> List[str]:
        """Active foreign processes whose announced potential footprint
        conflicts with any of ``services`` (the start-gate evidence)."""
        bases = [normalize_service(service) for service in services]
        blockers: List[str] = []
        for entry in self.views[shard_id].values():
            if entry.terminated:
                continue
            if any(
                self.conflicts.conflicts(base, other)
                for base in bases
                for other in entry.services
            ):
                blockers.append(entry.process_id)
        return blockers

    def has_conflict_potential(self, home: str, pid: str) -> bool:
        """Whether any peer shard homes work conflicting with ``pid``."""
        return any(
            self.gate_targets(home, service)
            for service in self.process_footprint(pid)
        )

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Every subsystem's committed store — the observable terminal
        state an equivalence check compares across fleet shapes."""
        return self._global_registry.snapshot()

    # -- stamping / merged history -------------------------------------

    def stamp(self, shard_id: str, key: Tuple[object, ...]) -> int:
        """Assign the next global stamp to an absorbed timeline entry."""
        stamp = next(self._stamps)
        self.shards[shard_id].stamp_log.append((stamp, key))
        return stamp

    def merged_history(self) -> ProcessSchedule:
        """The cross-shard history in global absorb order.

        Each shard's WAL analysis yields its *surviving* timeline (a
        subsequence of everything that shard ever absorbed — rolled
        back and presumed-aborted events removed); greedy in-order
        matching against the shard's stamp log recovers each entry's
        global stamp, and the merge sorts all shards' surviving entries
        by stamp into one :class:`ProcessSchedule`.
        """
        stamped: List[Tuple[int, Tuple[object, ...]]] = []
        present: Set[str] = set()
        for shard in self.shards.values():
            analysis = analyze_wal(shard.wal)
            log = shard.stamp_log
            cursor = 0
            for entry in analysis.timeline:
                key = tuple(entry)
                while cursor < len(log) and log[cursor][1] != key:
                    cursor += 1
                if cursor >= len(log):  # pragma: no cover - invariant
                    raise RuntimeError(
                        f"shard {shard.shard_id}: surviving WAL entry "
                        f"{key!r} missing from the stamp log"
                    )
                stamped.append((log[cursor][0], key))
                cursor += 1
                present.add(str(entry[1]))
        schedule = ProcessSchedule(
            (
                self.templates[pid].renamed(pid)
                for pid in sorted(present)
                if pid in self.templates
            ),
            self.conflicts,
        )
        from repro.core.activity import Direction

        for _, key in sorted(stamped, key=lambda item: item[0]):
            if key[0] == "event":
                schedule.record(
                    str(key[1]),
                    str(key[2]),
                    Direction.FORWARD if int(key[3]) == 1  # type: ignore[arg-type]
                    else Direction.COMPENSATION,
                )
            elif key[0] == "commit":
                schedule.record_commit(str(key[1]))
            else:
                schedule.record_abort(str(key[1]))
        return schedule

    # -- chaos: kill / recover -----------------------------------------

    def kill(self, shard_id: str, now: float) -> None:
        """Crash a whole shard: scheduler state is gone, WAL survives."""
        shard = self.shards[shard_id]
        if not shard.alive:
            return
        shard.scheduler.crash()
        shard.alive = False
        shard.kills += 1
        self.network.mark_down(shard_id)
        bus = tracing(self.trace)
        if bus is not None:
            bus.emit("shard_kill", shard=shard_id)

    def recover_shard(self, shard_id: str, now: float) -> None:
        """Restart a killed shard from its WAL.

        Phase order matters: the network comes up first (recovery's
        group abort may need foreign legs), the coordinator rebuilds
        from the log (presumed-abort of interrupted groups, resend list
        of decided ones), then :func:`repro.subsystems.recovery.recover`
        runs under the shard's transaction-custody filter, and finally
        the participant agent re-enters its voted groups into the
        in-doubt table for the termination protocol.
        """
        shard = self.shards[shard_id]
        if shard.alive:
            return
        self.network.mark_up(shard_id)
        scan = scan_wal(shard.wal)
        voted = set(scan.voted_txns)
        prefix = f"{shard_id}@"

        def txn_filter(subsystem_name: str, txn_id: str) -> bool:
            return (
                txn_id.startswith(prefix)
                or "@" not in txn_id
                or txn_id in voted
            )

        coordinator = CrossShardCoordinator(
            shard_id=shard_id,
            wal=shard.wal,
            network=self.network,
            owner_of=self._sub_owner.__getitem__,
            clock=self.clock,
            trace=self.trace,
        )
        coordinator.rebuild(now)
        before = len(shard.wal.records())
        report = recover(
            shard.wal,
            shard.registry,
            shard.processes,
            conflicts=self._explicit,
            rules=self.rules,
            txn_filter=txn_filter,
            coordinator=coordinator,
        )
        scheduler = report.scheduler
        if self.trace is not None:
            scheduler.attach_trace(self.trace)

        # Stamp the recovery's new history at the recovery instant, in
        # log order — the merged history sees the group abort exactly
        # where it happened on the global timeline.
        for record in shard.wal.records()[before:]:
            kind = record.get("type")
            if kind == "activity_commit":
                self.stamp(
                    shard_id,
                    (
                        "event",
                        str(record["process"]),
                        str(record["activity"]),
                        int(record["direction"]),  # type: ignore[arg-type]
                    ),
                )
            elif kind == "process_commit":
                self.stamp(shard_id, ("commit", str(record["process"])))
                self.announce_termination(str(record["process"]), now)
            elif kind == "process_abort":
                self.stamp(shard_id, ("abort", str(record["process"])))
                self.announce_termination(str(record["process"]), now)

        agent = ShardCommitAgent(
            shard_id,
            shard.wal,
            shard.registry,
            ledger=self.ledger,
            trace=self.trace,
            clock=self.clock,
        )
        # Decisions this shard applied as a participant are durable.
        for record in shard.wal.records():
            if record.get("role") != "participant":
                continue
            kind = record.get("type")
            group = str(record.get("group"))
            if kind == "2pc_commit":
                agent.decisions_seen[group] = True
                agent.applied.add(group)
            elif kind == "2pc_abort":
                agent.decisions_seen[group] = False
                agent.applied.add(group)
        agent.rebuild(scan.voted_txns, now)
        for group in agent.groups.values():
            self._record_in_doubt(shard, group)

        shard.scheduler = scheduler
        shard.coordinator = coordinator
        shard.agent = agent
        shard.alive = True
        shard.recoveries += 1
        bus = tracing(self.trace)
        if bus is not None:
            bus.emit(
                "shard_recovered",
                shard=shard_id,
                group_aborted=len(report.group_aborted),
                held_in_doubt=len(report.held_in_doubt),
            )

    # -- progress pump -------------------------------------------------

    def pump(self, now: float) -> bool:
        """Drive the message layer one round; True when anything moved.

        Delivers due edge-exchange messages, lets live coordinators
        resend undelivered decisions, and runs the cooperative
        termination protocol for overdue in-doubt participant groups.
        """
        progressed = self.network.deliver_due(now) > 0
        for shard in self.shards.values():
            if not shard.alive:
                continue
            if shard.coordinator.pending and shard.coordinator.resend(now):
                progressed = True
        for shard in self.shards.values():
            if not shard.alive:
                continue
            for group in shard.agent.in_doubt(now, self.indoubt_timeout):
                if not group.held:
                    group.held = True
                    self._record_in_doubt(shard, group)
                if self._terminate_in_doubt(shard, group, now):
                    progressed = True
        return progressed

    def _record_in_doubt(self, shard: Shard, group) -> None:
        pid = _group_process(group.group_id)
        record = DecisionRecord(
            kind="deferred",
            rule="fed-in-doubt-hold",
            reason=(
                f"voted YES in cross-shard group {group.group_id!r}; "
                f"decision unknown — prepared legs held in doubt"
            ),
            process=pid,
            detail={"group": group.group_id, "shard": shard.shard_id},
        )
        shard.scheduler.decisions[pid] = record
        bus = tracing(self.trace)
        if bus is not None:
            cause = bus.emit(
                "xshard_indoubt",
                process=pid,
                shard=shard.shard_id,
                group=group.group_id,
            )
            bus.emit(
                "deferred",
                process=pid,
                rule="fed-in-doubt-hold",
                reason=record.reason,
                group=group.group_id,
                cause=cause,
            )

    def _terminate_in_doubt(self, shard: Shard, group, now: float) -> bool:
        """One termination-protocol round for an in-doubt group."""
        peers = sorted(
            peer
            for peer in self.shards
            if peer != shard.shard_id and self.shards[peer].alive
        )
        # Ask the coordinator first when known, then the other peers.
        if group.coordinator in peers:
            peers.remove(group.coordinator)
            peers.insert(0, group.coordinator)
        for peer in peers:
            response = self.network.request(
                shard.shard_id,
                peer,
                {"op": "query", "group": group.group_id},
                now,
            )
            if response is None or not response.get("known"):
                continue
            commit = bool(response.get("commit"))
            shard.agent.apply_decision(group.group_id, commit, via=peer)
            pid = _group_process(group.group_id)
            record = DecisionRecord(
                kind="deferred",
                rule="fed-termination-protocol",
                reason=(
                    f"in-doubt group {group.group_id!r} resolved to "
                    f"{'commit' if commit else 'abort'} by querying "
                    f"shard {peer!r}"
                ),
                process=pid,
                detail={"group": group.group_id, "via": peer},
            )
            shard.scheduler.decisions[pid] = record
            bus = tracing(self.trace)
            if bus is not None:
                bus.emit(
                    "deferred",
                    process=pid,
                    rule="fed-termination-protocol",
                    reason=record.reason,
                    group=group.group_id,
                )
            return True
        return False

    def quiescent(self) -> bool:
        """No pending messages, resends or in-doubt groups remain."""
        if self.network.next_due() is not None:
            return False
        for shard in self.shards.values():
            if not shard.alive:
                continue
            if shard.coordinator.pending or shard.agent.has_in_doubt():
                return False
        return True

    def all_terminated(self) -> bool:
        return all(
            shard.scheduler.all_terminated()
            for shard in self.shards.values()
            if shard.alive
        )

    # -- audit ---------------------------------------------------------

    def validate(self) -> FederationAudit:
        """Audit 2PC outcomes against the resolution ledger.

        For every group logged anywhere: a *decided* (commit-logged)
        group must have committed each participant leg exactly once; an
        undecided group must have committed none.  Any prepared
        transaction still open anywhere is in-doubt residue.
        """
        audit = FederationAudit(dup_suppressed=self.ledger.dup_suppressed)
        groups: Dict[str, Set[str]] = {}
        decided: Set[str] = set()
        for shard in self.shards.values():
            for record in shard.wal.records():
                kind = record.get("type")
                if kind in ("2pc_begin", "2pc_vote"):
                    legs = groups.setdefault(str(record["group"]), set())
                    for participant in record.get("participants", ()):
                        legs.add(str(participant).split(":", 1)[-1])
                elif kind == "2pc_commit":
                    decided.add(str(record["group"]))
        for group, txns in sorted(groups.items()):
            audit.groups_checked += 1
            for txn in sorted(txns):
                commits = self.ledger.commits.get(txn, 0)
                if group in decided:
                    if commits == 0:
                        audit.lost_decisions.append(f"{group}:{txn}")
                    elif commits > 1:
                        audit.dup_applications.append(f"{group}:{txn}")
                else:
                    if commits > 0:
                        audit.dup_applications.append(f"{group}:{txn}")
        for subsystem in self._global_registry.subsystems():
            for transaction in subsystem.prepared_transactions():
                audit.in_doubt_residue.append(
                    f"{subsystem.name}:{transaction.txn_id}"
                )
        terminated: Set[str] = set()
        for shard in self.shards.values():
            scan = scan_wal(shard.wal)
            terminated |= scan.committed | scan.aborted
        audit.lost_processes = sorted(set(self.templates) - terminated)
        return audit

    def counters(self) -> Dict[str, int]:
        """Aggregated federation-level counters for results/benchmarks."""
        totals: Dict[str, int] = {
            "kills": sum(s.kills for s in self.shards.values()),
            "recoveries": sum(s.recoveries for s in self.shards.values()),
            "dup_suppressed": self.ledger.dup_suppressed
            + sum(s.agent.dup_suppressed for s in self.shards.values()),
        }
        totals.update(self.network.counters())
        return totals


def _group_process(group_id: str) -> str:
    """Process id encoded in a harden group id.

    Cross-shard harden groups are ``harden:<pid>#<incarnation>``.
    """
    if group_id.startswith("harden:"):
        return group_id.split(":", 1)[1].partition("#")[0]
    return group_id
