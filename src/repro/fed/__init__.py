"""Sharded scheduler federation with crash-tolerant cross-shard 2PC.

Partitions processes across N scheduler shards by service footprint
(:mod:`repro.fed.router`), runs cross-shard pivot groups through a
message-based presumed-abort 2PC with a cooperative termination
protocol (:mod:`repro.fed.twopc`) over a fault-injected network
(:mod:`repro.fed.messages`), exchanges conflict knowledge between
shards, and merges every shard's surviving history into one globally
stamped, PRED-certifiable schedule (:mod:`repro.fed.federation`,
driven by :mod:`repro.fed.runner`).
"""

from repro.fed.federation import (
    Federation,
    FederationAudit,
    ForeignProcess,
    ForeignSubsystem,
    Shard,
)
from repro.fed.messages import Envelope, FederationNetwork, MessageFaultPolicy
from repro.fed.router import ShardRouter
from repro.fed.runner import FederationRunMetrics, FederationRunner
from repro.fed.twopc import (
    CrossShardCoordinator,
    DecisionLedger,
    ShardCommitAgent,
)

__all__ = [
    "CrossShardCoordinator",
    "DecisionLedger",
    "Envelope",
    "Federation",
    "FederationAudit",
    "FederationNetwork",
    "FederationRunMetrics",
    "FederationRunner",
    "ForeignProcess",
    "ForeignSubsystem",
    "MessageFaultPolicy",
    "Shard",
    "ShardCommitAgent",
    "ShardRouter",
]
