"""Failure minimization: delta-debugging over fault plans.

When the search finds a violating plan, the shrinker minimizes it
while the violation keeps reproducing, in three deterministic stages:

1. **drop actions** — classic ddmin (Zeller/Hildebrandt) over the
   action list, followed by an explicit single-removal pass, so the
   surviving plan is *1-minimal*: removing any one action loses the
   violation;
2. **tighten windows** — halve each surviving action's duration while
   the violation reproduces (bounded halvings, so termination is by
   construction);
3. **shrink the workload** — fewer processes per group, then fewer
   service groups, while the violation reproduces.

The only oracle is ``reproduces(spec, plan) -> bool`` — in production
a full :func:`~repro.nemesis.executor.run_plan` comparing violation
identities, in the shrinker's own unit tests a synthetic predicate.
Every candidate is memoized, the run budget is a hard cap (exhaustion
answers ``False``, which is conservative: the current plan already
reproduces), and there is no randomness anywhere — the same inputs
always shrink to the same plan.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Callable, Dict, Tuple

from repro.nemesis.plan import FaultAction, FaultPlan

__all__ = ["ShrinkResult", "ddmin_actions", "shrink"]


@dataclass
class ShrinkResult:
    """A minimized reproduction: the plan, its spec, and the cost."""

    spec: object
    plan: FaultPlan
    original_actions: int
    runs: int = 0

    @property
    def minimal_actions(self) -> int:
        return len(self.plan.actions)

    @property
    def shrink_ratio(self) -> float:
        """Found-plan actions per minimal-plan action (>= 1.0)."""
        if self.minimal_actions == 0:
            return float(self.original_actions) if self.original_actions else 1.0
        return self.original_actions / self.minimal_actions


def ddmin_actions(
    actions: Tuple[FaultAction, ...],
    test: Callable[[Tuple[FaultAction, ...]], bool],
) -> Tuple[FaultAction, ...]:
    """Minimize an action tuple with ddmin plus a 1-minimality pass.

    ``test(subset)`` answers whether the violation still reproduces
    with exactly that subset; ``test(actions)`` is assumed true.
    Deterministic and terminating: the subset length strictly
    decreases on every accepted step, and the granularity doubles (a
    finite ladder) between rejected sweeps.
    """
    current = tuple(actions)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        complements = []
        for start in range(0, len(current), chunk):
            complements.append(current[:start] + current[start + chunk:])
        reduced = False
        for complement in complements:
            if len(complement) < len(current) and test(complement):
                current = complement
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    # 1-minimality: no single action may be removable.
    changed = True
    while changed and len(current) > 1:
        changed = False
        for index in range(len(current)):
            candidate = current[:index] + current[index + 1:]
            if test(candidate):
                current = candidate
                changed = True
                break
    if len(current) == 1 and test(()):
        current = ()
    return current


class _Oracle:
    """Memoizing, budgeted wrapper around the reproduces predicate."""

    def __init__(
        self,
        reproduces: Callable[[object, FaultPlan], bool],
        max_runs: int,
    ) -> None:
        self._reproduces = reproduces
        self._max_runs = max_runs
        self._cache: Dict[Tuple, bool] = {}
        self.runs = 0

    @staticmethod
    def _key(spec: object, plan: FaultPlan) -> Tuple:
        spec_key = (
            json.dumps(spec.to_dict(), sort_keys=True)
            if hasattr(spec, "to_dict")
            else repr(spec)
        )
        return (spec_key, json.dumps(plan.to_dict(), sort_keys=True))

    def __call__(self, spec: object, plan: FaultPlan) -> bool:
        key = self._key(spec, plan)
        if key in self._cache:
            return self._cache[key]
        if self.runs >= self._max_runs:
            return False
        self.runs += 1
        verdict = bool(self._reproduces(spec, plan))
        self._cache[key] = verdict
        return verdict


def shrink(
    spec,
    plan: FaultPlan,
    reproduces: Callable[[object, FaultPlan], bool],
    max_runs: int = 256,
) -> ShrinkResult:
    """Minimize ``(spec, plan)`` while ``reproduces`` stays true."""
    oracle = _Oracle(reproduces, max_runs)
    current_spec = spec
    current = plan

    # Stage 1: drop actions (ddmin + 1-minimality).
    def action_test(subset: Tuple[FaultAction, ...]) -> bool:
        return oracle(current_spec, replace(current, actions=subset))

    minimal_actions = ddmin_actions(current.actions, action_test)
    current = replace(current, actions=minimal_actions)

    # Stage 2: tighten windows (bounded halvings per action).
    for index in range(len(current.actions)):
        for _ in range(3):
            action = current.actions[index]
            if action.duration < 0.5:
                break
            tightened = current.with_action(
                index, replace(action, duration=round(action.duration / 2, 3))
            )
            if oracle(current_spec, tightened):
                current = tightened
            else:
                break

    # Stage 3: shrink the workload while the violation survives.
    candidates = []
    for processes in range(spec.processes_per_group - 1, 0, -1):
        candidates.append(replace(current_spec, processes_per_group=processes))
    for candidate in candidates:
        if oracle(candidate, current):
            current_spec = candidate
        else:
            break
    if current_spec.service_groups > current_spec.shards:
        for groups in range(
            current_spec.service_groups - 1, current_spec.shards - 1, -1
        ):
            candidate = replace(current_spec, service_groups=groups)
            if oracle(candidate, current):
                current_spec = candidate
            else:
                break

    return ShrinkResult(
        spec=current_spec,
        plan=current,
        original_actions=len(plan.actions),
        runs=oracle.runs,
    )
