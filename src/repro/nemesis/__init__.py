"""Nemesis: unified deterministic fault simulation with adversarial
search, failure minimization and repro bundles.

One :class:`~repro.nemesis.plan.FaultPlan` drives all five injector
families (subsystem faults, message faults, disk faults, shard kills,
WAL-threshold crashes) through a single seeded timeline; an online
invariant registry catches violations at the earliest offending event;
:func:`~repro.nemesis.search.nemesis_search` explores random plans
under a budget, shrinks what it finds with delta debugging and emits a
deterministic repro bundle
(:func:`~repro.nemesis.bundle.replay_bundle` re-executes it to the
identical violation).
"""

from repro.nemesis.plan import (
    FAMILIES,
    FAMILY_OF,
    FaultAction,
    FaultPlan,
    random_plan,
)
from repro.nemesis.adapters import (
    PlannedMessageFaults,
    PlannedSubsystemFaults,
    disk_arming,
    kill_schedule,
    partition_schedule,
    wal_crash_triggers,
)
from repro.nemesis.coverage import ALL_SITES, KNOWN_SITES, CoverageReport
from repro.nemesis.invariants import (
    CanaryInvariant,
    DecisionConservationInvariant,
    Invariant,
    InvariantViolation,
    NoFrecAbortInvariant,
    NoLostProcessInvariant,
    PredPrefixInvariant,
    WalMonotoneInvariant,
    default_invariants,
)
from repro.nemesis.executor import NemesisRunResult, NemesisSpec, run_plan
from repro.nemesis.shrink import ShrinkResult, ddmin_actions, shrink
from repro.nemesis.bundle import (
    Bundle,
    ReplayReport,
    read_bundle,
    replay_bundle,
    write_bundle,
)
from repro.nemesis.search import SearchResult, nemesis_search, plan_for

__all__ = [
    "FAMILIES",
    "FAMILY_OF",
    "FaultAction",
    "FaultPlan",
    "random_plan",
    "PlannedMessageFaults",
    "PlannedSubsystemFaults",
    "disk_arming",
    "kill_schedule",
    "partition_schedule",
    "wal_crash_triggers",
    "ALL_SITES",
    "KNOWN_SITES",
    "CoverageReport",
    "CanaryInvariant",
    "DecisionConservationInvariant",
    "Invariant",
    "InvariantViolation",
    "NoFrecAbortInvariant",
    "NoLostProcessInvariant",
    "PredPrefixInvariant",
    "WalMonotoneInvariant",
    "default_invariants",
    "NemesisRunResult",
    "NemesisSpec",
    "run_plan",
    "ShrinkResult",
    "ddmin_actions",
    "shrink",
    "Bundle",
    "ReplayReport",
    "read_bundle",
    "replay_bundle",
    "write_bundle",
    "SearchResult",
    "nemesis_search",
    "plan_for",
]
