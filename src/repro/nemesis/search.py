"""Adversarial search: seeded random fault plans under a budget.

``nemesis search`` draws plan after plan from an explicit
``random.Random`` derived from the search seed and the plan index,
executes each against the system spec with the online invariant
registry armed, and accumulates fault-site coverage across the whole
campaign.  On the first violation it runs the delta-debugging shrinker
(:mod:`repro.nemesis.shrink`) with a real-replay oracle — a candidate
"reproduces" iff re-running it yields the *identical* violation
identity (invariant + event index) — and emits a repro bundle.

Everything is deterministic given ``(spec, seed, plans, actions)``:
the same campaign always explores the same plans, finds the same
violation and shrinks it to the same minimal plan.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.nemesis.bundle import Bundle, write_bundle
from repro.nemesis.coverage import CoverageReport
from repro.nemesis.executor import (
    NemesisRunResult,
    NemesisSpec,
    run_plan,
)
from repro.nemesis.invariants import (
    Invariant,
    InvariantViolation,
    default_invariants,
)
from repro.nemesis.plan import FaultPlan, random_plan
from repro.nemesis.shrink import ShrinkResult, shrink

__all__ = ["SearchResult", "plan_for", "nemesis_search"]

#: Invariant factory: fresh instances per run keep runs independent.
InvariantFactory = Callable[[], List[Invariant]]


def plan_for(
    spec: NemesisSpec, seed: int, index: int, actions: int = 8
) -> FaultPlan:
    """The ``index``-th plan of a search campaign — pure and seeded."""
    rng = random.Random(seed * 1_000_003 + index)
    return random_plan(
        rng,
        services=spec.service_names(),
        shards=spec.shard_names(),
        actions=actions,
        horizon=spec.horizon,
    )


@dataclass
class SearchResult:
    """Outcome of one search campaign."""

    spec: NemesisSpec
    seed: int
    explored: int = 0
    coverage: CoverageReport = field(default_factory=CoverageReport)
    #: The violating run, pre-shrink (``None`` = campaign came up clean).
    violation: Optional[InvariantViolation] = None
    found_plan: Optional[FaultPlan] = None
    found_index: Optional[int] = None
    shrunk: Optional[ShrinkResult] = None
    bundle_path: Optional[str] = None
    #: Total plan executions including the shrinker's replays.
    total_runs: int = 0

    @property
    def found(self) -> bool:
        return self.violation is not None

    @property
    def minimal_plan(self) -> Optional[FaultPlan]:
        return self.shrunk.plan if self.shrunk is not None else None

    def summary(self) -> str:
        if not self.found:
            return (
                f"explored {self.explored} plans, no violation; "
                f"fault-site coverage {self.coverage.percent:.0f}% "
                f"({', '.join(self.coverage.families_covered()) or 'none'})"
            )
        lines = [
            f"violation after {self.explored} plans: "
            f"{self.violation.describe()}",
            f"found plan: {len(self.found_plan.actions)} actions "
            f"(index {self.found_index}, seed {self.seed})",
        ]
        if self.shrunk is not None:
            lines.append(
                f"shrunk to {self.shrunk.minimal_actions} actions "
                f"(ratio {self.shrunk.shrink_ratio:.1f}x, "
                f"{self.shrunk.runs} shrink runs)"
            )
        if self.bundle_path:
            lines.append(f"bundle: {self.bundle_path}")
        return "\n".join(lines)


def nemesis_search(
    spec: NemesisSpec,
    plans: int = 20,
    seed: int = 0,
    actions: int = 8,
    invariants: Optional[InvariantFactory] = None,
    shrink_on_violation: bool = True,
    max_shrink_runs: int = 128,
    bundle_dir: Optional[str] = None,
    bundle_trace: bool = True,
    trace=None,
    metrics_registry=None,
    on_result: Optional[Callable[[int, NemesisRunResult], None]] = None,
) -> SearchResult:
    """Explore ``plans`` seeded fault plans; shrink + bundle on violation."""
    factory: InvariantFactory = (
        invariants if invariants is not None else default_invariants
    )
    result = SearchResult(spec=spec, seed=seed)
    for index in range(plans):
        plan = plan_for(spec, seed, index, actions=actions)
        run = run_plan(
            spec,
            plan,
            invariants=factory(),
            trace=trace,
            metrics_registry=metrics_registry,
        )
        result.explored += 1
        result.total_runs += 1
        result.coverage.merge(run.coverage)
        if on_result is not None:
            on_result(index, run)
        if run.violation is None:
            continue
        result.violation = run.violation
        result.found_plan = plan
        result.found_index = index
        if shrink_on_violation:
            expected = run.violation.identity

            def reproduces(
                candidate_spec: NemesisSpec, candidate: FaultPlan
            ) -> bool:
                replay = run_plan(
                    candidate_spec, candidate, invariants=factory()
                )
                result.total_runs += 1
                return (
                    replay.violation is not None
                    and replay.violation.identity == expected
                )

            result.shrunk = shrink(
                spec, plan, reproduces, max_runs=max_shrink_runs
            )
        if bundle_dir is not None:
            minimal = result.shrunk
            bundle = Bundle(
                spec=minimal.spec if minimal is not None else spec,
                plan=minimal.plan if minimal is not None else plan,
                violation=run.violation,
                search={
                    "seed": seed,
                    "index": index,
                    "actions_found": len(plan.actions),
                    "actions_minimal": (
                        minimal.minimal_actions
                        if minimal is not None
                        else len(plan.actions)
                    ),
                    "shrink_runs": (
                        minimal.runs if minimal is not None else 0
                    ),
                },
            )
            result.bundle_path = write_bundle(
                bundle_dir,
                bundle,
                invariants=factory,
                with_trace=bundle_trace,
            )
        break
    if metrics_registry is not None:
        result.coverage.publish(metrics_registry)
        metrics_registry.counter("nemesis_plans_explored").inc(
            result.explored
        )
    return result
