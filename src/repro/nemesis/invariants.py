"""Online invariants: checked *during* the run, not only at the end.

The offline certification (PRED + reducibility + termination + the 2PC
decision audit) says whether a finished run was correct; the nemesis
monitor additionally evaluates a registry of invariants every round so
a violation is caught at the *earliest offending event* — the event
index is what the shrinker and the replay check compare, so a repro
bundle pins (invariant, event index, seed), not just "the run failed".

Each invariant implements ``check`` (called during the run; expensive
ones are rate-limited by the monitor via the ``expensive`` flag) and
``final`` (called once after the run, when end-of-run-only evidence
like the decision audit is meaningful).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.pred import check_pred

__all__ = [
    "InvariantViolation",
    "Invariant",
    "PredPrefixInvariant",
    "WalMonotoneInvariant",
    "DecisionConservationInvariant",
    "NoFrecAbortInvariant",
    "NoLostProcessInvariant",
    "CanaryInvariant",
    "default_invariants",
]


@dataclass(frozen=True)
class InvariantViolation:
    """One invariant breach, pinned to its earliest offending event."""

    invariant: str
    event_index: int
    time: float
    detail: str = ""

    @property
    def identity(self) -> tuple:
        """What a deterministic replay must reproduce exactly."""
        return (self.invariant, self.event_index)

    def describe(self) -> str:
        return (
            f"{self.invariant} violated at event {self.event_index} "
            f"(t={self.time:g}): {self.detail}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "invariant": self.invariant,
            "event_index": self.event_index,
            "time": self.time,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "InvariantViolation":
        return cls(
            invariant=str(payload["invariant"]),
            event_index=int(payload["event_index"]),
            time=float(payload.get("time", 0.0)),
            detail=str(payload.get("detail", "")),
        )


class Invariant:
    """One continuously-evaluated correctness property.

    ``view`` is the monitor's :class:`~repro.nemesis.executor.RunView`:
    the live federation plus cached per-round derivations (merged
    history, fault-delivery counts).
    """

    name = "invariant"
    #: Expensive invariants are evaluated every ``check_every`` rounds
    #: (and at the end); cheap ones every round.
    expensive = False

    def check(self, view) -> Optional[InvariantViolation]:
        return None

    def final(self, view) -> Optional[InvariantViolation]:
        return self.check(view)


class PredPrefixInvariant(Invariant):
    """Every prefix of the merged history must stay reducible (PRED)."""

    name = "pred-prefix"
    expensive = True

    def check(self, view) -> Optional[InvariantViolation]:
        history = view.history()
        result = check_pred(history)
        if result.is_pred:
            return None
        return InvariantViolation(
            invariant=self.name,
            event_index=int(result.violating_prefix_length or 0),
            time=view.now,
            detail=(
                f"prefix of length {result.violating_prefix_length} of the "
                f"merged history is not reducible"
            ),
        )


class WalMonotoneInvariant(Invariant):
    """Per-shard WAL LSNs must be strictly increasing in append order."""

    name = "wal-monotone"

    def check(self, view) -> Optional[InvariantViolation]:
        for shard_id, shard in sorted(view.federation.shards.items()):
            last = None
            for record in shard.wal.records():
                lsn = int(record.get("lsn", -1))
                if last is not None and lsn <= last:
                    return InvariantViolation(
                        invariant=self.name,
                        event_index=lsn,
                        time=view.now,
                        detail=(
                            f"shard {shard_id!r} WAL lsn {lsn} follows "
                            f"{last} (non-monotone)"
                        ),
                    )
                last = lsn
        return None


class DecisionConservationInvariant(Invariant):
    """No 2PC commit decision is ever applied twice to a subsystem."""

    name = "decision-conservation"

    def check(self, view) -> Optional[InvariantViolation]:
        ledger = view.federation.ledger
        for txn_id, count in sorted(ledger.commits.items()):
            if count > 1:
                return InvariantViolation(
                    invariant=self.name,
                    event_index=int(sum(ledger.commits.values())),
                    time=view.now,
                    detail=(
                        f"commit decision for {txn_id!r} applied "
                        f"{count} times"
                    ),
                )
        return None


class NoFrecAbortInvariant(Invariant):
    """A hardened (F-REC) process may never end aborted.

    During the run this inspects live scheduler state; at the end it
    cross-checks the durable evidence — no process id may carry both a
    commit and an abort record anywhere in the federation's WALs.
    """

    name = "no-frec-abort"

    def check(self, view) -> Optional[InvariantViolation]:
        for shard_id, shard in sorted(view.federation.shards.items()):
            if not shard.alive:
                continue
            scheduler = shard.scheduler
            for pid in scheduler.instance_ids():
                managed = scheduler.managed(pid)
                if managed.is_hardened and managed.status.value == "aborted":
                    return InvariantViolation(
                        invariant=self.name,
                        event_index=len(managed.instance.trace()),
                        time=view.now,
                        detail=(
                            f"hardened process {pid!r} aborted on shard "
                            f"{shard_id!r}"
                        ),
                    )
        return None

    def final(self, view) -> Optional[InvariantViolation]:
        violation = self.check(view)
        if violation is not None:
            return violation
        outcomes = view.wal_outcomes()
        both = sorted(outcomes["committed"] & outcomes["aborted"])
        if both:
            return InvariantViolation(
                invariant=self.name,
                event_index=len(both),
                time=view.now,
                detail=(
                    f"processes with both durable commit and abort "
                    f"records: {', '.join(both)}"
                ),
            )
        return None


class NoLostProcessInvariant(Invariant):
    """Every submitted process has a durable terminal outcome somewhere."""

    name = "no-lost-process"

    def final(self, view) -> Optional[InvariantViolation]:
        audit = view.federation.validate()
        if audit.lost_processes:
            return InvariantViolation(
                invariant=self.name,
                event_index=len(audit.lost_processes),
                time=view.now,
                detail=(
                    f"lost processes: "
                    f"{', '.join(sorted(audit.lost_processes))}"
                ),
            )
        return None


class CanaryInvariant(Invariant):
    """Intentionally-broken fixture: fault injection of the injector.

    "Violates" as soon as every listed injector family has delivered at
    least ``threshold`` faults — a deterministic, searchable,
    shrinkable target that exercises the whole
    search → shrink → bundle → replay pipeline without needing a real
    protocol bug.  The 1-minimal plan is exactly one firing action per
    listed family.
    """

    name = "canary"
    expensive = False

    def __init__(
        self, families: Sequence[str], threshold: int = 1
    ) -> None:
        self.families = tuple(families)
        self.threshold = threshold

    def check(self, view) -> Optional[InvariantViolation]:
        counts = view.family_deliveries()
        if all(
            counts.get(family, 0) >= self.threshold
            for family in self.families
        ):
            return InvariantViolation(
                invariant=self.name,
                event_index=len(self.families),
                time=view.now,
                detail=(
                    "all watched families delivered faults: "
                    + ", ".join(
                        f"{family}={counts.get(family, 0)}"
                        for family in self.families
                    )
                ),
            )
        return None


def default_invariants() -> List[Invariant]:
    """The standard registry every nemesis run checks."""
    return [
        PredPrefixInvariant(),
        WalMonotoneInvariant(),
        DecisionConservationInvariant(),
        NoFrecAbortInvariant(),
        NoLostProcessInvariant(),
    ]
