"""Fault-site coverage accounting for nemesis runs.

A *fault site* is one concrete injection point an adversarial run can
exercise — ``subsystem:hang``, ``message:drop``, ``kill:kill``, … —
eleven sites across the five injector families.  Every run reports
which sites actually fired (an action in a plan is intent; a delivered
fault is coverage), the CLI prints the percentage, CI asserts a floor
so coverage never silently decreases, and the counts are published
through the obs metrics registry
(:class:`~repro.obs.metrics.MetricsRegistry`) for Prometheus export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["KNOWN_SITES", "ALL_SITES", "CoverageReport"]

#: family -> the concrete fault sites it can deliver.
KNOWN_SITES: Dict[str, Tuple[str, ...]] = {
    "subsystem": ("abort", "latency", "hang", "crash"),
    "message": ("drop", "delay", "duplicate", "partition"),
    "disk": ("fsync",),
    "kill": ("kill",),
    "walcrash": ("wal_crash",),
}

#: Every ``family:site`` label, in stable order.
ALL_SITES: Tuple[str, ...] = tuple(
    f"{family}:{site}"
    for family in sorted(KNOWN_SITES)
    for site in KNOWN_SITES[family]
)


@dataclass
class CoverageReport:
    """Delivered-fault counts per site, with derived coverage figures."""

    counts: Dict[str, int] = field(
        default_factory=lambda: {site: 0 for site in ALL_SITES}
    )

    def record(self, family: str, site: str, amount: int = 1) -> None:
        if amount <= 0:
            return
        label = f"{family}:{site}"
        self.counts[label] = self.counts.get(label, 0) + amount

    def merge(self, other: "CoverageReport") -> None:
        for label, amount in other.counts.items():
            self.counts[label] = self.counts.get(label, 0) + amount

    @property
    def fired_sites(self) -> Tuple[str, ...]:
        return tuple(
            site for site in ALL_SITES if self.counts.get(site, 0) > 0
        )

    @property
    def percent(self) -> float:
        return 100.0 * len(self.fired_sites) / len(ALL_SITES)

    def families_covered(self) -> Tuple[str, ...]:
        fired = {site.split(":", 1)[0] for site in self.fired_sites}
        return tuple(sorted(fired))

    @property
    def total_delivered(self) -> int:
        return sum(self.counts.values())

    def family_counts(self) -> Dict[str, int]:
        totals: Dict[str, int] = {family: 0 for family in KNOWN_SITES}
        for label, amount in self.counts.items():
            family = label.split(":", 1)[0]
            totals[family] = totals.get(family, 0) + amount
        return totals

    def to_dict(self) -> Dict[str, object]:
        return {
            "sites": dict(sorted(self.counts.items())),
            "fired": list(self.fired_sites),
            "percent": round(self.percent, 2),
            "families": list(self.families_covered()),
        }

    def publish(self, registry) -> None:
        """Push the counts into an obs metrics registry."""
        for label, amount in sorted(self.counts.items()):
            name = "nemesis_faults_" + label.replace(":", "_")
            counter = registry.counter(name)
            if amount:
                counter.inc(amount)
        registry.gauge("nemesis_fault_site_coverage_percent").set(
            round(self.percent, 2)
        )
        registry.gauge("nemesis_fault_sites_fired").set(
            len(self.fired_sites)
        )
