"""Repro bundles: a violation you can hand to someone else.

A bundle is a directory (or a single ``bundle.json``) that pins one
minimized violation completely: the system spec, the minimal fault
plan, the violation identity (invariant + event index + seed), the
search provenance (search seed, plan index, pre-shrink action count),
a structured JSONL trace of the violating run and the ``explain``
output for the violating process where one exists.
``repro nemesis replay BUNDLE`` re-executes it deterministically and
verifies the *identical* violation — same invariant, same event index
— as many times as asked.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.nemesis.executor import NemesisRunResult, NemesisSpec, run_plan
from repro.nemesis.invariants import InvariantViolation
from repro.nemesis.plan import FaultPlan

__all__ = ["Bundle", "write_bundle", "read_bundle", "replay_bundle"]

_FORMAT = "repro/nemesis-bundle"


@dataclass
class Bundle:
    """One minimized, replayable violation."""

    spec: NemesisSpec
    plan: FaultPlan
    violation: InvariantViolation
    #: Provenance: search seed, plan index, action count before shrink.
    search: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": _FORMAT,
            "version": 1,
            "spec": self.spec.to_dict(),
            "plan": self.plan.to_dict(),
            "violation": self.violation.to_dict(),
            "search": dict(self.search),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Bundle":
        if payload.get("format") != _FORMAT:
            raise ValueError(
                f"not a nemesis bundle: format={payload.get('format')!r}"
            )
        return cls(
            spec=NemesisSpec.from_dict(payload["spec"]),
            plan=FaultPlan.from_dict(payload["plan"]),
            violation=InvariantViolation.from_dict(payload["violation"]),
            search=dict(payload.get("search", {})),
        )


def _trace_and_explain(bundle: Bundle, directory: str, invariants) -> None:
    """Best-effort artefacts: a JSONL trace of the violating run and
    the explain output for its last recorded decision."""
    from repro.obs import JsonlSink, TraceBus, explain_trace, read_trace

    trace_path = os.path.join(directory, "trace.jsonl")
    bus = TraceBus()
    bus.subscribe(JsonlSink(trace_path))
    try:
        run_plan(
            bundle.spec,
            bundle.plan,
            invariants=invariants() if invariants is not None else None,
            trace=bus,
        )
    finally:
        bus.close()
    try:
        explanation = explain_trace(read_trace(trace_path))
    except Exception:
        explanation = None
    explain_path = os.path.join(directory, "explain.txt")
    with open(explain_path, "w", encoding="utf-8") as handle:
        handle.write(bundle.violation.describe() + "\n\n")
        if explanation is not None:
            handle.write(explanation.render() + "\n")


def write_bundle(
    directory: str,
    bundle: Bundle,
    invariants=None,
    with_trace: bool = True,
) -> str:
    """Write a bundle directory; returns the ``bundle.json`` path.

    ``invariants`` is the zero-argument invariant factory the violating
    run used (fresh instances per run keep replays independent).
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "bundle.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(bundle.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    if with_trace:
        _trace_and_explain(bundle, directory, invariants)
    return path


def read_bundle(path: str) -> Bundle:
    """Load a bundle from a directory or a ``bundle.json`` path."""
    if os.path.isdir(path):
        path = os.path.join(path, "bundle.json")
    with open(path, "r", encoding="utf-8") as handle:
        return Bundle.from_dict(json.load(handle))


@dataclass
class ReplayReport:
    """Outcome of deterministically re-executing a bundle."""

    bundle: Bundle
    results: List[NemesisRunResult]

    @property
    def reproduced(self) -> bool:
        """Every replay hit the identical violation (invariant + event)."""
        expected = self.bundle.violation.identity
        return bool(self.results) and all(
            result.violation is not None
            and result.violation.identity == expected
            for result in self.results
        )

    def describe(self) -> str:
        expected = self.bundle.violation
        lines = [
            f"expected: {expected.describe()}",
        ]
        for index, result in enumerate(self.results):
            got = (
                result.violation.describe()
                if result.violation is not None
                else "no violation"
            )
            match = (
                result.violation is not None
                and result.violation.identity == expected.identity
            )
            lines.append(
                f"replay {index + 1}: {got} "
                f"[{'match' if match else 'MISMATCH'}]"
            )
        return "\n".join(lines)


def replay_bundle(
    path_or_bundle,
    runs: int = 2,
    invariants: Optional[object] = None,
    trace=None,
    metrics_registry=None,
) -> ReplayReport:
    """Re-execute a bundle ``runs`` times; report identity matches.

    ``invariants`` is a zero-argument factory returning fresh
    :class:`~repro.nemesis.invariants.Invariant` instances per run
    (``None`` = the default registry).
    """
    bundle = (
        path_or_bundle
        if isinstance(path_or_bundle, Bundle)
        else read_bundle(path_or_bundle)
    )
    results = [
        run_plan(
            bundle.spec,
            bundle.plan,
            invariants=invariants() if invariants is not None else None,
            trace=trace,
            metrics_registry=metrics_registry,
        )
        for _ in range(runs)
    ]
    return ReplayReport(bundle=bundle, results=results)
