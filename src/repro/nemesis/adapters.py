"""Adapters: the five existing injector families driven by one plan.

Each adapter keeps the *mechanism* of its injector family (the policy
interfaces the subsystems, network and runner already consult) but
takes its *decisions* from the shared :class:`~repro.nemesis.plan.FaultPlan`
timeline:

* :class:`PlannedSubsystemFaults` — a
  :class:`~repro.subsystems.failures.FailurePolicy` answering
  ``fault_for`` from the plan's windowed ``abort``/``latency``/
  ``hang``/``crash`` actions.  A plan-level ``crash`` is a *windowed
  outage*: every attempt on the target service inside the window fails
  fast — crash-stop semantics without parking the subsystem behind a
  wall-clock the federated schedulers (which run without a resilience
  manager) could never advance past.  A per-service consecutive cap
  preserves the bounded-failure assumption guaranteed termination
  rests on (Definition 3), exactly like
  :class:`~repro.subsystems.failures.ChaosPolicy`.
* :class:`PlannedMessageFaults` — a
  :class:`~repro.fed.messages.MessageFaultPolicy` whose per-message
  drop/delay/duplicate verdicts consult the plan's active windows (and
  an explicit ``random.Random(plan.seed)`` for the probability draws)
  instead of flat rates.
* :func:`kill_schedule` / :func:`partition_schedule` — translate
  ``kill``/``partition`` actions into the exact
  ``(time, shard, downtime)`` / ``(time, a, b, duration)`` tuples the
  :class:`~repro.fed.runner.FederationRunner` already accepts.
* :func:`disk_arming` / :func:`wal_crash_triggers` — the state-driven
  families: fsync-failure arming of the run's
  :class:`~repro.subsystems.failures.DiskFaultPolicy` at plan time,
  and LSN-threshold shard crashes, both fired by the nemesis monitor's
  per-round hook.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fed.messages import MessageFaultPolicy
from repro.nemesis.plan import FaultAction, FaultPlan
from repro.subsystems.failures import FailurePolicy, Fault, FaultKind

__all__ = [
    "PlannedSubsystemFaults",
    "PlannedMessageFaults",
    "kill_schedule",
    "partition_schedule",
    "disk_arming",
    "wal_crash_triggers",
]

#: Default hang magnitude when an action does not set ``param``.
_DEFAULT_HANG = 6.0


class PlannedSubsystemFaults(FailurePolicy):
    """Subsystem-fault slices of a plan, behind the FailurePolicy API."""

    def __init__(
        self,
        plan: FaultPlan,
        clock,
        max_consecutive: int = 4,
    ) -> None:
        self._actions = plan.by_kind("abort", "latency", "hang", "crash")
        self._clock = clock
        self._max_consecutive = max_consecutive
        self._consecutive: Dict[str, int] = {}
        #: Faults delivered, by kind (coverage accounting).
        self.injected: Dict[str, int] = {
            "abort": 0,
            "latency": 0,
            "hang": 0,
            "crash": 0,
        }

    def _active_action(self, service: str, now: float) -> Optional[FaultAction]:
        for action in self._actions:
            if action.target == service and action.active(now):
                return action
        return None

    def fault_for(self, service: str, attempt: int) -> Optional[Fault]:
        action = self._active_action(service, self._clock.now)
        if action is None:
            return None
        if self._consecutive.get(service, 0) >= self._max_consecutive:
            # Bounded failures: after max_consecutive injected faults in
            # a row the next attempt must succeed, whatever the window
            # says — Definition 3's "some invocation m commits".
            self._consecutive[service] = 0
            return None
        self._consecutive[service] = self._consecutive.get(service, 0) + 1
        self.injected[action.kind] += 1
        if action.kind == "abort" or action.kind == "crash":
            # A planned crash is a windowed fail-fast outage of the
            # service: atomicity makes it indistinguishable from an
            # abort at the invocation, and the window (not a subsystem
            # down-clock) bounds it.
            return Fault(FaultKind.ABORT)
        if action.kind == "latency":
            return Fault(FaultKind.LATENCY, action.param or 1.0)
        return Fault(FaultKind.HANG, action.param or _DEFAULT_HANG)

    def should_fail(self, service: str, attempt: int) -> bool:
        return self.fault_for(service, attempt) is not None

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())


class PlannedMessageFaults(MessageFaultPolicy):
    """Message-fault slices of a plan, behind the MessageFaultPolicy API.

    Base rates stay zero; the overridden verdicts consult the plan's
    active ``msg_*`` windows with the window's own probability
    (``param``), drawn from an explicit ``random.Random(plan.seed)``.
    Partitions are *not* decided here — :func:`partition_schedule`
    turns them into runner events so healing wakes blocked work.
    """

    def __init__(self, plan: FaultPlan, clock) -> None:
        super().__init__(seed=plan.seed)
        self._plan_rng = random.Random(plan.seed * 2654435761 % 2**31)
        self._clock = clock
        self._drops = plan.by_kind("msg_drop")
        self._delays = plan.by_kind("msg_delay")
        self._dups = plan.by_kind("msg_dup")

    def _active(
        self, actions: Tuple[FaultAction, ...]
    ) -> Optional[FaultAction]:
        now = self._clock.now
        for action in actions:
            if action.active(now):
                return action
        return None

    def drop(self) -> bool:
        action = self._active(self._drops)
        if action is not None and self._plan_rng.random() < action.param:
            self.injected["drop"] += 1
            return True
        return False

    def delay(self) -> float:
        action = self._active(self._delays)
        if action is not None and self._plan_rng.random() < action.param:
            self.injected["delay"] += 1
            return self._plan_rng.uniform(*self.delay_span)
        return 0.0

    def duplicate(self) -> bool:
        action = self._active(self._dups)
        if action is not None and self._plan_rng.random() < action.param:
            self.injected["duplicate"] += 1
            return True
        return False


#: Margin keeping recovery instants clear of other chaos events, so
#: same-timestamp DES ties between a recovery and a kill/heal cannot
#: occur (plan times carry 3 decimals; 0.01 is one order above).
_RECOVERY_MARGIN = 0.01


def kill_schedule(
    plan: FaultPlan, shards: Sequence[str]
) -> List[Tuple[float, str, float]]:
    """``kill`` actions as the runner's ``(time, shard, downtime)`` rows.

    Outage windows are serialized *across all shards*: a kill that
    starts before an earlier kill's recovery instant is dropped.  Shard
    recovery drains the recovered scheduler synchronously in frozen
    virtual time, so every peer must be reachable at the recovery
    instant — the same staggered-outage assumption the federation
    chaos sweeps encode with spaced kill times.  (Killing an
    already-dead shard is also meaningless: the runner schedules one
    recovery per kill.)
    """
    known = set(shards)
    busy_until = -1.0
    rows: List[Tuple[float, str, float]] = []
    for action in sorted(plan.by_kind("kill"), key=lambda a: a.at):
        if action.target not in known:
            continue
        downtime = action.duration or 2.0
        if action.at <= busy_until + _RECOVERY_MARGIN:
            continue
        busy_until = action.at + downtime
        rows.append((action.at, action.target, downtime))
    return rows


def partition_schedule(
    plan: FaultPlan,
    shards: Sequence[str],
    avoid: Sequence[float] = (),
) -> List[Tuple[float, str, str, float]]:
    """``partition`` actions as ``(time, a, b, duration)`` runner rows.

    ``avoid`` lists recovery instants (from :func:`kill_schedule`):
    a partition whose window contains one is dropped, because the
    synchronous recovery drain at that instant needs every peer link
    up — a cross-shard compensation retried against a cut link in
    frozen virtual time would never terminate.
    """
    known = set(shards)
    rows: List[Tuple[float, str, str, float]] = []
    for action in plan.by_kind("partition"):
        a, _, b = action.target.partition("|")
        if a not in known or b not in known or a == b:
            continue
        duration = action.duration or 1.0
        if any(
            action.at - _RECOVERY_MARGIN
            <= instant
            <= action.at + duration + _RECOVERY_MARGIN
            for instant in avoid
        ):
            continue
        rows.append((action.at, a, b, duration))
    return rows


def disk_arming(plan: FaultPlan) -> List[Tuple[float, int]]:
    """``fsync_fail`` actions as ``(arm_time, count)`` monitor triggers."""
    return [
        (action.at, max(1, int(action.param)))
        for action in plan.by_kind("fsync_fail")
    ]


def wal_crash_triggers(
    plan: FaultPlan, shards: Sequence[str]
) -> List[Tuple[str, int, float]]:
    """``wal_crash`` actions as ``(shard, lsn, downtime)`` triggers."""
    known = set(shards)
    return [
        (action.target, max(1, int(action.param)), action.duration or 2.0)
        for action in plan.by_kind("wal_crash")
        if action.target in known
    ]
