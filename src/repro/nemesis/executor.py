"""Execute one fault plan against a full federated system.

This is the nemesis counterpart of
:func:`repro.sim.federation.run_federation`: the same deterministic
build (seeded workload, per-group subsystems, service-ownership
router, discrete-event federation runner), but with every injector
family driven by one :class:`~repro.nemesis.plan.FaultPlan` and an
online invariant registry evaluated *during* the run through the
runner's per-round hook.  A violation halts the run at the offending
round, pinned to its earliest offending event; a clean run ends with
the usual offline certification plus the 2PC decision audit, folded
into the result as a synthetic ``certification`` violation when dirty
(so the search layer has exactly one signal to minimize).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.core.conflict import ExplicitConflicts
from repro.errors import ReproError
from repro.fed.federation import Federation
from repro.fed.messages import FederationNetwork
from repro.fed.router import ShardRouter
from repro.fed.runner import FederationRunMetrics, FederationRunner
from repro.nemesis.adapters import (
    PlannedMessageFaults,
    PlannedSubsystemFaults,
    disk_arming,
    kill_schedule,
    partition_schedule,
    wal_crash_triggers,
)
from repro.nemesis.coverage import CoverageReport
from repro.nemesis.invariants import (
    Invariant,
    InvariantViolation,
    default_invariants,
)
from repro.nemesis.plan import FaultPlan
from repro.obs.bus import tracing
from repro.sim.certify import Certification, certify_history
from repro.sim.clock import VirtualClock
from repro.sim.workload import WorkloadSpec, generate_process
from repro.subsystems.backend import BACKEND_KINDS, BackendHub
from repro.subsystems.failures import DiskFaultPolicy
from repro.subsystems.recovery import scan_wal
from repro.subsystems.services import counter_service
from repro.subsystems.subsystem import Subsystem

__all__ = ["NemesisSpec", "NemesisRunResult", "run_plan"]


@dataclass(frozen=True)
class NemesisSpec:
    """The system-under-test a nemesis run drives a plan against."""

    shards: int = 2
    service_groups: int = 4
    services_per_group: int = 2
    processes_per_group: int = 2
    cross_shard_fraction: float = 0.25
    conflict_rate: float = 0.05
    shard_capacity: int = 4
    indoubt_timeout: float = 5.0
    prefix_range: Tuple[int, int] = (1, 2)
    suffix_range: Tuple[int, int] = (1, 2)
    alternative_probability: float = 0.25
    #: Store backend behind every subsystem; ``sqlite``/``procpool``
    #: make the disk and kill families physically real.
    backend: str = "memory"
    #: Workload seed (the plan carries the *fault* seed separately).
    seed: int = 0
    #: Evaluate expensive invariants every N runner rounds.
    check_every: int = 8
    #: Virtual-time horizon random plans spread their triggers over.
    horizon: float = 24.0
    #: Per-service cap on consecutive planned subsystem faults.
    max_consecutive: int = 4

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("need at least one shard")
        if self.service_groups < self.shards:
            raise ValueError("need at least one service group per shard")
        if self.backend not in BACKEND_KINDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{', '.join(BACKEND_KINDS)}"
            )

    def shard_names(self) -> List[str]:
        return [f"s{index}" for index in range(self.shards)]

    def service_names(self) -> List[str]:
        return [
            f"g{group}s{index}"
            for group in range(self.service_groups)
            for index in range(self.services_per_group)
        ]

    def with_seed(self, seed: int) -> "NemesisSpec":
        return replace(self, seed=seed)

    def to_dict(self) -> Dict[str, object]:
        return {
            "shards": self.shards,
            "service_groups": self.service_groups,
            "services_per_group": self.services_per_group,
            "processes_per_group": self.processes_per_group,
            "cross_shard_fraction": self.cross_shard_fraction,
            "conflict_rate": self.conflict_rate,
            "shard_capacity": self.shard_capacity,
            "indoubt_timeout": self.indoubt_timeout,
            "prefix_range": list(self.prefix_range),
            "suffix_range": list(self.suffix_range),
            "alternative_probability": self.alternative_probability,
            "backend": self.backend,
            "seed": self.seed,
            "check_every": self.check_every,
            "horizon": self.horizon,
            "max_consecutive": self.max_consecutive,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "NemesisSpec":
        data = dict(payload)
        for key in ("prefix_range", "suffix_range"):
            if key in data:
                data[key] = tuple(data[key])
        known = {name for name in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class NemesisRunResult:
    """Everything one plan execution produced."""

    spec: NemesisSpec
    plan: FaultPlan
    #: The first invariant breach (online or synthesized from a failed
    #: end-of-run certification); ``None`` for a clean run.
    violation: Optional[InvariantViolation]
    #: Offline verdict; ``None`` when the run halted mid-flight.
    certification: Optional[Certification]
    audit_clean: bool
    coverage: CoverageReport
    metrics: Optional[FederationRunMetrics]
    #: True when an online invariant stopped the run early.
    halted: bool = False
    rounds: int = 0

    @property
    def clean(self) -> bool:
        return self.violation is None


class _NemesisHalt(Exception):
    """Internal control flow: an online invariant fired; stop the run."""


class _Monitor:
    """Per-round observer: state-driven fault arming + invariant checks.

    Doubles as the ``view`` the invariants consult (live federation,
    cached merged history, fault-delivery counts).
    """

    def __init__(
        self,
        spec: NemesisSpec,
        federation: Federation,
        runner: FederationRunner,
        sub_faults: PlannedSubsystemFaults,
        msg_faults: PlannedMessageFaults,
        disk_faults: DiskFaultPolicy,
        hub: Optional[BackendHub],
        plan: FaultPlan,
        invariants: List[Invariant],
        kills: List[Tuple[float, str, float]] = (),
        partitions: List[Tuple[float, str, str, float]] = (),
    ) -> None:
        self.spec = spec
        self.federation = federation
        self.runner = runner
        self.sub_faults = sub_faults
        self.msg_faults = msg_faults
        self.disk_faults = disk_faults
        self.hub = hub
        self.invariants = invariants
        self.now = 0.0
        self.rounds = 0
        self.violation: Optional[InvariantViolation] = None
        self._disk_pending = sorted(disk_arming(plan))
        self._wal_triggers = wal_crash_triggers(plan, spec.shard_names())
        self._kill_windows = [(at, at + downtime) for at, _, downtime in kills]
        self._partition_windows = [
            (at, at + duration) for at, _, _, duration in partitions
        ]
        self._wal_fired: Set[int] = set()
        self.walcrash_kills = 0
        self.trace = federation.trace
        self._alive = {
            shard_id: True for shard_id in federation.shards
        }
        self._history_cache: Tuple[int, object] = (-1, None)

    # -- the view the invariants consult -------------------------------

    def history(self):
        stamp = sum(
            shard.scheduler.timeline_length() if shard.alive else 0
            for shard in self.federation.shards.values()
        ) + self.rounds
        cached_key, cached = self._history_cache
        if cached_key == stamp and cached is not None:
            return cached
        merged = self.federation.merged_history()
        self._history_cache = (stamp, merged)
        return merged

    def family_deliveries(self) -> Dict[str, int]:
        total_kills = sum(
            shard.kills for shard in self.federation.shards.values()
        )
        return {
            "subsystem": self.sub_faults.total_injected,
            "message": sum(self.msg_faults.injected.values()),
            "disk": self.disk_faults.total_delivered,
            "kill": max(0, total_kills - self.walcrash_kills),
            "walcrash": self.walcrash_kills,
        }

    def wal_outcomes(self) -> Dict[str, Set[str]]:
        committed: Set[str] = set()
        aborted: Set[str] = set()
        for shard in self.federation.shards.values():
            scan = scan_wal(shard.wal)
            committed |= scan.committed
            aborted |= scan.aborted
        return {"committed": committed, "aborted": aborted}

    # -- per-round hook -------------------------------------------------

    def on_round(self, now: float) -> None:
        self.now = now
        self.rounds += 1
        while self._disk_pending and self._disk_pending[0][0] <= now:
            _, count = self._disk_pending.pop(0)
            self.disk_faults.fail_fsync += count
        self._fire_wal_crashes(now)
        self._mirror_physical_kills()
        for invariant in self.invariants:
            if invariant.expensive and self.rounds % self.spec.check_every:
                continue
            violation = invariant.check(self)
            if violation is not None:
                self.violation = violation
                bus = tracing(self.trace)
                if bus is not None:
                    bus.emit(
                        "nemesis_invariant",
                        invariant=violation.invariant,
                        detail=violation.detail,
                        online=True,
                    )
                raise _NemesisHalt()

    def _wal_crash_safe(self, now: float, downtime: float) -> bool:
        """May a WAL-threshold crash-stop fire at ``now``?

        The outage ``[now, now + downtime]`` must not overlap a planned
        kill window (kill and recovery alike need the other shards up),
        and the recovery instant must not fall inside a partition
        window — the synchronous recovery drain retries cross-shard
        work in frozen virtual time, so an unreachable peer at that
        instant would never become reachable.  An unsafe round simply
        defers the trigger: the WAL-length condition stays true, so the
        crash fires at the next safe round.
        """
        margin = 0.01
        recovery = now + downtime
        for start, end in self._kill_windows:
            if start <= recovery + margin and end >= now - margin:
                return False
        for start, end in self._partition_windows:
            if start - margin <= recovery <= end + margin:
                return False
        return True

    def _fire_wal_crashes(self, now: float) -> None:
        for index, (shard_id, lsn, downtime) in enumerate(
            self._wal_triggers
        ):
            if index in self._wal_fired:
                continue
            if not all(
                shard.alive for shard in self.federation.shards.values()
            ):
                # Some shard is mid-outage: firing now would overlap
                # outages, and its recovery drain needs every peer up.
                return
            shard = self.federation.shards[shard_id]
            if len(shard.wal.records()) < lsn:
                continue
            if not self._wal_crash_safe(now, downtime):
                continue
            self._wal_fired.add(index)
            self.walcrash_kills += 1
            bus = tracing(self.trace)
            if bus is not None:
                bus.emit(
                    "nemesis_action",
                    family="walcrash",
                    shard=shard_id,
                    lsn=lsn,
                    downtime=downtime,
                )
            self.runner._kill_event(shard_id)()
            self.runner.queue.schedule_at(
                now + downtime, self.runner._recover_event(shard_id)
            )
            return  # one crash per round; the shard is now down

    def _mirror_physical_kills(self) -> None:
        """Under the procpool backend a shard kill also SIGKILLs the
        store worker — the crash is an OS fact, not bookkeeping; the
        next store call probes and respawns the pool against the
        surviving on-disk state."""
        for shard_id, shard in self.federation.shards.items():
            was_alive = self._alive[shard_id]
            self._alive[shard_id] = shard.alive
            if (
                was_alive
                and not shard.alive
                and self.hub is not None
                and self.spec.backend == "procpool"
            ):
                self.hub.host.kill()

    def finalize(self) -> Optional[InvariantViolation]:
        """End-of-run pass: every invariant's ``final`` check."""
        for invariant in self.invariants:
            violation = invariant.final(self)
            if violation is not None:
                self.violation = violation
                bus = tracing(self.trace)
                if bus is not None:
                    bus.emit(
                        "nemesis_invariant",
                        invariant=violation.invariant,
                        detail=violation.detail,
                        online=False,
                    )
                return violation
        return None


def _build(
    spec: NemesisSpec,
    plan: FaultPlan,
    invariants: List[Invariant],
    trace=None,
    hub: Optional[BackendHub] = None,
):
    rng = random.Random(spec.seed)
    clock = VirtualClock()
    group_services: List[List[str]] = []
    owners: Dict[str, str] = {}
    subsystems: List[Subsystem] = []
    for group in range(spec.service_groups):
        shard = f"s{group % spec.shards}"
        services = [
            f"g{group}s{index}"
            for index in range(spec.services_per_group)
        ]
        group_services.append(services)
        name = f"grp{group}"
        subsystem = Subsystem(
            name,
            backend=hub.backend_for(name) if hub is not None else None,
        )
        for service in services:
            subsystem.register(counter_service(service, key=service))
            owners[service] = shard
        subsystems.append(subsystem)

    all_services = [svc for services in group_services for svc in services]
    pairs = []
    for i, left in enumerate(all_services):
        for right in all_services[i + 1:]:
            if spec.conflict_rate and rng.random() < spec.conflict_rate:
                pairs.append((left, right))
    conflicts = ExplicitConflicts(pairs)

    shape = WorkloadSpec(
        processes=1,
        prefix_range=spec.prefix_range,
        suffix_range=spec.suffix_range,
        alternative_probability=spec.alternative_probability,
        max_depth=1,
        seed=spec.seed,
    )

    msg_faults = PlannedMessageFaults(plan, clock)
    network = FederationNetwork(msg_faults)
    federation = Federation(
        ShardRouter(owners),
        subsystems,
        network=network,
        conflicts=conflicts,
        clock=clock,
        trace=trace,
        indoubt_timeout=spec.indoubt_timeout,
    )
    sub_faults = PlannedSubsystemFaults(
        plan, clock, max_consecutive=spec.max_consecutive
    )
    for group in range(spec.service_groups):
        for index in range(spec.processes_per_group):
            pool = list(group_services[group])
            if (
                spec.service_groups > 1
                and rng.random() < spec.cross_shard_fraction
            ):
                other = rng.randrange(spec.service_groups - 1)
                if other >= group:
                    other += 1
                pool += group_services[other]
            process = generate_process(rng, shape, f"P{group}-{index}", pool)
            federation.submit(process, failures=sub_faults)

    shard_names = spec.shard_names()
    kills = kill_schedule(plan, shard_names)
    # Partitions must not span a recovery instant: the synchronous
    # recovery drain needs every peer link up (see partition_schedule).
    recovery_instants = [at + downtime for at, _, downtime in kills]
    partitions = partition_schedule(
        plan, shard_names, avoid=recovery_instants
    )
    runner = FederationRunner(
        federation,
        capacity=spec.shard_capacity,
        kills=kills,
        partitions=partitions,
    )
    monitor = _Monitor(
        spec,
        federation,
        runner,
        sub_faults,
        msg_faults,
        hub.faults if hub is not None else DiskFaultPolicy(),
        hub,
        plan,
        invariants,
        kills=kills,
        partitions=partitions,
    )
    runner.on_round = monitor.on_round
    return federation, runner, monitor


def _collect_coverage(monitor: _Monitor) -> CoverageReport:
    report = CoverageReport()
    for kind, amount in monitor.sub_faults.injected.items():
        report.record("subsystem", kind, amount)
    for kind, amount in monitor.msg_faults.injected.items():
        report.record("message", kind, amount)
    report.record("disk", "fsync", monitor.disk_faults.delivered["fsync"])
    deliveries = monitor.family_deliveries()
    report.record("kill", "kill", deliveries["kill"])
    report.record("walcrash", "wal_crash", deliveries["walcrash"])
    return report


def run_plan(
    spec: NemesisSpec,
    plan: FaultPlan,
    invariants: Optional[List[Invariant]] = None,
    trace=None,
    metrics_registry=None,
) -> NemesisRunResult:
    """Run one plan against one system spec; never raises on violation.

    The result's ``violation`` is the single signal the search and
    shrink layers consume: an online invariant breach (run halted at
    the offending round) or, for runs that finished, a synthetic
    ``certification`` violation when the offline checkers or the 2PC
    decision audit come back dirty.
    """
    registry = (
        list(invariants) if invariants is not None else default_invariants()
    )
    hub = (
        BackendHub(spec.backend, faults=DiskFaultPolicy())
        if spec.backend != "memory"
        else None
    )
    certification: Optional[Certification] = None
    audit_clean = True
    metrics: Optional[FederationRunMetrics] = None
    halted = False
    try:
        federation, runner, monitor = _build(
            spec, plan, registry, trace=trace, hub=hub
        )
        bus = tracing(trace)
        if bus is not None:
            bus.emit(
                "run_begin",
                harness="nemesis",
                seed=spec.seed,
                plan_seed=plan.seed,
                actions=len(plan),
                backend=spec.backend,
            )
        try:
            metrics = runner.run()
        except _NemesisHalt:
            halted = True
        if not halted:
            history = federation.merged_history()
            try:
                certification = certify_history(
                    history, federation.all_terminated()
                )
                audit = federation.validate()
                audit_clean = audit.clean
            except ReproError as error:
                # The offline checkers could not even replay the
                # history (e.g. a vetoed cross-shard alternative after
                # partial F-REC compensation leaves no failed-attempt
                # event for the replayer to explain).  A history the
                # certifier cannot explain is a reportable finding,
                # never a harness crash.
                certification = None
                audit_clean = False
                monitor.violation = InvariantViolation(
                    invariant="certification",
                    event_index=len(history),
                    time=monitor.now,
                    detail=f"history not certifiable: {error}",
                )
            if monitor.violation is None:
                monitor.finalize()
            if (
                monitor.violation is None
                and certification is not None
                and not (certification.certified and audit_clean)
            ):
                monitor.violation = InvariantViolation(
                    invariant="certification",
                    event_index=len(history),
                    time=monitor.now,
                    detail=(
                        f"{certification.describe()} audit_clean="
                        f"{audit_clean}"
                    ),
                )
        violation = monitor.violation
        coverage = _collect_coverage(monitor)
        rounds = monitor.rounds
        bus = tracing(trace)
        if bus is not None:
            bus.emit(
                "run_end",
                harness="nemesis",
                seed=spec.seed,
                plan_seed=plan.seed,
                halted=halted,
                violation=(
                    violation.describe() if violation is not None else ""
                ),
                coverage=round(coverage.percent, 2),
            )
    finally:
        if hub is not None:
            hub.close()
    if metrics_registry is not None:
        coverage.publish(metrics_registry)
        metrics_registry.counter("nemesis_plans_run").inc()
        if violation is not None:
            metrics_registry.counter("nemesis_violations_found").inc()
    return NemesisRunResult(
        spec=spec,
        plan=plan,
        violation=violation,
        certification=certification,
        audit_clean=audit_clean,
        coverage=coverage,
        metrics=metrics,
        halted=halted,
        rounds=rounds,
    )
