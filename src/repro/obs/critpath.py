"""Commit-latency attribution along each process's critical path.

Where did a committed process's wall-clock (virtual) time actually go?
This module answers that by segmenting each process span ``[start, end]``
into non-overlapping **phase slices** and summing per-phase time:

* ``exec`` — an activity was executing at a subsystem;
* ``2pc-vote`` — the cross-shard vote round of the process's harden
  group was open (``xshard_begin`` .. ``xshard_decision``);
* ``decision-persist`` — the decision was taken but its resend-until-
  acked persistence tail had not yet closed (``xshard_decision`` ..
  ``xshard_end``);
* ``queue-wait`` — the process sat in the admission queue
  (``queued`` .. ``admitted``);
* ``graph-admission`` — the process was admitted but a scheduler or
  federation rule deferred its next step (a ``deferred`` event opens
  the interval; the next execution dispatch closes it);
* ``fsync`` — reserved for backends that model durable-write latency;
  WAL appends/syncs are instantaneous in virtual time, so the phase
  carries event counts but (today) zero duration;
* ``other`` — time covered by none of the above (e.g. the gap between
  an activity completing and the scheduler's next step).

Overlapping phases are resolved by a fixed priority (``_PRIORITY``
below): execution beats the 2PC rounds, which beat waiting.  Because
the slices partition the process interval exactly, per-phase durations
**reconcile with end-to-end latency by construction** — the residual
reported by :func:`reconcile` is pure floating-point noise, and
benchmark X16 gates it at 1%.

The input is the span DAG from :func:`repro.obs.spans.derive_spans`
plus the raw record stream (for ``deferred`` events and WAL counters).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.spans import Span, derive_spans

__all__ = [
    "PHASES",
    "PhaseSlice",
    "CriticalPath",
    "critical_paths",
    "attribution",
    "reconcile",
]

#: Every phase a slice may carry, in priority order (highest first).
PHASES = (
    "exec",
    "2pc-vote",
    "decision-persist",
    "fsync",
    "queue-wait",
    "graph-admission",
    "other",
)

_PRIORITY = {phase: rank for rank, phase in enumerate(PHASES)}


@dataclass
class PhaseSlice:
    """A maximal sub-interval of a process span owned by one phase."""

    phase: str
    start: float
    end: float
    #: ``span_id`` of the winning span, when a derived span owns the
    #: slice (``None`` for ``graph-admission`` and ``other`` slices).
    span: Optional[int] = None

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)


@dataclass
class CriticalPath:
    """One process's latency attribution."""

    process: str
    start: float
    end: float
    slices: List[PhaseSlice] = field(default_factory=list)
    #: phase -> total attributed time (seconds of virtual time).
    phases: Dict[str, float] = field(default_factory=dict)
    #: phase -> number of contributing events/intervals (``fsync``
    #: counts WAL appends/syncs even though they are instantaneous).
    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    @property
    def reconciliation_error(self) -> float:
        """|sum of phase times - end-to-end duration| (absolute)."""
        return abs(sum(self.phases.values()) - self.duration)

    @property
    def dominant(self) -> Optional[str]:
        """The phase that owns the most time (priority breaks ties).

        ``None`` when the process has zero duration (nothing to blame).
        """
        best: Optional[str] = None
        best_time = 0.0
        for phase in PHASES:
            time = self.phases.get(phase, 0.0)
            if time > best_time:
                best, best_time = phase, time
        return best


def _segment(
    start: float,
    end: float,
    intervals: Sequence[Tuple[str, float, float, Optional[int]]],
) -> List[PhaseSlice]:
    """Partition ``[start, end]`` among prioritized candidate intervals."""
    if end <= start:
        return []
    points = {start, end}
    clipped: List[Tuple[str, float, float, Optional[int]]] = []
    for phase, lo, hi, span_id in intervals:
        lo, hi = max(lo, start), min(hi, end)
        if hi <= lo:
            continue
        clipped.append((phase, lo, hi, span_id))
        points.add(lo)
        points.add(hi)
    cuts = sorted(points)
    slices: List[PhaseSlice] = []
    for a, b in zip(cuts, cuts[1:]):
        mid = (a + b) / 2.0
        winner: Tuple[int, Optional[int]] = (_PRIORITY["other"], None)
        for phase, lo, hi, span_id in clipped:
            if lo <= mid < hi and _PRIORITY[phase] < winner[0]:
                winner = (_PRIORITY[phase], span_id)
        phase = PHASES[winner[0]]
        if slices and slices[-1].phase == phase and slices[-1].span == winner[1]:
            slices[-1].end = b
        else:
            slices.append(PhaseSlice(phase, a, b, span=winner[1]))
    return slices


def critical_paths(
    records: Iterable[Dict[str, Any]],
    spans: Optional[Sequence[Span]] = None,
) -> Dict[str, CriticalPath]:
    """Latency attribution for every process in an exported stream.

    Pass ``spans`` to reuse an already-derived span DAG; otherwise the
    stream is materialized and :func:`derive_spans` runs here.
    """
    records = list(records)
    if spans is None:
        spans = derive_spans(records)

    bounds: Dict[str, Tuple[float, float]] = {}
    by_process: Dict[str, List[Span]] = {}
    for span in spans:
        if span.process is None:
            continue
        if span.phase == "process":
            bounds[span.process] = (span.start, span.end)
        else:
            by_process.setdefault(span.process, []).append(span)

    exec_starts: Dict[str, List[float]] = {}
    for process, process_spans in by_process.items():
        exec_starts[process] = sorted(
            span.start for span in process_spans if span.phase == "exec"
        )

    # ``deferred`` opens a graph-admission wait; the next execution
    # dispatch (or the end of the process) closes it.  WAL traffic is
    # counted per process for the attribution table even though it is
    # instantaneous in virtual time.
    deferrals: Dict[str, List[Tuple[float, float]]] = {}
    wal_counts: Dict[str, int] = {}
    for record in records:
        kind = record.get("kind")
        process = record.get("process")
        if not process:
            continue
        if kind == "deferred":
            ts = float(record.get("ts") or 0.0)
            starts = exec_starts.get(process, [])
            index = bisect.bisect_right(starts, ts)
            close = (
                starts[index]
                if index < len(starts)
                else bounds.get(process, (ts, ts))[1]
            )
            deferrals.setdefault(process, []).append((ts, close))
        elif kind in ("wal_append", "wal_sync"):
            wal_counts[process] = wal_counts.get(process, 0) + 1

    paths: Dict[str, CriticalPath] = {}
    for process, (start, end) in bounds.items():
        intervals: List[Tuple[str, float, float, Optional[int]]] = []
        for span in by_process.get(process, []):
            if span.phase in _PRIORITY and span.phase != "other":
                intervals.append(
                    (span.phase, span.start, span.end, span.span_id)
                )
        for lo, hi in deferrals.get(process, []):
            intervals.append(("graph-admission", lo, hi, None))
        slices = _segment(start, end, intervals)
        phases: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for piece in slices:
            phases[piece.phase] = (
                phases.get(piece.phase, 0.0) + piece.duration
            )
            counts[piece.phase] = counts.get(piece.phase, 0) + 1
        # A vote round that resolved within one virtual instant leaves a
        # zero-width span — no time to attribute, but the round still
        # happened; record it so the table shows 2PC occurred.
        for span in by_process.get(process, []):
            if span.phase in ("2pc-vote", "decision-persist") and (
                span.duration == 0.0
            ):
                counts[span.phase] = counts.get(span.phase, 0) + 1
                phases.setdefault(span.phase, 0.0)
        if process in wal_counts:
            counts["fsync"] = counts.get("fsync", 0) + wal_counts[process]
            phases.setdefault("fsync", 0.0)
        paths[process] = CriticalPath(
            process=process,
            start=start,
            end=end,
            slices=slices,
            phases=phases,
            counts=counts,
        )
    return paths


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over an ascending sequence."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def attribution(
    paths: Dict[str, CriticalPath],
) -> Dict[str, Dict[str, float]]:
    """Fleet-wide per-phase table: total, share, p50/p95/p99, count.

    ``share`` is the phase's fraction of all attributed time; the
    percentiles are over per-process phase durations (processes where
    the phase never occurred do not contribute samples).
    """
    samples: Dict[str, List[float]] = {}
    counts: Dict[str, int] = {}
    for path in paths.values():
        for phase, time in path.phases.items():
            samples.setdefault(phase, []).append(time)
        for phase, count in path.counts.items():
            counts[phase] = counts.get(phase, 0) + count
    grand_total = sum(sum(values) for values in samples.values())
    table: Dict[str, Dict[str, float]] = {}
    for phase in PHASES:
        values = sorted(samples.get(phase, []))
        if not values and phase not in counts:
            continue
        total = sum(values)
        table[phase] = {
            "total": total,
            "share": (total / grand_total) if grand_total > 0 else 0.0,
            "p50": _percentile(values, 0.50),
            "p95": _percentile(values, 0.95),
            "p99": _percentile(values, 0.99),
            "processes": float(len(values)),
            "events": float(counts.get(phase, 0)),
        }
    return table


def reconcile(paths: Dict[str, CriticalPath]) -> float:
    """Worst relative reconciliation error across all processes.

    Returns ``max(|sum(phases) - duration| / duration)`` over processes
    with nonzero duration — the quantity benchmark X16 gates at 1%.
    """
    worst = 0.0
    for path in paths.values():
        if path.duration <= 0.0:
            continue
        worst = max(worst, path.reconciliation_error / path.duration)
    return worst
