"""A bounded-memory live operations console over the trace bus.

:class:`OpsConsole` subscribes to a :class:`~repro.obs.bus.TraceBus`
like any sink and renders a periodic snapshot of the run — throughput,
goodput, admission-queue depth, circuit-breaker states, per-phase p95
latency and shard health — on virtual-time interval boundaries.

Memory is O(live processes + services + shards + windows), never
O(events): aggregates live in sliding-window counters/histograms
(:mod:`repro.obs.metrics`) and the only per-process state kept is for
*live* processes, dropped the moment they terminate.  A 100k-arrival
soak streams through flat (benchmark X16 gates this).

The console renders to any writable stream (the CLI passes stderr so
machine-readable stdout stays clean).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set, TextIO

from repro.obs.metrics import WindowedCounter, WindowedHistogram

__all__ = ["OpsConsole"]


class OpsConsole:
    """Trace-bus sink that keeps a bounded live view and renders it.

    ``interval`` is the virtual-time period between renders (and the
    width of each metric window); ``windows`` is how many periods the
    sliding aggregates remember.  Pass ``out=None`` to aggregate
    without printing (``snapshot``/``render`` still work — the mode
    the unit tests and ``repro top``'s final summary use).
    """

    def __init__(
        self,
        interval: float = 5.0,
        windows: int = 12,
        out: Optional[TextIO] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("render interval must be positive")
        self.interval = interval
        self.out = out
        self.now = 0.0
        self.renders = 0
        self._next_render: Optional[float] = None
        # -- sliding aggregates (O(windows) each) ----------------------
        self._committed = WindowedCounter(
            "committed", width=interval, windows=windows
        )
        self._aborted = WindowedCounter(
            "aborted", width=interval, windows=windows
        )
        self._dispatched = WindowedCounter(
            "dispatched", width=interval, windows=windows
        )
        self._exec_ms = WindowedHistogram(
            "exec", width=interval, windows=windows
        )
        self._wait_ms = WindowedHistogram(
            "queue_wait", width=interval, windows=windows
        )
        self._sojourn_ms = WindowedHistogram(
            "sojourn", width=interval, windows=windows
        )
        # -- bounded live state ----------------------------------------
        #: live process -> first-seen timestamp (dropped at terminated).
        self._live: Dict[str, float] = {}
        #: processes currently parked in the admission queue.
        self._queued: Dict[str, float] = {}
        #: service -> breaker state (open / half-open / closed).
        self._breakers: Dict[str, str] = {}
        #: shard -> alive?
        self._shards: Dict[str, bool] = {}

    # -- sink protocol -------------------------------------------------

    def handle(self, event: Any) -> None:
        ts = float(event.ts)
        self.now = max(self.now, ts)
        kind = event.kind
        process = event.process
        data = event.data or {}

        if process and kind in (
            "submitted",
            "offered",
            "queued",
            "admitted",
            "exec",
        ):
            self._live.setdefault(process, ts)

        if kind == "queued" and process:
            self._queued[process] = ts
        elif kind in ("admitted", "rejected", "shed") and process:
            queued_at = self._queued.pop(process, None)
            if kind == "admitted" and queued_at is not None:
                self._wait_ms.observe(ts, ts - queued_at)
        elif kind == "exec":
            self._dispatched.inc(ts)
            self._exec_ms.observe(ts, float(data.get("duration") or 0.0))
        elif kind == "terminated" and process:
            started = self._live.pop(process, None)
            self._queued.pop(process, None)
            if started is not None:
                self._sojourn_ms.observe(ts, ts - started)
            if data.get("status") == "committed":
                self._committed.inc(ts)
            else:
                self._aborted.inc(ts)
        elif kind in ("breaker_open", "breaker_half_open", "breaker_closed"):
            service = str(data.get("service") or data.get("link") or "?")
            self._breakers[service] = kind.replace("breaker_", "")
        elif kind == "shard_kill":
            self._shards[str(data.get("shard"))] = False
        elif kind == "shard_recovered":
            self._shards[str(data.get("shard"))] = True
        elif kind == "run_begin":
            # A fresh run on a reused bus: reset the live view (the
            # windowed aggregates roll off on their own).
            self._live.clear()
            self._queued.clear()

        if self._next_render is None:
            self._next_render = (ts // self.interval + 1) * self.interval
        elif ts >= self._next_render:
            self._render_now(ts)
            while self._next_render <= ts:
                self._next_render += self.interval

    # -- views ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The live view as a flat dict (what ``render`` prints)."""
        horizon = self._committed.windows * self.interval
        committed = self._committed.total(self.now)
        aborted = self._aborted.total(self.now)
        return {
            "now": self.now,
            "throughput": self._dispatched.total(self.now) / horizon,
            "goodput": committed / horizon,
            "committed": committed,
            "aborted": aborted,
            "committed_lifetime": self._committed.lifetime,
            "aborted_lifetime": self._aborted.lifetime,
            "live": len(self._live),
            "queue_depth": len(self._queued),
            "exec_p95": self._exec_ms.summary(self.now)["p95"],
            "wait_p95": self._wait_ms.summary(self.now)["p95"],
            "sojourn_p95": self._sojourn_ms.summary(self.now)["p95"],
            "breakers_open": sorted(
                service
                for service, state in self._breakers.items()
                if state != "closed"
            ),
            "shards_down": sorted(
                shard
                for shard, alive in self._shards.items()
                if not alive
            ),
        }

    def render(self) -> str:
        """One snapshot as the text block the live mode prints."""
        view = self.snapshot()
        breakers = (
            ",".join(view["breakers_open"]) if view["breakers_open"] else "-"
        )
        shards = (
            "down:" + ",".join(view["shards_down"])
            if view["shards_down"]
            else "all up"
        )
        return (
            f"[t={view['now']:9.2f}] "
            f"thru={view['throughput']:6.2f}/s "
            f"good={view['goodput']:6.2f}/s "
            f"live={view['live']:4d} "
            f"queue={view['queue_depth']:4d} "
            f"p95 exec={view['exec_p95']:.2f} "
            f"wait={view['wait_p95']:.2f} "
            f"sojourn={view['sojourn_p95']:.2f} "
            f"breakers={breakers} "
            f"shards={shards}"
        )

    def _render_now(self, ts: float) -> None:
        self.renders += 1
        if self.out is not None:
            self.out.write(self.render() + "\n")
            self.out.flush()
