"""Decision explainability.

Every scheduling decision that stops an activity — a Lemma 1/2/3
protocol-rule deferral, an admission rejection, a load shed, a
deadlock victim, an abort — is recorded as a :class:`DecisionRecord`
tagged with the *rule* that fired.  :func:`explain_scheduler` answers
"why is this blocked?" against a live scheduler, enriched with the
concrete conflicting ``(activity, service)`` predecessors currently in
the serialization graph; :func:`explain_trace` answers the same
question offline from an exported JSONL trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import UnknownProcessError

__all__ = [
    "RULES",
    "GRAPH_RULES",
    "DecisionRecord",
    "Explanation",
    "explain_scheduler",
    "explain_trace",
]


#: Rule tags attached to scheduler decisions, with their meaning.  The
#: R-numbers match the protocol rules in ``core/scheduler.py``'s module
#: docstring (derived from the paper's Lemmas 1-3).
RULES: Dict[str, str] = {
    "R2-cycle-prevention": (
        "completion-aware cycle prevention (R2): executing the activity "
        "would close a cycle among the recorded conflict edges plus the "
        "potential edges forced by forward-recovery completions, making "
        "the completed prefix irreducible"
    ),
    "R3-lemma1": (
        "Lemma 1, execution side (R3): a non-compensatable activity must "
        "wait until every process with a conflict edge into its process "
        "has committed — otherwise a predecessor's compensation would "
        "create an irreducible cycle"
    ),
    "R4-deferred-commit": (
        "Lemma 1, commit side (R4): the process's prepared deferred-commit "
        "group must 2PC-harden before its continuation may run"
    ),
    "R5-lemma2": (
        "Lemma 2 (R5): a compensation waits until every later conflicting "
        "activity of another active process has itself been compensated "
        "(cascading aborts in reverse conflict order)"
    ),
    "R6-recovery-priority": (
        "Lemma 3 (R6): conflicting predecessors currently recovering will "
        "compensate their activities; the activity waits behind them"
    ),
    "R7-commit-ordering": (
        "commit ordering (R7, Proc-REC 11.1): a process commits only "
        "after every conflicting predecessor terminated"
    ),
    "breaker-open": (
        "circuit breaker: the service's breaker is open (the subsystem is "
        "known to be failing) and no ◁-alternative is reachable"
    ),
    "unavailable": (
        "subsystem unavailable: the service's subsystem is crash-stopped; "
        "the process waits out the outage"
    ),
    "lock-wait": (
        "lock wait: a subsystem-local lock is held by another process's "
        "transaction"
    ),
    "admission": "admission policy: the bounded front door turned the offer away",
    "load-shed": "load shedding: a B-REC process was cancelled to relieve overload",
    "deadlock-victim": "deadlock resolution: chosen as the cheapest abort victim",
    "abort": "process abort (requested or cascading)",
    "fed-in-doubt-hold": (
        "federation in-doubt hold: this shard voted YES in a cross-shard "
        "2PC group and the coordinator's decision is unknown — the "
        "prepared transactions stay held (neither committed nor presumed "
        "aborted) until the termination protocol resolves the group"
    ),
    "fed-termination-protocol": (
        "federation termination protocol: an in-doubt cross-shard group "
        "was resolved cooperatively — by asking the recovered "
        "coordinator (or a peer participant) for the logged decision, or "
        "by presumed abort once the coordinator provably never decided"
    ),
    "fed-shard-unreachable": (
        "federation shard-unreachable defer: the activity's service is "
        "owned by a shard that is dead, partitioned away, or behind an "
        "open inter-shard breaker; the step is deferred until the link "
        "heals rather than risking a split-brain dispatch"
    ),
    "fed-foreign-conflict": (
        "federation foreign-conflict defer: an edge-exchange announcement "
        "shows a conflicting predecessor on another shard that has not "
        "terminated yet — dispatching now could make the merged "
        "cross-shard history irreducible, so the step waits"
    ),
}

#: Rules whose explanation is backed by concrete conflicting
#: predecessors in the serialization graph.
GRAPH_RULES = frozenset(
    ("R2-cycle-prevention", "R3-lemma1", "R5-lemma2", "R6-recovery-priority")
)


@dataclass
class DecisionRecord:
    """One recorded scheduling decision about a process."""

    kind: str  # deferred | rejected | shed | victim | abort
    rule: str
    reason: str
    process: str
    activity: Optional[str] = None
    service: Optional[str] = None
    waiting_for: Tuple[str, ...] = ()
    detail: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Explanation:
    """Why a process/activity is (or was) blocked, rejected or aborted."""

    process: str
    status: Optional[str]
    decision: Optional[DecisionRecord]
    #: Concrete conflicting predecessors: dicts with ``process``,
    #: ``activity``, ``service`` and log ``position`` keys.
    conflicts: List[Dict[str, Any]] = field(default_factory=list)
    note: str = ""

    @property
    def found(self) -> bool:
        return self.decision is not None

    @property
    def rule_text(self) -> str:
        if self.decision is None:
            return ""
        return RULES.get(self.decision.rule, self.decision.rule)

    def conflict_pairs(self) -> List[Tuple[str, str]]:
        """The conflicting ``(activity, service)`` pairs."""
        return [(c["activity"], c["service"]) for c in self.conflicts]

    def render(self) -> str:
        """Human-readable multi-line explanation."""
        lines: List[str] = []
        head = f"process {self.process}"
        if self.status:
            head += f" [{self.status}]"
        lines.append(head)
        if self.decision is None:
            lines.append(
                f"  no blocking/rejecting/aborting decision recorded"
                f"{': ' + self.note if self.note else ''}"
            )
            return "\n".join(lines)
        decision = self.decision
        what = decision.kind
        if decision.activity:
            what += f" at activity {decision.activity!r}"
            if decision.service:
                what += f" (service {decision.service!r})"
        lines.append(f"  decision: {what}")
        lines.append(f"  rule:     {decision.rule or 'unspecified'}")
        if self.rule_text and self.rule_text != decision.rule:
            lines.append(f"            {self.rule_text}")
        lines.append(f"  reason:   {decision.reason}")
        if decision.waiting_for:
            lines.append(f"  waiting for: {', '.join(decision.waiting_for)}")
        for key, value in sorted(decision.detail.items()):
            lines.append(f"  {key}: {value}")
        if self.conflicts:
            lines.append("  conflicting predecessors in the serialization graph:")
            for conflict in self.conflicts:
                lines.append(
                    f"    - {conflict['process']}: activity "
                    f"{conflict['activity']!r} on service "
                    f"{conflict['service']!r} (log position "
                    f"{conflict['position']})"
                )
        if self.note:
            lines.append(f"  note: {self.note}")
        return "\n".join(lines)


def explain_scheduler(scheduler: Any, instance_id: str) -> Explanation:
    """Explain the last blocking decision about ``instance_id``.

    Reads the scheduler's recorded :class:`DecisionRecord` and, when
    the rule is graph-backed, re-derives the concrete conflicting
    predecessors live from the serialization graph.  Raises
    :class:`~repro.errors.UnknownProcessError` when the scheduler has
    never seen the id.
    """
    decision = scheduler.decisions.get(instance_id)
    status: Optional[str] = None
    try:
        status = scheduler.managed(instance_id).status.value
    except UnknownProcessError:
        if decision is None:
            raise
    conflicts: List[Dict[str, Any]] = []
    note = ""
    if decision is not None and decision.rule in GRAPH_RULES:
        if status in (None, "committed", "aborted"):
            note = (
                "process already terminated; conflicting predecessors "
                "reflect the current graph, not the moment of deferral"
            )
        if decision.service is not None:
            conflicts = scheduler.conflict_pairs(instance_id, decision.service)
    if decision is None and status == "waiting":
        note = "process is waiting but no decision record was kept"
    return Explanation(
        process=instance_id,
        status=status,
        decision=decision,
        conflicts=conflicts,
        note=note,
    )


_DECISION_KINDS = {
    "deferred": "deferred",
    "rejected": "rejected",
    "shed": "shed",
    "victim": "victim",
    "abort_begun": "abort",
}


def _record_from_event(kind: str, record: Dict[str, Any]) -> DecisionRecord:
    data = record.get("data") or {}
    return DecisionRecord(
        kind=_DECISION_KINDS[kind],
        rule=data.get("rule", "") or _default_rule(kind, data),
        reason=data.get("reason", ""),
        process=record.get("process") or "",
        activity=record.get("activity"),
        service=data.get("service"),
        waiting_for=tuple(data.get("waiting_for") or ()),
        detail={
            key: value
            for key, value in data.items()
            if key
            not in ("rule", "reason", "service", "waiting_for", "conflicts")
        },
    )


def _default_rule(kind: str, data: Dict[str, Any]) -> str:
    if kind == "rejected":
        return "admission"
    if kind == "shed":
        return "load-shed"
    if kind == "victim":
        return "deadlock-victim"
    if kind == "abort_begun":
        return "abort"
    return ""


def explain_trace(
    records: Iterable[Dict[str, Any]], target: Optional[str] = None
) -> Optional[Explanation]:
    """Explain a blocked/rejected/aborted activity from a trace stream.

    ``target`` selects a process or activity id; without one, the first
    process with a blocking decision is explained.  The *last* decision
    event about the target wins (it reflects the final state).  Returns
    ``None`` when no decision event matches.
    """
    chosen: Optional[Dict[str, Any]] = None
    chosen_kind = ""
    terminal: Dict[str, str] = {}
    first_match: Optional[str] = None
    for record in records:
        kind = record.get("kind")
        if kind == "terminated":
            process = record.get("process")
            if process:
                terminal[process] = (record.get("data") or {}).get("status", "")
            continue
        if kind not in _DECISION_KINDS:
            continue
        process = record.get("process")
        activity = record.get("activity")
        if target is not None:
            if target not in (process, activity):
                continue
        elif first_match is None:
            first_match = process
        elif process != first_match:
            continue
        chosen = record
        chosen_kind = kind
    if chosen is None:
        return None
    decision = _record_from_event(chosen_kind, chosen)
    conflicts = list((chosen.get("data") or {}).get("conflicts") or ())
    return Explanation(
        process=decision.process,
        status=terminal.get(decision.process),
        decision=decision,
        conflicts=conflicts,
    )
