"""Trace replay: reconstruct the schedule history from an event stream.

The trace is *complete and ordered*: every recorded activity event
carries its log position, native rollbacks reference the position they
cancel, and terminations carry the final status.  Replaying the stream
therefore reconstructs exactly what :meth:`TransactionalProcessScheduler.
history` reports — the property the Hypothesis trace-replay test
checks for random failing workloads.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

__all__ = ["replay_trace"]


def replay_trace(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Reconstruct the schedule history and terminal process states.

    Returns a dict with:

    ``schedule``
        ``(process, activity, direction_exponent, service)`` tuples in
        log order, excluding natively rolled-back events — exactly the
        activity events of the scheduler's certified history.
    ``terminal``
        ``process -> status`` for every process that reached a
        terminal state (``committed`` / ``aborted``).
    ``positions``
        The surviving log positions, in order (diagnostics).
    """
    entries: Dict[int, Tuple[str, str, int, str]] = {}
    rolled: set = set()
    terminal: Dict[str, str] = {}
    for record in records:
        kind = record.get("kind")
        if kind == "activity":
            data = record.get("data") or {}
            position = data.get("position")
            if position is None:
                continue
            entries[position] = (
                record.get("process") or "",
                record.get("activity") or "",
                data.get("direction", 1),
                data.get("service") or "",
            )
        elif kind == "rolled_back":
            data = record.get("data") or {}
            position = data.get("position")
            if position is not None:
                rolled.add(position)
        elif kind == "terminated":
            process = record.get("process")
            if process:
                terminal[process] = (record.get("data") or {}).get("status", "")
    positions: List[int] = [p for p in sorted(entries) if p not in rolled]
    return {
        "schedule": [entries[p] for p in positions],
        "terminal": terminal,
        "positions": positions,
    }
