"""Span derivation: fold the flat event stream into a causal span DAG.

The trace bus emits point events; timelines and the critical-path
analysis want *intervals with structure*.  This module derives the span
families below from an exported stream and links them into a per-process
DAG: every span carries a ``span_id``, non-process spans point at their
process span via ``parent``, and ``cause`` names the bus sequence number
of the event that opened the span (the same causal anchor the Perfetto
flow arrows and ``obs.critpath`` consume).

* **execution spans** (phase ``exec``) — one per ``exec`` event (the
  runner emits the service duration with the dispatch), covering the
  activity's stay at its subsystem;
* **wait spans** (phase ``queue-wait``) — from a ``queued`` offer to its
  ``admitted`` event; a still-queued process at stream truncation yields
  a span closed at the last seen timestamp (zero-length when nothing
  later was observed);
* **2PC vote spans** (phase ``2pc-vote``) — from a cross-shard group's
  ``xshard_begin`` to its ``xshard_decision``, attributed to the process
  encoded in the harden group id;
* **decision-persist spans** (phase ``decision-persist``) — from
  ``xshard_decision`` to ``xshard_end`` (the resend-until-acked tail);
* **process spans** (phase ``process``) — from a process's first
  appearance to its ``terminated`` event (or the last seen timestamp on
  a truncated stream).

Spans feed the Chrome trace exporter (`repro.obs.export.chrome_trace`)
and the critical-path attribution (`repro.obs.critpath`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["Span", "derive_spans", "group_process"]


@dataclass
class Span:
    """A named interval attributed to a process, linked into the DAG."""

    name: str
    cat: str
    process: Optional[str]
    start: float
    end: float
    args: Dict[str, Any] = field(default_factory=dict)
    #: Stable id within one derived span set (assigned in sorted order).
    span_id: int = -1
    #: ``span_id`` of the enclosing process span (``None`` for roots).
    parent: Optional[int] = None
    #: Bus ``seq`` of the event that opened this span (causal anchor).
    cause: Optional[int] = None
    #: Latency phase this span attributes time to (see ``obs.critpath``).
    phase: str = ""
    #: Shard the span was observed on, when the stream says.
    shard: Optional[str] = None

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)


def group_process(group_id: str) -> Optional[str]:
    """Process id encoded in a harden group id, if any.

    Cross-shard harden groups are ``harden:<pid>#<incarnation>``; local
    harden groups are ``harden:<pid>``.  Anything else is anonymous.
    """
    if group_id.startswith("harden:"):
        return group_id.split(":", 1)[1].partition("#")[0] or None
    return None


def derive_spans(records: Iterable[Dict[str, Any]]) -> List[Span]:
    """Derive the lifecycle span DAG from an exported trace stream.

    Accepts JSONL-shaped record dicts (see
    :meth:`repro.obs.events.TraceEvent.to_dict`); tolerates truncated
    streams (an unterminated process or unresolved wait/2PC span yields
    a span ending at the last seen timestamp) and returns ``[]`` for an
    empty stream.
    """
    spans: List[Span] = []
    first_seen: Dict[str, float] = {}
    queued_at: Dict[str, Tuple[float, Optional[int]]] = {}
    terminated_at: Dict[str, float] = {}
    terminal_status: Dict[str, str] = {}
    #: group id -> (begin ts, begin seq, shard) awaiting a decision.
    vote_open: Dict[str, Tuple[float, Optional[int], Optional[str]]] = {}
    #: group id -> (decision ts, decision seq, shard, commit) awaiting end.
    persist_open: Dict[str, Tuple[float, Optional[int], Optional[str], bool]] = {}
    last_ts: Optional[float] = None

    for record in records:
        kind = record.get("kind")
        ts = float(record.get("ts") or 0.0)
        last_ts = ts if last_ts is None else max(last_ts, ts)
        process = record.get("process")
        data = record.get("data") or {}
        seq = record.get("seq")
        if process and process not in first_seen and kind in (
            "offered",
            "submitted",
            "queued",
            "admitted",
            "activity",
            "exec",
        ):
            first_seen[process] = ts
        if kind == "queued" and process:
            queued_at[process] = (ts, seq)
        elif kind == "admitted" and process:
            opened = queued_at.pop(process, None)
            if opened is not None:
                start, cause = opened
                spans.append(
                    Span(
                        name="queue wait",
                        cat="admission",
                        process=process,
                        start=start,
                        end=ts,
                        cause=cause,
                        phase="queue-wait",
                    )
                )
        elif kind == "exec" and process:
            duration = float(data.get("duration") or 0.0)
            activity = record.get("activity") or "?"
            service = data.get("service")
            spans.append(
                Span(
                    name=f"{activity}@{service}" if service else activity,
                    cat="sim",
                    process=process,
                    start=ts,
                    end=ts + duration,
                    args=dict(data),
                    cause=seq,
                    phase="exec",
                )
            )
        elif kind == "xshard_begin":
            group = str(data.get("group") or "")
            if group:
                vote_open[group] = (ts, seq, data.get("shard"))
        elif kind == "xshard_decision":
            group = str(data.get("group") or "")
            opened = vote_open.pop(group, None)
            if opened is not None:
                start, cause, shard = opened
                spans.append(
                    Span(
                        name=f"2pc vote {group}",
                        cat="fed",
                        process=group_process(group),
                        start=start,
                        end=ts,
                        args={"group": group},
                        cause=cause,
                        phase="2pc-vote",
                        shard=shard,
                    )
                )
            if group:
                persist_open[group] = (
                    ts,
                    seq,
                    data.get("shard"),
                    bool(data.get("commit")),
                )
        elif kind == "xshard_end":
            group = str(data.get("group") or "")
            opened = persist_open.pop(group, None)
            if opened is not None:
                start, cause, shard, commit = opened
                spans.append(
                    Span(
                        name=f"2pc decision {group}",
                        cat="fed",
                        process=group_process(group),
                        start=start,
                        end=ts,
                        args={"group": group, "commit": commit},
                        cause=cause,
                        phase="decision-persist",
                        shard=shard,
                    )
                )
        elif kind == "terminated" and process:
            terminated_at[process] = ts
            terminal_status[process] = data.get("status", "")

    if last_ts is None:
        return []

    # Truncated-stream closure: a process still parked in the admission
    # queue gets its wait span closed at the last seen timestamp (a
    # queued-only stream therefore yields a zero-length wait span).
    for process, (start, cause) in queued_at.items():
        spans.append(
            Span(
                name="queue wait",
                cat="admission",
                process=process,
                start=min(start, last_ts),
                end=last_ts,
                cause=cause,
                phase="queue-wait",
            )
        )
    for group, (start, cause, shard) in vote_open.items():
        spans.append(
            Span(
                name=f"2pc vote {group}",
                cat="fed",
                process=group_process(group),
                start=min(start, last_ts),
                end=last_ts,
                args={"group": group},
                cause=cause,
                phase="2pc-vote",
                shard=shard,
            )
        )
    for group, (start, cause, shard, commit) in persist_open.items():
        spans.append(
            Span(
                name=f"2pc decision {group}",
                cat="fed",
                process=group_process(group),
                start=min(start, last_ts),
                end=last_ts,
                args={"group": group, "commit": commit},
                cause=cause,
                phase="decision-persist",
                shard=shard,
            )
        )

    for process, start in first_seen.items():
        end = terminated_at.get(process, last_ts)
        args: Dict[str, Any] = {}
        status = terminal_status.get(process)
        if status:
            args["status"] = status
        spans.append(
            Span(
                name=f"process {process}",
                cat="sched",
                process=process,
                start=start,
                end=max(end, start),
                args=args,
                phase="process",
            )
        )

    spans.sort(key=lambda span: (span.start, span.end, span.name))
    roots: Dict[str, int] = {}
    for span_id, span in enumerate(spans):
        span.span_id = span_id
        if span.phase == "process" and span.process is not None:
            roots[span.process] = span_id
    for span in spans:
        if span.phase != "process" and span.process is not None:
            span.parent = roots.get(span.process)
    return spans
