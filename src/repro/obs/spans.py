"""Span derivation: fold the flat event stream into lifecycle spans.

The trace bus emits point events; timelines want intervals.  This
module derives three span families from an exported stream:

* **execution spans** — one per ``exec`` event (the runner emits the
  service duration with the dispatch), covering the activity's stay at
  its subsystem;
* **wait spans** — from a ``queued`` offer to its ``admitted`` event
  (time spent parked in the admission queue);
* **process spans** — from a process's first appearance (``offered`` /
  ``submitted`` / ``admitted``) to its ``terminated`` event.

Spans feed the Chrome trace exporter (`repro.obs.export.chrome_trace`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["Span", "derive_spans"]


@dataclass
class Span:
    """A named interval attributed to a process."""

    name: str
    cat: str
    process: Optional[str]
    start: float
    end: float
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)


def derive_spans(records: Iterable[Dict[str, Any]]) -> List[Span]:
    """Derive lifecycle spans from an exported trace stream.

    Accepts JSONL-shaped record dicts (see
    :meth:`repro.obs.events.TraceEvent.to_dict`); tolerates truncated
    streams (an unterminated process yields a span ending at the last
    seen timestamp).
    """
    spans: List[Span] = []
    first_seen: Dict[str, float] = {}
    queued_at: Dict[str, float] = {}
    terminated_at: Dict[str, float] = {}
    terminal_status: Dict[str, str] = {}
    last_ts = 0.0

    for record in records:
        kind = record.get("kind")
        ts = float(record.get("ts") or 0.0)
        last_ts = max(last_ts, ts)
        process = record.get("process")
        data = record.get("data") or {}
        if process and process not in first_seen and kind in (
            "offered",
            "submitted",
            "queued",
            "admitted",
            "activity",
            "exec",
        ):
            first_seen[process] = ts
        if kind == "queued" and process:
            queued_at[process] = ts
        elif kind == "admitted" and process:
            start = queued_at.pop(process, None)
            if start is not None:
                spans.append(
                    Span(
                        name="queue wait",
                        cat="admission",
                        process=process,
                        start=start,
                        end=ts,
                    )
                )
        elif kind == "exec" and process:
            duration = float(data.get("duration") or 0.0)
            activity = record.get("activity") or "?"
            service = data.get("service")
            spans.append(
                Span(
                    name=f"{activity}@{service}" if service else activity,
                    cat="sim",
                    process=process,
                    start=ts,
                    end=ts + duration,
                    args=dict(data),
                )
            )
        elif kind == "terminated" and process:
            terminated_at[process] = ts
            terminal_status[process] = data.get("status", "")

    for process, start in first_seen.items():
        end = terminated_at.get(process, last_ts)
        args: Dict[str, Any] = {}
        status = terminal_status.get(process)
        if status:
            args["status"] = status
        spans.append(
            Span(
                name=f"process {process}",
                cat="sched",
                process=process,
                start=start,
                end=max(end, start),
                args=args,
            )
        )
    spans.sort(key=lambda span: (span.start, span.end))
    return spans
