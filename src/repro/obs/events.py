"""Trace event records and the event taxonomy.

A :class:`TraceEvent` is one structured fact about the system: *what*
happened (``kind``), *when* in virtual time (``ts``), *who* it happened
to (``process`` / ``activity`` correlation ids) and the kind-specific
payload (``data``).  Events are ordered by a monotone sequence number
``seq`` assigned by the bus, so a trace totally orders everything the
system did even when virtual time stands still.

:data:`EVENT_CATEGORIES` is the complete taxonomy — every ``kind`` any
instrumented component may emit, mapped to its category.  Exported
JSONL streams are validated against it by :func:`validate_record` /
:func:`validate_stream` (and by the ``trace-smoke`` CI job).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "TraceEvent",
    "EVENT_CATEGORIES",
    "CATEGORIES",
    "validate_record",
    "validate_stream",
]


#: Complete event taxonomy: kind -> category.
EVENT_CATEGORIES: Dict[str, str] = {
    # -- scheduler lifecycle (category "sched") ------------------------
    "submitted": "sched",  # process entered the scheduler
    "activity": "sched",  # forward/compensating activity recorded
    "rolled_back": "sched",  # a logged activity was compensated away
    "deferred": "sched",  # a step was blocked (rule in data["rule"])
    "failed": "sched",  # an invocation failed (will retry/alternate)
    "hardened": "sched",  # deferred-commit group 2PC-hardened
    "abort_begun": "sched",  # group abort started (cascade flag in data)
    "victim": "sched",  # deadlock/livelock victim selected
    "terminated": "sched",  # process reached a terminal status
    "checkpoint": "sched",  # scheduler checkpoint written
    "replay_begin": "sched",  # crash-recovery replay started
    "replay_end": "sched",  # crash-recovery replay finished
    # -- admission control (category "admission") ----------------------
    "offered": "admission",  # process offered at the front door
    "admitted": "admission",  # offer admitted
    "queued": "admission",  # offer parked in the admission queue
    "rejected": "admission",  # offer turned away
    "shed": "admission",  # admitted B-REC process cancelled by shedder
    "draining": "admission",  # scheduler entered drain mode
    "starved": "admission",  # starvation watchdog boosted a process
    "livelock": "admission",  # livelock watchdog escalated
    # -- resilience layer (category "resilience") ----------------------
    "retry": "resilience",  # retry scheduled after a failure
    "fast_fail": "resilience",  # invocation short-circuited by breaker
    "breaker_open": "resilience",  # circuit breaker tripped open
    "breaker_half_open": "resilience",  # breaker probing recovery
    "breaker_closed": "resilience",  # breaker recovered
    "degraded": "resilience",  # execution degraded along ◁
    # -- write-ahead log (category "wal") ------------------------------
    "wal_append": "wal",  # record appended (lsn, record type)
    "wal_sync": "wal",  # log forced to stable storage
    "wal_checkpoint": "wal",  # checkpoint record written
    "wal_truncate": "wal",  # log truncated/compacted
    # -- chaos harness (category "chaos") ------------------------------
    "fault": "chaos",  # fault injected into a subsystem
    # -- simulation runner (category "sim") ----------------------------
    "run_begin": "sim",  # a simulation/harness run started
    "run_end": "sim",  # a simulation/harness run finished
    "exec": "sim",  # activity execution span (service, duration)
    # -- federation layer (category "fed") -----------------------------
    "shard_kill": "fed",  # a whole scheduler shard crash-stopped
    "shard_recovered": "fed",  # a killed shard completed WAL recovery
    "msg_fault": "fed",  # inter-shard message fault (drop/delay/dup/partition)
    "edge_exchange": "fed",  # conflict announcement shipped between shards
    "xshard_begin": "fed",  # cross-shard 2PC group entered the vote phase
    "xshard_decision": "fed",  # cross-shard commit/abort decision logged
    "xshard_end": "fed",  # cross-shard group fully acknowledged
    "xshard_indoubt": "fed",  # participant holding an in-doubt vote
    "xshard_resolved": "fed",  # termination protocol resolved an in-doubt group
    "msg_send": "fed",  # inter-shard message handed to the fabric (causal anchor)
    "msg_recv": "fed",  # inter-shard message delivered (data["cause"] = send seq)
    # -- nemesis harness (category "nemesis") --------------------------
    "nemesis_action": "nemesis",  # a planned fault action fired
    "nemesis_invariant": "nemesis",  # an online/final invariant fired
}

#: All categories, in display order.
CATEGORIES = (
    "sched",
    "admission",
    "resilience",
    "wal",
    "chaos",
    "sim",
    "fed",
    "nemesis",
)


class TraceEvent:
    """One structured trace record.

    ``__slots__`` keeps events cheap: the enabled-path cost of tracing
    is dominated by sink I/O, not record construction.
    """

    __slots__ = ("seq", "ts", "kind", "cat", "process", "activity", "data")

    def __init__(
        self,
        seq: int,
        ts: float,
        kind: str,
        cat: str,
        process: Optional[str],
        activity: Optional[str],
        data: Dict[str, Any],
    ) -> None:
        self.seq = seq
        self.ts = ts
        self.kind = kind
        self.cat = cat
        self.process = process
        self.activity = activity
        self.data = data

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-serialisable form (the JSONL line layout)."""
        return {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "cat": self.cat,
            "process": self.process,
            "activity": self.activity,
            "data": self.data,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "TraceEvent":
        return cls(
            seq=record["seq"],
            ts=record["ts"],
            kind=record["kind"],
            cat=record["cat"],
            process=record.get("process"),
            activity=record.get("activity"),
            data=record.get("data") or {},
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        who = self.process or "-"
        if self.activity:
            who = f"{who}/{self.activity}"
        return f"TraceEvent(#{self.seq} t={self.ts} {self.kind} {who} {self.data})"


_REQUIRED_KEYS = ("seq", "ts", "kind", "cat", "process", "activity", "data")


def validate_record(record: Any, index: Optional[int] = None) -> List[str]:
    """Validate one exported trace record against the event schema.

    Returns a list of human-readable problems (empty when valid).
    """
    where = f"record {index}" if index is not None else "record"
    if not isinstance(record, dict):
        return [f"{where}: not a JSON object"]
    errors: List[str] = []
    for key in _REQUIRED_KEYS:
        if key not in record:
            errors.append(f"{where}: missing key {key!r}")
    if errors:
        return errors
    if not isinstance(record["seq"], int) or isinstance(record["seq"], bool):
        errors.append(f"{where}: seq must be an integer")
    if not isinstance(record["ts"], (int, float)) or isinstance(record["ts"], bool):
        errors.append(f"{where}: ts must be a number")
    kind = record["kind"]
    if not isinstance(kind, str):
        errors.append(f"{where}: kind must be a string")
    elif kind not in EVENT_CATEGORIES:
        errors.append(f"{where}: unknown event kind {kind!r}")
    elif record["cat"] != EVENT_CATEGORIES[kind]:
        errors.append(
            f"{where}: kind {kind!r} belongs to category"
            f" {EVENT_CATEGORIES[kind]!r}, not {record['cat']!r}"
        )
    for key in ("process", "activity"):
        value = record[key]
        if value is not None and not isinstance(value, str):
            errors.append(f"{where}: {key} must be a string or null")
    if not isinstance(record["data"], dict):
        errors.append(f"{where}: data must be an object")
    return errors


def validate_stream(records: Iterable[Any]) -> List[str]:
    """Validate a whole exported stream: schema plus seq monotonicity."""
    errors: List[str] = []
    last_seq: Optional[int] = None
    for index, record in enumerate(records):
        errors.extend(validate_record(record, index))
        if isinstance(record, dict):
            seq = record.get("seq")
            if isinstance(seq, int) and not isinstance(seq, bool):
                if last_seq is not None and seq <= last_seq:
                    errors.append(
                        f"record {index}: seq {seq} not increasing"
                        f" (previous {last_seq})"
                    )
                last_seq = seq
    return errors
