"""Observability: structured tracing, metrics, and decision explainability.

The ``repro.obs`` package gives the scheduler, the resilience layer,
the WAL and the simulation harnesses one shared observability surface:

``repro.obs.bus``
    The structured trace bus.  :class:`TraceBus` fans
    :class:`~repro.obs.events.TraceEvent` records out to sinks
    (in-memory ring, JSONL file, stdlib ``logging``).  Emission is
    *zero-cost when disabled*: every instrumented call site guards on
    ``bus.enabled`` (or on the bus being absent) before constructing an
    event, so the untraced hot path pays one attribute test at most.

``repro.obs.events``
    The event taxonomy — every trace event ``kind`` the system emits,
    its category, and a schema validator for exported JSONL streams.

``repro.obs.metrics``
    The metrics registry: counters, gauges and histograms (p50/p95/p99)
    with Prometheus text exposition.  ``repro.core.perf`` is a thin
    facade over this registry, so the incremental core's hot-path
    counters and the observability metrics are one system.

``repro.obs.export``
    Exporters and loaders: JSONL trace files, Chrome trace-event JSON
    (loadable in Perfetto), Prometheus text files.

``repro.obs.spans``
    Span derivation — folds the flat event stream into a causal span
    DAG (span ids, parent links, happens-before anchors) for timeline
    rendering and critical-path analysis.

``repro.obs.critpath``
    Commit-latency attribution: segments each process's span into
    exec / 2PC / queue-wait / graph-admission phase slices that
    reconcile with end-to-end latency by construction.

``repro.obs.console``
    The bounded-memory live ops console (``repro top``): sliding-window
    aggregates rendered on virtual-time interval boundaries.

``repro.obs.replay``
    Trace replay — reconstructs the schedule history and terminal
    process states from an event stream (the property the trace-replay
    Hypothesis test checks).

``repro.obs.explain``
    Decision explainability: for any blocked, rejected or aborted
    activity, report the rule that fired (Lemma 1/2/3 protocol rules,
    admission policy, circuit breaker) and the concrete conflicting
    predecessors from the serialization graph.
"""

from repro.obs.bus import (
    JsonlSink,
    LoggingSink,
    MemorySink,
    TraceBus,
    tracing,
)
from repro.obs.console import OpsConsole
from repro.obs.critpath import (
    CriticalPath,
    PhaseSlice,
    attribution,
    critical_paths,
    reconcile,
)
from repro.obs.events import (
    EVENT_CATEGORIES,
    TraceEvent,
    validate_record,
    validate_stream,
)
from repro.obs.explain import Explanation, explain_scheduler, explain_trace
from repro.obs.export import (
    chrome_trace,
    read_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WindowedCounter,
    WindowedHistogram,
    fleet_snapshot,
)
from repro.obs.replay import replay_trace
from repro.obs.spans import Span, derive_spans, group_process

__all__ = [
    "TraceBus",
    "MemorySink",
    "JsonlSink",
    "LoggingSink",
    "tracing",
    "TraceEvent",
    "EVENT_CATEGORIES",
    "validate_record",
    "validate_stream",
    "Counter",
    "Gauge",
    "Histogram",
    "WindowedCounter",
    "WindowedHistogram",
    "MetricsRegistry",
    "fleet_snapshot",
    "read_trace",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_prometheus",
    "Span",
    "derive_spans",
    "group_process",
    "CriticalPath",
    "PhaseSlice",
    "critical_paths",
    "attribution",
    "reconcile",
    "OpsConsole",
    "replay_trace",
    "Explanation",
    "explain_scheduler",
    "explain_trace",
]
