"""The structured trace bus and its sinks.

A :class:`TraceBus` assigns sequence numbers and sim-clock timestamps
to :class:`~repro.obs.events.TraceEvent` records and fans them out to
sinks.  The contract every instrumented call site follows:

    trace = self._trace
    if trace is not None and trace.enabled:
        trace.emit("deferred", process=pid, activity=name, rule=rule)

i.e. *no* event, payload dict or string is constructed unless a sink is
actually attached — tracing disabled costs one attribute test on the
hot path (verified by the X12 benchmark).

Call sites holding a *maybe-bus* (an optional, possibly foreign object)
use :func:`tracing` instead of hand-rolled ``getattr`` guards:

    bus = tracing(self.trace)
    if bus is not None:
        bus.emit("shard_kill", shard=shard_id)

:meth:`TraceBus.emit` returns the emitted event's sequence number, which
doubles as a causal anchor: a later event naming it in ``data["cause"]``
declares a happens-before edge (the span DAG the critical-path analysis
and the Perfetto flow arrows are built from).
"""

from __future__ import annotations

import json
import logging
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.obs.events import EVENT_CATEGORIES, TraceEvent

__all__ = ["TraceBus", "MemorySink", "JsonlSink", "LoggingSink", "tracing"]


def tracing(trace: Optional[Any]) -> Optional["TraceBus"]:
    """The bus iff ``trace`` is an enabled trace bus, else ``None``.

    The one guard for every instrumented call site that holds an
    optional (possibly duck-typed) trace object: emission code runs
    exactly when ``tracing(trace)`` returns non-``None``, and a bus
    without sinks costs the same as no bus at all.
    """
    if trace is not None and getattr(trace, "enabled", False):
        return trace
    return None


class TraceBus:
    """Fan-out point for trace events.

    ``enabled`` is true exactly when at least one sink is subscribed;
    emitters guard on it so a bus without sinks behaves like no bus.
    Timestamps come from an attached simulation clock (any object with
    a ``now`` attribute, e.g. :class:`repro.sim.clock.VirtualClock`) and
    default to ``0.0`` before one is attached.
    """

    __slots__ = ("enabled", "_sinks", "_clock", "_seq")

    def __init__(self, clock: Optional[Any] = None) -> None:
        self.enabled = False
        self._sinks: List[Any] = []
        self._clock = clock
        self._seq = 0

    # -- wiring -------------------------------------------------------
    def subscribe(self, sink: Any) -> Any:
        """Attach a sink (enabling the bus) and return it."""
        self._sinks.append(sink)
        self.enabled = True
        return sink

    def unsubscribe(self, sink: Any) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)
        self.enabled = bool(self._sinks)

    def attach_clock(self, clock: Any) -> None:
        """Timestamp subsequent events from ``clock.now`` (sim time)."""
        self._clock = clock

    def now(self) -> float:
        clock = self._clock
        if clock is None:
            return 0.0
        return float(clock.now)

    # -- emission -----------------------------------------------------
    def emit(
        self,
        kind: str,
        process: Optional[str] = None,
        activity: Optional[str] = None,
        **data: Any,
    ) -> Optional[int]:
        """Emit one event; returns its ``seq`` (a causal anchor).

        Callers must guard on ``enabled`` first; a disabled bus returns
        ``None`` without constructing anything.
        """
        if not self.enabled:
            return None
        seq = self._seq
        event = TraceEvent(
            seq,
            self.now(),
            kind,
            EVENT_CATEGORIES[kind],
            process,
            activity,
            data,
        )
        self._seq = seq + 1
        for sink in self._sinks:
            sink.handle(event)
        return seq

    def emit_payload(self, kind: str, payload: Dict[str, Any]) -> Optional[int]:
        """Emit from a listener-style payload dict; returns the ``seq``.

        Used by the scheduler's ``_notify`` bridge: ``process`` and
        ``activity`` keys become correlation ids, everything else is
        the event payload.  The caller's dict is not mutated.
        """
        if not self.enabled:
            return None
        data = dict(payload)
        process = data.pop("process", None)
        activity = data.pop("activity", None)
        seq = self._seq
        event = TraceEvent(
            seq,
            self.now(),
            kind,
            EVENT_CATEGORIES[kind],
            process,
            activity,
            data,
        )
        self._seq = seq + 1
        for sink in self._sinks:
            sink.handle(event)
        return seq

    def close(self) -> None:
        """Close all sinks (flushes file-backed ones)."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


class MemorySink:
    """Keeps events in memory (optionally a bounded ring)."""

    def __init__(self, maxlen: Optional[int] = None) -> None:
        self.events: Deque[TraceEvent] = deque(maxlen=maxlen)

    def handle(self, event: TraceEvent) -> None:
        self.events.append(event)

    def records(self) -> List[Dict[str, Any]]:
        """The captured events as exported-JSONL-shaped dicts."""
        return [event.to_dict() for event in self.events]

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink:
    """Writes one JSON object per line to a file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "w", encoding="utf-8")

    def handle(self, event: TraceEvent) -> None:
        self._handle.write(json.dumps(event.to_dict(), separators=(",", ":")))
        self._handle.write("\n")

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class LoggingSink:
    """Bridges trace events onto a stdlib :mod:`logging` logger.

    The ``repro`` package logger carries a :class:`logging.NullHandler`,
    so nothing is printed unless the embedding application configures
    logging — the library never warns about missing handlers.
    """

    def __init__(
        self,
        logger: Optional[logging.Logger] = None,
        level: int = logging.DEBUG,
        formatter: Optional[Callable[[TraceEvent], str]] = None,
    ) -> None:
        self.logger = logger if logger is not None else logging.getLogger("repro.trace")
        self.level = level
        self.formatter = formatter

    def handle(self, event: TraceEvent) -> None:
        if not self.logger.isEnabledFor(self.level):
            return
        if self.formatter is not None:
            message = self.formatter(event)
        else:
            who = event.process or "-"
            if event.activity:
                who = f"{who}/{event.activity}"
            message = f"t={event.ts:.3f} {event.kind} {who} {event.data}"
        self.logger.log(self.level, message)
