"""Metrics registry: counters, gauges and histograms.

One counter system for the whole library.  The incremental core's
:class:`repro.core.perf.PerfCounters` is a facade over this registry,
so hot-path statistics (``perf.*``), admission counters and simulation
latency histograms all export through the same
:meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.to_prometheus`
surface.

Design constraints:

* **Hot-path compatible.**  :class:`Counter` implements the numeric
  protocol (``+=``, comparisons, ``int()``/``float()``/``round()``), so
  existing call sites like ``self.perf.edge_updates += 1`` and test
  assertions like ``perf.log_scans == 0`` keep working unchanged.
* **No dependencies.**  Percentiles are computed locally; the module
  imports nothing from the rest of the library.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "WindowedCounter",
    "WindowedHistogram",
    "MetricsRegistry",
    "fleet_snapshot",
]

Number = Union[int, float]


def _percentile(ordered: List[float], fraction: float) -> float:
    """Linear-interpolated percentile of an already-sorted sample."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def _value_of(other: object) -> Number:
    if isinstance(other, Counter):
        return other.value
    if isinstance(other, Gauge):
        return other.value
    return other  # type: ignore[return-value]


class Counter:
    """A monotonically increasing counter that quacks like a number."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Number = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    # -- numeric protocol: keep `perf.foo += 1` call sites unchanged --
    def __iadd__(self, amount: Number) -> "Counter":
        self.value += amount
        return self

    def __int__(self) -> int:
        return int(self.value)

    def __float__(self) -> float:
        return float(self.value)

    def __index__(self) -> int:
        return int(self.value)

    def __round__(self, ndigits: Optional[int] = None) -> Number:
        return round(self.value, ndigits) if ndigits is not None else round(self.value)

    def __bool__(self) -> bool:
        return bool(self.value)

    def __eq__(self, other: object) -> bool:
        return self.value == _value_of(other)

    def __ne__(self, other: object) -> bool:
        return self.value != _value_of(other)

    def __lt__(self, other: object) -> bool:
        return self.value < _value_of(other)

    def __le__(self, other: object) -> bool:
        return self.value <= _value_of(other)

    def __gt__(self, other: object) -> bool:
        return self.value > _value_of(other)

    def __ge__(self, other: object) -> bool:
        return self.value >= _value_of(other)

    def __add__(self, other: object) -> Number:
        return self.value + _value_of(other)

    __radd__ = __add__

    def __sub__(self, other: object) -> Number:
        return self.value - _value_of(other)

    def __rsub__(self, other: object) -> Number:
        return _value_of(other) - self.value

    def __mul__(self, other: object) -> Number:
        return self.value * _value_of(other)

    __rmul__ = __mul__

    def __truediv__(self, other: object) -> float:
        return self.value / _value_of(other)

    def __rtruediv__(self, other: object) -> float:
        return _value_of(other) / self.value

    def __hash__(self) -> int:
        return hash((self.name, id(self)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (queue depth, open breakers, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Number = 0) -> None:
        self.name = name
        self.value = value

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def __int__(self) -> int:
        return int(self.value)

    def __float__(self) -> float:
        return float(self.value)

    def __eq__(self, other: object) -> bool:
        return self.value == _value_of(other)

    def __hash__(self) -> int:
        return hash((self.name, id(self)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A sample distribution summarised as p50/p95/p99.

    Keeps the raw observations (simulation runs are bounded); a cap
    protects pathological callers by dropping the *oldest half* once
    ``max_samples`` is exceeded, which biases long-running streams
    toward recent behaviour.
    """

    __slots__ = ("name", "count", "total", "_samples", "max_samples")

    def __init__(self, name: str, max_samples: int = 100_000) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self._samples: List[float] = []
        self.max_samples = max_samples

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        samples = self._samples
        samples.append(float(value))
        if len(samples) > self.max_samples:
            del samples[: len(samples) // 2]

    def summary(self) -> Dict[str, float]:
        ordered = sorted(self._samples)
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "mean": round(self.total / self.count, 6) if self.count else 0.0,
            "p50": round(_percentile(ordered, 0.50), 6),
            "p95": round(_percentile(ordered, 0.95), 6),
            "p99": round(_percentile(ordered, 0.99), 6),
            "max": ordered[-1] if ordered else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name} n={self.count})"


class _Reservoir:
    """Deterministic bounded sample of one window's observations.

    Every ``stride``-th observation is retained; when the buffer fills,
    every other retained sample is dropped and the stride doubles.  The
    kept samples stay spread across the window without any randomness
    (the library bans unseeded RNG — determinism is what makes chaos
    runs replayable), at the cost of a mild bias toward early samples
    within a stride period.
    """

    __slots__ = ("cap", "stride", "seen", "count", "total", "samples")

    def __init__(self, cap: int) -> None:
        self.cap = max(2, cap)
        self.stride = 1
        self.seen = 0
        self.count = 0
        self.total = 0.0
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        if self.seen % self.stride == 0:
            self.samples.append(value)
            if len(self.samples) > self.cap:
                del self.samples[1::2]
                self.stride *= 2
        self.seen += 1
        self.count += 1
        self.total += value


class WindowedCounter:
    """Counts bucketed into a ring of fixed-width virtual-time windows.

    Holds the most recent ``windows`` buckets of ``width`` virtual
    seconds each; older buckets are evicted, so memory is O(windows)
    no matter how long the run streams.  ``lifetime`` keeps the
    since-start total (cheap — one float).
    """

    __slots__ = ("name", "width", "windows", "lifetime", "_buckets")

    def __init__(
        self, name: str, width: float = 5.0, windows: int = 12
    ) -> None:
        if width <= 0:
            raise ValueError("window width must be positive")
        if windows < 1:
            raise ValueError("need at least one window")
        self.name = name
        self.width = width
        self.windows = windows
        self.lifetime = 0.0
        #: window index -> count, insertion-ordered oldest first.
        self._buckets: Dict[int, float] = {}

    def _bucket(self, now: float) -> int:
        return int(now // self.width)

    def _evict(self, index: int) -> None:
        floor = index - self.windows + 1
        for stale in [key for key in self._buckets if key < floor]:
            del self._buckets[stale]

    def inc(self, now: float, amount: Number = 1) -> None:
        index = self._bucket(now)
        self._buckets[index] = self._buckets.get(index, 0.0) + amount
        self.lifetime += amount
        self._evict(index)

    def total(self, now: Optional[float] = None) -> float:
        """Sum over retained windows (evicting first if ``now`` given)."""
        if now is not None:
            self._evict(self._bucket(now))
        return sum(self._buckets.values())

    def rate(self, now: float) -> float:
        """Events per virtual second over the retained horizon."""
        self._evict(self._bucket(now))
        if not self._buckets:
            return 0.0
        return self.total() / (self.windows * self.width)

    @classmethod
    def merged(cls, parts: List["WindowedCounter"]) -> "WindowedCounter":
        """Fleet view: sum per-window buckets across shard counters."""
        if not parts:
            raise ValueError("nothing to merge")
        first = parts[0]
        for other in parts[1:]:
            if (other.width, other.windows) != (first.width, first.windows):
                raise ValueError("mismatched window geometry")
        merged = cls(first.name, width=first.width, windows=first.windows)
        latest = max(
            (max(part._buckets) for part in parts if part._buckets),
            default=None,
        )
        for part in parts:
            merged.lifetime += part.lifetime
            for index, count in part._buckets.items():
                merged._buckets[index] = (
                    merged._buckets.get(index, 0.0) + count
                )
        if latest is not None:
            merged._evict(latest)
        return merged


class WindowedHistogram:
    """Sliding-window distribution: a ring of bounded reservoirs.

    Each ``width``-wide virtual-time window holds at most
    ``cap_per_window`` deterministically decimated samples; only the
    most recent ``windows`` windows are retained.  ``summary`` merges
    the retained reservoirs, so percentiles reflect recent behaviour
    and memory stays O(windows x cap) over an unbounded stream.
    """

    __slots__ = (
        "name",
        "width",
        "windows",
        "cap_per_window",
        "lifetime_count",
        "lifetime_total",
        "_ring",
    )

    def __init__(
        self,
        name: str,
        width: float = 5.0,
        windows: int = 12,
        cap_per_window: int = 256,
    ) -> None:
        if width <= 0:
            raise ValueError("window width must be positive")
        if windows < 1:
            raise ValueError("need at least one window")
        self.name = name
        self.width = width
        self.windows = windows
        self.cap_per_window = cap_per_window
        self.lifetime_count = 0
        self.lifetime_total = 0.0
        self._ring: Dict[int, _Reservoir] = {}

    def _bucket(self, now: float) -> int:
        return int(now // self.width)

    def _evict(self, index: int) -> None:
        floor = index - self.windows + 1
        for stale in [key for key in self._ring if key < floor]:
            del self._ring[stale]

    def observe(self, now: float, value: Number) -> None:
        index = self._bucket(now)
        reservoir = self._ring.get(index)
        if reservoir is None:
            reservoir = self._ring[index] = _Reservoir(self.cap_per_window)
        reservoir.observe(float(value))
        self.lifetime_count += 1
        self.lifetime_total += value
        self._evict(index)

    def summary(self, now: Optional[float] = None) -> Dict[str, float]:
        """p50/p95/p99 over the retained windows' merged samples."""
        if now is not None:
            self._evict(self._bucket(now))
        count = 0
        total = 0.0
        merged: List[float] = []
        for reservoir in self._ring.values():
            count += reservoir.count
            total += reservoir.total
            merged.extend(reservoir.samples)
        merged.sort()
        return {
            "count": count,
            "sum": round(total, 6),
            "mean": round(total / count, 6) if count else 0.0,
            "p50": round(_percentile(merged, 0.50), 6),
            "p95": round(_percentile(merged, 0.95), 6),
            "p99": round(_percentile(merged, 0.99), 6),
            "max": merged[-1] if merged else 0.0,
        }

    @classmethod
    def merged(
        cls, parts: List["WindowedHistogram"]
    ) -> "WindowedHistogram":
        """Fleet view: pool per-window reservoirs across shards.

        Pooled windows re-decimate through the same deterministic
        reservoir, so the merged histogram obeys the same memory bound
        as any single shard's.
        """
        if not parts:
            raise ValueError("nothing to merge")
        first = parts[0]
        for other in parts[1:]:
            if (other.width, other.windows) != (first.width, first.windows):
                raise ValueError("mismatched window geometry")
        merged = cls(
            first.name,
            width=first.width,
            windows=first.windows,
            cap_per_window=first.cap_per_window,
        )
        latest = max(
            (max(part._ring) for part in parts if part._ring),
            default=None,
        )
        for part in parts:
            merged.lifetime_count += part.lifetime_count
            merged.lifetime_total += part.lifetime_total
            for index, reservoir in part._ring.items():
                target = merged._ring.get(index)
                if target is None:
                    target = merged._ring[index] = _Reservoir(
                        merged.cap_per_window
                    )
                for sample in reservoir.samples:
                    target.observe(sample)
                # Reservoir samples under-count the true observation
                # tally; restore the window's real count/sum.
                target.count += reservoir.count - len(reservoir.samples)
                target.total += reservoir.total - sum(reservoir.samples)
        if latest is not None:
            merged._evict(latest)
        return merged


def fleet_snapshot(registries: List["MetricsRegistry"]) -> Dict[str, object]:
    """Merge per-shard registries' windowed metrics into one flat view.

    Plain counters/gauges sum and last-write-wins respectively are NOT
    attempted here — the fleet view is about the windowed (recent)
    metrics; use each registry's own :meth:`MetricsRegistry.snapshot`
    for lifetime totals.
    """
    names_c: Dict[str, List[WindowedCounter]] = {}
    names_h: Dict[str, List[WindowedHistogram]] = {}
    for registry in registries:
        for name, counter in registry.windowed_counters.items():
            names_c.setdefault(name, []).append(counter)
        for name, histogram in registry.windowed_histograms.items():
            names_h.setdefault(name, []).append(histogram)
    view: Dict[str, object] = {}
    for name, counters in sorted(names_c.items()):
        merged = WindowedCounter.merged(counters)
        view[f"{name}.windowed"] = merged.total()
        view[f"{name}.lifetime"] = merged.lifetime
    for name, histograms in sorted(names_h.items()):
        merged = WindowedHistogram.merged(histograms)
        for stat, value in merged.summary().items():
            view[f"{name}.{stat}"] = value
    return view


def _prom_name(prefix: str, name: str) -> str:
    cleaned = []
    for char in name:
        cleaned.append(char if (char.isalnum() or char == "_") else "_")
    return f"{prefix}_{''.join(cleaned)}" if prefix else "".join(cleaned)


class MetricsRegistry:
    """Named counters, gauges and histograms with get-or-create access."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.windowed_counters: Dict[str, WindowedCounter] = {}
        self.windowed_histograms: Dict[str, WindowedHistogram] = {}

    # -- get-or-create accessors --------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name)
        return histogram

    def windowed_counter(
        self, name: str, width: float = 5.0, windows: int = 12
    ) -> WindowedCounter:
        counter = self.windowed_counters.get(name)
        if counter is None:
            counter = self.windowed_counters[name] = WindowedCounter(
                name, width=width, windows=windows
            )
        return counter

    def windowed_histogram(
        self,
        name: str,
        width: float = 5.0,
        windows: int = 12,
        cap_per_window: int = 256,
    ) -> WindowedHistogram:
        histogram = self.windowed_histograms.get(name)
        if histogram is None:
            histogram = self.windowed_histograms[name] = WindowedHistogram(
                name,
                width=width,
                windows=windows,
                cap_per_window=cap_per_window,
            )
        return histogram

    # -- export -------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Flat name -> value mapping (histograms expand to summaries)."""
        values: Dict[str, object] = {}
        for name, counter in sorted(self.counters.items()):
            values[name] = counter.value
        for name, gauge in sorted(self.gauges.items()):
            values[name] = gauge.value
        for name, histogram in sorted(self.histograms.items()):
            for stat, stat_value in histogram.summary().items():
                values[f"{name}.{stat}"] = stat_value
        for name, counter in sorted(self.windowed_counters.items()):
            values[f"{name}.windowed"] = counter.total()
            values[f"{name}.lifetime"] = counter.lifetime
        for name, whistogram in sorted(self.windowed_histograms.items()):
            for stat, stat_value in whistogram.summary().items():
                values[f"{name}.{stat}"] = stat_value
        return values

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name, counter in sorted(self.counters.items()):
            metric = _prom_name(prefix, name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {counter.value}")
        for name, gauge in sorted(self.gauges.items()):
            metric = _prom_name(prefix, name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {gauge.value}")
        for name, histogram in sorted(self.histograms.items()):
            metric = _prom_name(prefix, name)
            summary = histogram.summary()
            lines.append(f"# TYPE {metric} summary")
            for quantile in ("p50", "p95", "p99"):
                lines.append(
                    f'{metric}{{quantile="0.{quantile[1:]}"}} {summary[quantile]}'
                )
            lines.append(f"{metric}_sum {summary['sum']}")
            lines.append(f"{metric}_count {summary['count']}")
        return "\n".join(lines) + ("\n" if lines else "")
