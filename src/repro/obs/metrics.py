"""Metrics registry: counters, gauges and histograms.

One counter system for the whole library.  The incremental core's
:class:`repro.core.perf.PerfCounters` is a facade over this registry,
so hot-path statistics (``perf.*``), admission counters and simulation
latency histograms all export through the same
:meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.to_prometheus`
surface.

Design constraints:

* **Hot-path compatible.**  :class:`Counter` implements the numeric
  protocol (``+=``, comparisons, ``int()``/``float()``/``round()``), so
  existing call sites like ``self.perf.edge_updates += 1`` and test
  assertions like ``perf.log_scans == 0`` keep working unchanged.
* **No dependencies.**  Percentiles are computed locally; the module
  imports nothing from the rest of the library.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

Number = Union[int, float]


def _percentile(ordered: List[float], fraction: float) -> float:
    """Linear-interpolated percentile of an already-sorted sample."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def _value_of(other: object) -> Number:
    if isinstance(other, Counter):
        return other.value
    if isinstance(other, Gauge):
        return other.value
    return other  # type: ignore[return-value]


class Counter:
    """A monotonically increasing counter that quacks like a number."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Number = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    # -- numeric protocol: keep `perf.foo += 1` call sites unchanged --
    def __iadd__(self, amount: Number) -> "Counter":
        self.value += amount
        return self

    def __int__(self) -> int:
        return int(self.value)

    def __float__(self) -> float:
        return float(self.value)

    def __index__(self) -> int:
        return int(self.value)

    def __round__(self, ndigits: Optional[int] = None) -> Number:
        return round(self.value, ndigits) if ndigits is not None else round(self.value)

    def __bool__(self) -> bool:
        return bool(self.value)

    def __eq__(self, other: object) -> bool:
        return self.value == _value_of(other)

    def __ne__(self, other: object) -> bool:
        return self.value != _value_of(other)

    def __lt__(self, other: object) -> bool:
        return self.value < _value_of(other)

    def __le__(self, other: object) -> bool:
        return self.value <= _value_of(other)

    def __gt__(self, other: object) -> bool:
        return self.value > _value_of(other)

    def __ge__(self, other: object) -> bool:
        return self.value >= _value_of(other)

    def __add__(self, other: object) -> Number:
        return self.value + _value_of(other)

    __radd__ = __add__

    def __sub__(self, other: object) -> Number:
        return self.value - _value_of(other)

    def __rsub__(self, other: object) -> Number:
        return _value_of(other) - self.value

    def __mul__(self, other: object) -> Number:
        return self.value * _value_of(other)

    __rmul__ = __mul__

    def __truediv__(self, other: object) -> float:
        return self.value / _value_of(other)

    def __rtruediv__(self, other: object) -> float:
        return _value_of(other) / self.value

    def __hash__(self) -> int:
        return hash((self.name, id(self)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (queue depth, open breakers, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Number = 0) -> None:
        self.name = name
        self.value = value

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def __int__(self) -> int:
        return int(self.value)

    def __float__(self) -> float:
        return float(self.value)

    def __eq__(self, other: object) -> bool:
        return self.value == _value_of(other)

    def __hash__(self) -> int:
        return hash((self.name, id(self)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A sample distribution summarised as p50/p95/p99.

    Keeps the raw observations (simulation runs are bounded); a cap
    protects pathological callers by dropping the *oldest half* once
    ``max_samples`` is exceeded, which biases long-running streams
    toward recent behaviour.
    """

    __slots__ = ("name", "count", "total", "_samples", "max_samples")

    def __init__(self, name: str, max_samples: int = 100_000) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self._samples: List[float] = []
        self.max_samples = max_samples

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        samples = self._samples
        samples.append(float(value))
        if len(samples) > self.max_samples:
            del samples[: len(samples) // 2]

    def summary(self) -> Dict[str, float]:
        ordered = sorted(self._samples)
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "mean": round(self.total / self.count, 6) if self.count else 0.0,
            "p50": round(_percentile(ordered, 0.50), 6),
            "p95": round(_percentile(ordered, 0.95), 6),
            "p99": round(_percentile(ordered, 0.99), 6),
            "max": ordered[-1] if ordered else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name} n={self.count})"


def _prom_name(prefix: str, name: str) -> str:
    cleaned = []
    for char in name:
        cleaned.append(char if (char.isalnum() or char == "_") else "_")
    return f"{prefix}_{''.join(cleaned)}" if prefix else "".join(cleaned)


class MetricsRegistry:
    """Named counters, gauges and histograms with get-or-create access."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- get-or-create accessors --------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name)
        return histogram

    # -- export -------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Flat name -> value mapping (histograms expand to summaries)."""
        values: Dict[str, object] = {}
        for name, counter in sorted(self.counters.items()):
            values[name] = counter.value
        for name, gauge in sorted(self.gauges.items()):
            values[name] = gauge.value
        for name, histogram in sorted(self.histograms.items()):
            for stat, stat_value in histogram.summary().items():
                values[f"{name}.{stat}"] = stat_value
        return values

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name, counter in sorted(self.counters.items()):
            metric = _prom_name(prefix, name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {counter.value}")
        for name, gauge in sorted(self.gauges.items()):
            metric = _prom_name(prefix, name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {gauge.value}")
        for name, histogram in sorted(self.histograms.items()):
            metric = _prom_name(prefix, name)
            summary = histogram.summary()
            lines.append(f"# TYPE {metric} summary")
            for quantile in ("p50", "p95", "p99"):
                lines.append(
                    f'{metric}{{quantile="0.{quantile[1:]}"}} {summary[quantile]}'
                )
            lines.append(f"{metric}_sum {summary['sum']}")
            lines.append(f"{metric}_count {summary['count']}")
        return "\n".join(lines) + ("\n" if lines else "")
