"""Trace and metrics exporters/loaders.

* :func:`read_trace` — load an exported JSONL trace, raising the typed
  :class:`~repro.errors.TraceFormatError` on malformed input (the CLI
  maps it to a clean non-zero exit, never a stack trace).
* :func:`chrome_trace` / :func:`write_chrome_trace` — convert a trace
  stream to Chrome trace-event JSON (the ``{"traceEvents": [...]}``
  document Perfetto and ``chrome://tracing`` load).  One sim time unit
  is rendered as one millisecond.
* :func:`validate_chrome_trace` — structural check of an emitted
  document against the trace-event schema (used by the CI smoke job).
* :func:`write_prometheus` — Prometheus text exposition of a
  :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import TraceFormatError
from repro.obs.spans import derive_spans

__all__ = [
    "read_trace",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "write_prometheus",
]

_REQUIRED_KEYS = ("seq", "ts", "kind", "cat")


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace file.

    Raises :class:`TraceFormatError` when a line is not valid JSON or
    not a trace-record object; raises :class:`FileNotFoundError` for a
    missing file (the CLI maps both to exit code 2).
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceFormatError(
                    f"{path}:{number}: not valid JSON ({error.msg})",
                    line=number,
                ) from error
            if not isinstance(record, dict):
                raise TraceFormatError(
                    f"{path}:{number}: trace record must be a JSON object",
                    line=number,
                )
            missing = [key for key in _REQUIRED_KEYS if key not in record]
            if missing:
                raise TraceFormatError(
                    f"{path}:{number}: record missing keys "
                    f"{', '.join(repr(key) for key in missing)}",
                    line=number,
                )
            records.append(record)
    return records


# -- Chrome trace-event JSON ------------------------------------------

#: Microseconds per sim time unit (one sim unit renders as 1 ms).
_US_PER_UNIT = 1000.0

#: tid lanes within each process track.
_TID_LIFECYCLE = 0
_TID_EXEC = 1


def chrome_trace(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert an exported trace stream to a Chrome trace document."""
    records = list(records)
    spans = derive_spans(records)

    pids: Dict[Optional[str], int] = {None: 0}
    for record in records:
        process = record.get("process")
        if process is not None and process not in pids:
            pids[process] = len(pids)

    events: List[Dict[str, Any]] = []
    for process, pid in pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process if process is not None else "scheduler"},
            }
        )

    for span in spans:
        pid = pids.get(span.process, 0)
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.start * _US_PER_UNIT,
                "dur": span.duration * _US_PER_UNIT,
                "pid": pid,
                "tid": _TID_EXEC if span.cat == "sim" else _TID_LIFECYCLE,
                "args": span.args,
            }
        )

    for record in records:
        kind = record.get("kind")
        if kind == "exec":
            continue  # already rendered as a complete span
        pid = pids.get(record.get("process"), 0)
        args = dict(record.get("data") or {})
        activity = record.get("activity")
        if activity:
            args["activity"] = activity
        events.append(
            {
                "name": kind,
                "cat": record.get("cat", ""),
                "ph": "i",
                "ts": float(record.get("ts") or 0.0) * _US_PER_UNIT,
                "pid": pid,
                "tid": _TID_LIFECYCLE,
                "s": "t",
                "args": args,
            }
        )

    events.extend(_flow_events(records, pids))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _flow_events(
    records: List[Dict[str, Any]],
    pids: Dict[Optional[str], int],
) -> List[Dict[str, Any]]:
    """Perfetto flow arrows for cross-shard message causality.

    Every ``msg_send`` opens a flow (``ph: "s"``) keyed by its bus
    ``seq``; each ``msg_recv`` whose ``data.cause`` names that seq
    closes it (``ph: "f"``, ``bp: "e"``).  A send without a matching
    recv draws no arrow — the message was genuinely lost.  Arrows
    anchor on the scheduler track (pid 0) because the message fabric
    is not process-scoped.
    """
    sends: Dict[int, Dict[str, Any]] = {}
    flows: List[Dict[str, Any]] = []
    for record in records:
        kind = record.get("kind")
        if kind == "msg_send":
            seq = record.get("seq")
            if isinstance(seq, int):
                sends[seq] = record
        elif kind == "msg_recv":
            data_recv = record.get("data") or {}
            if data_recv.get("duplicate"):
                continue  # one arrow per logical delivery
            cause = data_recv.get("cause")
            send = sends.pop(cause, None) if isinstance(cause, int) else None
            if send is None:
                continue
            data = send.get("data") or {}
            name = f"msg {data.get('op') or data.get('kind_') or '?'}"
            pid = pids.get(send.get("process"), 0)
            flows.append(
                {
                    "name": name,
                    "cat": "fed",
                    "ph": "s",
                    "id": cause,
                    "ts": float(send.get("ts") or 0.0) * _US_PER_UNIT,
                    "pid": pid,
                    "tid": _TID_LIFECYCLE,
                    "args": {"src": data.get("src"), "dst": data.get("dst")},
                }
            )
            flows.append(
                {
                    "name": name,
                    "cat": "fed",
                    "ph": "f",
                    "bp": "e",
                    "id": cause,
                    "ts": float(record.get("ts") or 0.0) * _US_PER_UNIT,
                    "pid": pids.get(record.get("process"), 0),
                    "tid": _TID_LIFECYCLE,
                    "args": {},
                }
            )
    return flows


def write_chrome_trace(path: str, records: Iterable[Dict[str, Any]]) -> None:
    document = chrome_trace(records)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"))
        handle.write("\n")


def validate_chrome_trace(document: Any) -> List[str]:
    """Structural validation against the trace-event JSON schema.

    Returns a list of problems (empty when the document is loadable by
    Perfetto/chrome://tracing).
    """
    errors: List[str] = []
    if not isinstance(document, dict):
        return ["document must be a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["document must have a 'traceEvents' array"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            errors.append(f"{where}: missing phase 'ph'")
            continue
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing 'name'")
        if not isinstance(event.get("pid"), int):
            errors.append(f"{where}: 'pid' must be an integer")
        if ph == "M":
            if not isinstance(event.get("args"), dict):
                errors.append(f"{where}: metadata event needs 'args'")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            errors.append(f"{where}: 'ts' must be a number")
        if not isinstance(event.get("tid"), int):
            errors.append(f"{where}: 'tid' must be an integer")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool):
                errors.append(f"{where}: complete event needs numeric 'dur'")
            elif dur < 0:
                errors.append(f"{where}: negative 'dur'")
        elif ph == "i":
            if event.get("s") not in ("t", "p", "g"):
                errors.append(f"{where}: instant event scope 's' invalid")
    return errors


def write_prometheus(path: str, registry: Any, prefix: str = "repro") -> None:
    """Write a registry's Prometheus text exposition to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(registry.to_prometheus(prefix=prefix))
