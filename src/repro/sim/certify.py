"""The one certification gate every harness funnels through.

Four harnesses (chaos, crash-points, overload, federation) used to
carry near-identical copies of the same three steps: run the offline
checkers over the produced history, fold in harness-specific audit
bits, and raise :class:`~repro.errors.CorrectnessViolation` with an
ad-hoc message when the verdict is dirty.  This module unifies them:

* :class:`Certification` / :func:`certify_history` — the offline
  verdict (PRED, reducibility, guaranteed termination), unchanged from
  its original home in :mod:`repro.sim.chaos` (which re-exports both
  for back-compat);
* :func:`ensure_certified` — the single raise site.  Every harness
  passes its verdict plus structured context (harness name, seed,
  extra audit findings) and gets a :class:`CorrectnessViolation`
  carrying a *typed payload* — machine-readable fields the nemesis
  bundle writer and the CLI exit-code logic consume instead of parsing
  prose;
* ``EXIT_OK`` / ``EXIT_VIOLATION`` / ``EXIT_USAGE`` — the CLI exit-code
  contract (0 healthy, 1 correctness violation, 2 usage/typed error),
  stated once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.pred import check_pred
from repro.core.reduction import reduce_schedule
from repro.errors import CorrectnessViolation

__all__ = [
    "Certification",
    "certify_history",
    "ensure_certified",
    "EXIT_OK",
    "EXIT_VIOLATION",
    "EXIT_USAGE",
]

#: CLI exit-code contract shared by every ``repro`` subcommand.
EXIT_OK = 0
EXIT_VIOLATION = 1
EXIT_USAGE = 2


@dataclass(frozen=True)
class Certification:
    """Offline verdict on one produced history (all harnesses share
    it): PRED, reducibility, and termination."""

    pred: bool
    reducible: bool
    terminated: bool

    @property
    def certified(self) -> bool:
        return self.pred and self.reducible and self.terminated

    def describe(self) -> str:
        return (
            f"pred={self.pred} reducible={self.reducible} "
            f"terminated={self.terminated}"
        )

    def as_dict(self) -> Dict[str, bool]:
        return {
            "pred": self.pred,
            "reducible": self.reducible,
            "terminated": self.terminated,
        }


def certify_history(history, terminated: bool) -> Certification:
    """Run the offline checkers over a produced history.

    ``terminated`` is the harness's own observation that every submitted
    process reached a terminal state (guaranteed termination) — the
    checkers cannot see processes that produced no events.
    """
    return Certification(
        pred=check_pred(history).is_pred,
        reducible=reduce_schedule(history).is_reducible,
        terminated=terminated,
    )


def ensure_certified(
    verdict: Certification,
    *,
    harness: str,
    seed: Optional[int] = None,
    clean: bool = True,
    detail: str = "",
    details: Optional[Dict[str, object]] = None,
) -> None:
    """Raise a typed :class:`CorrectnessViolation` unless the run is clean.

    ``clean`` folds in harness-specific audit results (decision audit,
    F-REC shed count, ...) that the offline checkers cannot see;
    ``detail``/``details`` describe them for the message and the typed
    payload respectively.
    """
    if verdict.certified and clean:
        return
    context = f" (seed {seed})" if seed is not None else ""
    message = (
        f"{harness} run{context} failed certification: "
        f"{verdict.describe()}"
    )
    if detail:
        message = f"{message} {detail}"
    raise CorrectnessViolation(
        message,
        harness=harness,
        seed=seed,
        verdict=verdict.as_dict(),
        details=dict(details or {}),
    )
