"""Metrics collected by simulation runs and benchmark sweeps.

A :class:`RunMetrics` aggregates what one run produced — virtual-time
makespan, per-process latencies, dispatch/abort counts and correctness
grades from the offline checkers — and knows how to summarise itself
into the row format the benchmark harness prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["RunMetrics", "percentile", "summarize"]


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile; 0 for empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / p50 / p95 / max of a sample."""
    if not values:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "mean": sum(values) / len(values),
        "p50": percentile(values, 0.50),
        "p95": percentile(values, 0.95),
        "max": max(values),
    }


@dataclass
class RunMetrics:
    """Everything one scheduler run produced, in virtual time."""

    scheduler_name: str
    #: Virtual time at which the last process terminated.
    makespan: float = 0.0
    #: instance id -> (start, end) virtual times.
    process_spans: Dict[str, tuple] = field(default_factory=dict)
    processes_committed: int = 0
    processes_aborted: int = 0
    activities_dispatched: int = 0
    deferrals: int = 0
    victim_aborts: int = 0
    restarts: int = 0
    #: Resilience-layer counters (zero when the layer is off).
    retries: int = 0
    timeouts: int = 0
    degradations: int = 0
    breaker_trips: int = 0
    breaker_recoveries: int = 0
    #: Faults the chaos harness injected into the run.
    faults_injected: int = 0
    #: Overload-layer counters (zero when admission control is off):
    #: offers seen at the front door, offers turned away (rejected at
    #: the door or evicted from the admission queue), admitted B-REC
    #: processes cancelled by the load shedder, starvation-watchdog
    #: priority boosts and livelock-watchdog escalations.
    processes_offered: int = 0
    processes_rejected: int = 0
    processes_shed: int = 0
    starvation_boosts: int = 0
    livelock_escalations: int = 0
    #: ``(virtual time, admission queue depth)`` samples, recorded by
    #: the simulation runner whenever the depth changes.
    queue_depth_series: List[tuple] = field(default_factory=list)
    #: Perf counters of the scheduler's incremental core (conflict
    #: lookups and cache hits, index hits, graph-edge updates,
    #: certification time — see ``repro.core.perf``); empty for
    #: schedulers that do not expose ``perf_snapshot()``.
    perf: Dict[str, float] = field(default_factory=dict)
    #: Offline correctness grades (filled by the benchmark harness).
    serializable: Optional[bool] = None
    process_recoverable: Optional[bool] = None
    prefix_reducible: Optional[bool] = None
    #: History replay failed — the history is not even a legal execution.
    illegal_history: bool = False

    @property
    def latencies(self) -> List[float]:
        return [end - start for start, end in self.process_spans.values()]

    @property
    def throughput(self) -> float:
        """Committed processes per unit of virtual time."""
        if self.makespan <= 0:
            return 0.0
        return self.processes_committed / self.makespan

    @property
    def goodput(self) -> float:
        """Committed processes per unit virtual time.

        Identical to :attr:`throughput` in a closed system; the name
        matters under overload, where offered load and useful completed
        work diverge — shed and rejected processes never count.
        """
        return self.throughput

    @property
    def shed_rate(self) -> float:
        """Fraction of offered processes the load shedder cancelled."""
        if self.processes_offered <= 0:
            return 0.0
        return self.processes_shed / self.processes_offered

    @property
    def reject_rate(self) -> float:
        """Fraction of offered processes turned away unstarted."""
        if self.processes_offered <= 0:
            return 0.0
        return self.processes_rejected / self.processes_offered

    @property
    def peak_queue_depth(self) -> int:
        """Deepest the admission queue ever got."""
        if not self.queue_depth_series:
            return 0
        return max(depth for _, depth in self.queue_depth_series)

    @property
    def is_correct(self) -> bool:
        """All offline grades passed (graded ones only)."""
        if self.illegal_history:
            return False
        grades = [
            grade
            for grade in (
                self.serializable,
                self.process_recoverable,
                self.prefix_reducible,
            )
            if grade is not None
        ]
        return all(grades)

    def row(self) -> Dict[str, object]:
        """Flat row for the benchmark report tables."""
        latency = summarize(self.latencies)
        return {
            "scheduler": self.scheduler_name,
            "makespan": round(self.makespan, 3),
            "throughput": round(self.throughput, 4),
            "latency_mean": round(latency["mean"], 3),
            "latency_p95": round(latency["p95"], 3),
            "committed": self.processes_committed,
            "aborted": self.processes_aborted,
            "dispatched": self.activities_dispatched,
            "deferrals": self.deferrals,
            "victim_aborts": self.victim_aborts,
            "restarts": self.restarts,
            "serializable": self.serializable,
            "proc_rec": self.process_recoverable,
            "pred": self.prefix_reducible,
        }

    def overload_row(self) -> Dict[str, object]:
        """Flat row of the admission/shedding counters (X10 tables)."""
        latency = summarize(self.latencies)
        return {
            "scheduler": self.scheduler_name,
            "offered": self.processes_offered,
            "committed": self.processes_committed,
            "aborted": self.processes_aborted,
            "rejected": self.processes_rejected,
            "shed": self.processes_shed,
            "goodput": round(self.goodput, 4),
            "latency_p95": round(latency["p95"], 3),
            "queue_peak": self.peak_queue_depth,
            "starved": self.starvation_boosts,
            "livelocks": self.livelock_escalations,
            "pred": self.prefix_reducible,
        }

    def perf_row(self) -> Dict[str, object]:
        """Flat row of the incremental-core perf counters (X11 tables)."""
        ops = max(self.activities_dispatched, 1)
        lookups = self.perf.get("conflict_lookups", 0)
        hits = self.perf.get("conflict_cache_hits", 0)
        return {
            "scheduler": self.scheduler_name,
            "dispatched": self.activities_dispatched,
            "conflict_lookups": int(lookups),
            "lookups_per_op": round(lookups / ops, 1),
            "cache_hit_rate": round(hits / lookups, 3) if lookups else 0.0,
            "index_lookups": int(self.perf.get("index_lookups", 0)),
            "edge_updates": int(self.perf.get("edge_updates", 0)),
            "edges_per_op": round(
                self.perf.get("edge_updates", 0) / ops, 1
            ),
            "topo_shifts": int(self.perf.get("topo_shifts", 0)),
            "cycle_fast": int(self.perf.get("cycle_fast_path", 0)),
            "cycle_dfs": int(self.perf.get("cycle_dfs", 0)),
            "certified": int(self.perf.get("certified_prefixes", 0)),
            "certify_ms": round(self.perf.get("certify_ms", 0.0), 2),
        }

    def resilience_row(self) -> Dict[str, object]:
        """Flat row of the resilience/chaos counters."""
        return {
            "scheduler": self.scheduler_name,
            "faults": self.faults_injected,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "breaker_trips": self.breaker_trips,
            "recoveries": self.breaker_recoveries,
            "degradations": self.degradations,
            "committed": self.processes_committed,
            "aborted": self.processes_aborted,
            "pred": self.prefix_reducible,
        }
