"""Chaos harness: seeded fault sweeps with PRED certification.

Exercises the resilience layer end to end: a synthetic workload runs
under the PRED scheduler while a :class:`~repro.subsystems.failures.ChaosPolicy`
injects aborts, latency spikes, hang-until-timeout and crash-stop
faults, all deterministic given the seed.  After every run the harness
certifies the produced history with the offline checkers — Theorem 1's
guarantees must survive the new layer — and surfaces the
retry/breaker/degradation counters.

Entry points:

* :func:`run_chaos` — one seeded run of one fault mix, certified;
* :func:`chaos_sweep` — a grid of mixes × seeds, returning the row
  format the benchmark harness and the CLI print;
* :func:`default_mixes` — the named standard mixes (aborts, latency,
  hangs, crashes, mixed).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.scheduler import TransactionalProcessScheduler
from repro.resilience import BreakerConfig, ResilienceManager, RetryPolicy
from repro.sim.certify import Certification, certify_history, ensure_certified
from repro.sim.metrics import RunMetrics
from repro.sim.runner import SimulationRunner
from repro.sim.workload import WorkloadSpec, generate_workload
from repro.subsystems.backend import BACKEND_KINDS, BackendHub
from repro.subsystems.failures import ChaosPolicy
from repro.subsystems.subsystem import SubsystemRegistry

__all__ = [
    "ChaosSpec",
    "ChaosResult",
    "Certification",
    "certify_history",
    "default_mixes",
    "run_chaos",
    "chaos_sweep",
]


# ``Certification`` and ``certify_history`` live in
# :mod:`repro.sim.certify` now; re-exported here for back-compat.


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos experiment: workload shape + fault mix + resilience knobs."""

    name: str = "chaos"
    #: Shape of the synthetic workload (its own seed is overridden by
    #: :attr:`seed` so one spec sweeps cleanly over seeds).
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    #: Fault mix (per-attempt probabilities; sum must stay below 1).
    abort_rate: float = 0.0
    latency_rate: float = 0.0
    hang_rate: float = 0.0
    crash_rate: float = 0.0
    latency_span: Tuple[float, float] = (1.0, 4.0)
    hang_duration: float = 6.0
    crash_span: Tuple[float, float] = (4.0, 10.0)
    #: Cap on consecutive injected faults per service (bounded failures
    #: — the assumption guaranteed termination rests on).
    max_consecutive: int = 4
    #: When set, concentrate injection on the first N pool services —
    #: realistic chaos (a few unhealthy services) and the regime where
    #: breakers trip hard enough for ◁-degradation to kick in.
    target_services: Optional[int] = None
    #: Resilience knobs.
    timeout: float = 3.0
    max_attempts: int = 3
    base_delay: float = 0.2
    breaker_threshold: int = 2
    breaker_reset: float = 5.0
    #: Master seed: drives workload generation and fault injection.
    seed: int = 0
    #: Store backend behind every subsystem (``memory``/``sqlite``/
    #: ``procpool``); the scheduler's decisions do not depend on it —
    #: the same spec must certify identically over every backend.
    backend: str = "memory"

    def __post_init__(self) -> None:
        if self.backend not in BACKEND_KINDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{', '.join(BACKEND_KINDS)}"
            )

    def with_seed(self, seed: int) -> "ChaosSpec":
        return replace(self, seed=seed)


@dataclass
class ChaosResult:
    """Everything one certified chaos run produced."""

    spec: ChaosSpec
    metrics: RunMetrics
    #: Faults delivered, by kind (``abort``/``latency``/``hang``/``crash``).
    injected: Dict[str, int]
    #: Resilience counters (retries, timeouts, breaker trips, ...).
    counters: Dict[str, int]
    #: Offline certification of the produced history.
    pred: bool
    reducible: bool
    #: Every submitted process reached a terminal state (guaranteed
    #: termination held under chaos).
    terminated: bool

    @property
    def certified(self) -> bool:
        return self.pred and self.reducible and self.terminated

    def row(self) -> Dict[str, object]:
        """Flat row for sweep tables."""
        return {
            "mix": self.spec.name,
            "seed": self.spec.seed,
            "backend": self.spec.backend,
            "faults": sum(self.injected.values()),
            "aborts": self.injected.get("abort", 0),
            "latency": self.injected.get("latency", 0),
            "hangs": self.injected.get("hang", 0),
            "crashes": self.injected.get("crash", 0),
            "retries": self.counters.get("retries", 0),
            "timeouts": self.counters.get("timeouts", 0),
            "trips": self.counters.get("breaker_trips", 0),
            "recoveries": self.counters.get("breaker_recoveries", 0),
            "degradations": self.counters.get("degradations", 0),
            "committed": self.metrics.processes_committed,
            "aborted": self.metrics.processes_aborted,
            "makespan": round(self.metrics.makespan, 3),
            "pred": self.pred,
            "terminated": self.terminated,
        }


def default_mixes(
    processes: int = 8,
    alternative_probability: float = 0.9,
) -> List[ChaosSpec]:
    """The named standard fault mixes swept by benchmarks and CI.

    A high alternative probability keeps degradation paths available —
    the sweep is about exercising ◁-switching, not only retries — and
    injection is concentrated on a quarter of the service pool so
    breakers actually trip (diffuse single-shot faults never would).
    """
    workload = WorkloadSpec(
        processes=processes,
        alternative_probability=alternative_probability,
        prefix_range=(2, 4),
        service_pool=12,
        conflict_rate=0.03,
    )
    base = ChaosSpec(
        workload=workload,
        target_services=3,
        breaker_threshold=2,
        breaker_reset=8.0,
    )
    return [
        replace(base, name="aborts", abort_rate=0.6),
        replace(base, name="latency", latency_rate=0.6, latency_span=(1.0, 5.0)),
        replace(base, name="hangs", hang_rate=0.5),
        replace(base, name="crashes", crash_rate=0.4),
        replace(
            base,
            name="mixed",
            abort_rate=0.25,
            latency_rate=0.2,
            hang_rate=0.15,
            crash_rate=0.1,
        ),
    ]


def _build(spec: ChaosSpec, trace=None, metrics=None, hub=None):
    """Scheduler + runner + chaos policy for one spec, wired together.

    ``hub`` is the run's :class:`~repro.subsystems.backend.BackendHub`
    (``None`` keeps the in-memory default); its factory backs every
    auto-provisioned subsystem, so the whole harness runs unchanged
    over real storage.
    """
    workload = generate_workload(replace(spec.workload, seed=spec.seed))
    targets = None
    if spec.target_services is not None:
        targets = [f"svc{i}" for i in range(spec.target_services)]
    chaos = ChaosPolicy(
        abort_rate=spec.abort_rate,
        latency_rate=spec.latency_rate,
        hang_rate=spec.hang_rate,
        crash_rate=spec.crash_rate,
        latency_span=spec.latency_span,
        hang_duration=spec.hang_duration,
        crash_span=spec.crash_span,
        seed=spec.seed + 1,
        max_consecutive=spec.max_consecutive,
        services=targets,
    )
    manager = ResilienceManager(
        policy=RetryPolicy(
            timeout=spec.timeout,
            max_attempts=spec.max_attempts,
            base_delay=spec.base_delay,
            seed=spec.seed,
        ),
        breaker=BreakerConfig(
            failure_threshold=spec.breaker_threshold,
            reset_timeout=spec.breaker_reset,
        ),
    )
    registry = SubsystemRegistry(
        backend_factory=hub.backend_for if hub is not None else None
    )
    scheduler = TransactionalProcessScheduler(
        registry=registry,
        conflicts=workload.conflicts,
        resilience=manager,
        trace=trace,
        metrics=metrics,
    )
    for process in workload.processes:
        scheduler.submit(process, failures=chaos)
    runner = SimulationRunner(scheduler, durations=workload.duration)
    return scheduler, runner, chaos


def run_chaos(
    spec: ChaosSpec, certify: bool = True, trace=None, metrics=None
) -> ChaosResult:
    """One seeded chaos run; certifies the produced history offline.

    With ``certify=True`` a history that fails PRED (or a process that
    failed to terminate) raises
    :class:`~repro.errors.CorrectnessViolation` — the harness's hard
    assertion that Theorem 1's guarantees survive the resilience layer.
    """
    hub = BackendHub(spec.backend) if spec.backend != "memory" else None
    try:
        scheduler, runner, chaos = _build(
            spec, trace=trace, metrics=metrics, hub=hub
        )
        if trace is not None and trace.enabled:
            trace.emit(
                "run_begin",
                harness="chaos",
                mix=spec.name,
                seed=spec.seed,
                backend=spec.backend,
            )
        run_metrics = runner.run()
        verdict = certify_history(
            scheduler.history(), scheduler.all_terminated()
        )
        counters = scheduler.resilience.snapshot()
        scheduler.registry.close()
    finally:
        if hub is not None:
            hub.close()
    run_metrics.prefix_reducible = verdict.pred
    run_metrics.faults_injected = chaos.total_injected
    if trace is not None and trace.enabled:
        trace.emit(
            "run_end",
            harness="chaos",
            mix=spec.name,
            seed=spec.seed,
            committed=run_metrics.processes_committed,
            aborted=run_metrics.processes_aborted,
            makespan=run_metrics.makespan,
            certified=verdict.certified,
        )
    result = ChaosResult(
        spec=spec,
        metrics=run_metrics,
        injected=dict(chaos.injected),
        counters=counters,
        pred=verdict.pred,
        reducible=verdict.reducible,
        terminated=verdict.terminated,
    )
    if certify:
        ensure_certified(
            verdict,
            harness=f"chaos:{spec.name}",
            seed=spec.seed,
            details={"mix": spec.name, "backend": spec.backend},
        )
    return result


def chaos_sweep(
    mixes: Optional[Sequence[ChaosSpec]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    certify: bool = True,
    trace=None,
    metrics=None,
) -> List[ChaosResult]:
    """Sweep fault mixes × seeds; every run is certified by default."""
    results: List[ChaosResult] = []
    for spec in mixes if mixes is not None else default_mixes():
        for seed in seeds:
            results.append(
                run_chaos(
                    spec.with_seed(seed),
                    certify=certify,
                    trace=trace,
                    metrics=metrics,
                )
            )
    return results
