"""Virtual time for the discrete-event simulation.

The simulation measures *virtual* durations (activity service times) so
benchmark results are deterministic and independent of host speed.  The
clock only ever moves forward, driven by the event queue.
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonically advancing virtual clock."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time`` (never backwards)."""
        if time < self._now:
            raise ValueError(
                f"virtual time cannot move backwards: {time} < {self._now}"
            )
        self._now = time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(t={self._now:.3f})"
