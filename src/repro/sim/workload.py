"""Randomised workloads of well-formed flex processes.

The paper has no quantitative evaluation; the extension benchmarks
(X1-X6) need controlled synthetic workloads whose knobs map to the
paper's concepts:

* **process shape** — number of activities, alternative-path depth and
  the compensatable/pivot/retriable mix (the flex structure);
* **conflict rate** — the probability that two distinct services
  conflict (Definition 6), the x-axis of the scheduler comparison;
* **failure rate** — per-invocation abort probability, driving
  alternative execution and recovery.

Generation is fully deterministic given the seed.  Every generated
process has well-formed flex structure by construction (generated
through the :mod:`repro.core.flex` DSL), hence guaranteed termination.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.conflict import ConflictRelation, ExplicitConflicts
from repro.core.flex import FlexSeq, build_process, choice, comp, pivot, retr, seq
from repro.core.process import Process
from repro.subsystems.failures import FailurePolicy, ProbabilisticFailures

__all__ = [
    "WorkloadSpec",
    "Workload",
    "generate_workload",
    "generate_process",
    "ArrivalSpec",
    "generate_arrivals",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Knobs of a synthetic workload."""

    #: Number of processes.
    processes: int = 8
    #: Inclusive range of compensatable activities before the pivot.
    prefix_range: Tuple[int, int] = (1, 3)
    #: Inclusive range of retriable activities after the pivot/branches.
    suffix_range: Tuple[int, int] = (1, 3)
    #: Probability that a pivot carries alternative branches.
    alternative_probability: float = 0.5
    #: Maximum nesting depth of alternative structures.
    max_depth: int = 2
    #: Number of distinct services in the shared pool.
    service_pool: int = 20
    #: Probability that two distinct pool services conflict.
    conflict_rate: float = 0.1
    #: Per-invocation abort probability (non-retriable activities fail
    #: terminally; retriable ones retry).
    failure_rate: float = 0.0
    #: RNG seed — everything is deterministic given the seed.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.processes < 1:
            raise ValueError("workload needs at least one process")
        if not 0.0 <= self.conflict_rate <= 1.0:
            raise ValueError("conflict_rate must be in [0, 1]")
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError("failure_rate must be in [0, 1)")


@dataclass
class Workload:
    """A generated workload, ready to submit to any scheduler."""

    spec: WorkloadSpec
    processes: List[Process]
    conflicts: ConflictRelation
    failures: FailurePolicy
    #: Per-service base durations for the simulation (virtual time).
    durations: Dict[str, float] = field(default_factory=dict)

    def duration(self, service: str) -> float:
        base = service.split("~", 1)[0]
        return self.durations.get(base, 1.0)


def generate_process(
    rng: random.Random,
    spec: WorkloadSpec,
    process_id: str,
    services: Sequence[str],
) -> Process:
    """Generate one well-formed flex process via the structure DSL."""
    counter = [0]

    def next_name() -> str:
        counter[0] += 1
        return f"a{counter[0]}"

    def pick_service() -> str:
        return rng.choice(services)

    def gen_retr_suffix() -> FlexSeq:
        length = rng.randint(*spec.suffix_range)
        return seq(
            *(retr(next_name(), service=pick_service()) for _ in range(length))
        )

    def gen_structure(depth: int) -> FlexSeq:
        prefix_length = rng.randint(*spec.prefix_range)
        parts = [
            comp(next_name(), service=pick_service())
            for _ in range(prefix_length)
        ]
        parts.append(pivot(next_name(), service=pick_service()))
        if depth < spec.max_depth and rng.random() < spec.alternative_probability:
            primary = gen_structure(depth + 1)
            fallback = gen_retr_suffix()
            return seq(*parts, choice(primary, fallback))
        return seq(*parts, gen_retr_suffix())

    return build_process(process_id, gen_structure(0))


@dataclass(frozen=True)
class ArrivalSpec:
    """Open-loop arrival model: processes arrive at a given offered load.

    The closed-loop workloads above submit a fixed batch and measure
    how fast it drains; overload cannot be expressed that way.  An
    arrival spec turns the same processes into an *open* system: they
    arrive over virtual time at :attr:`offered_load` processes per unit
    time, independently of how fast the scheduler completes them — the
    gap between offered load and capacity is what the admission layer
    has to absorb.
    """

    #: Mean arrivals per unit of virtual time (λ).
    offered_load: float = 1.0
    #: ``poisson`` — exponential inter-arrival times (memoryless open
    #: traffic); ``fixed`` — a deterministic 1/λ spacing.
    mode: str = "poisson"
    #: RNG seed for the Poisson draws (deterministic given the seed).
    seed: int = 0
    #: Virtual time of the first possible arrival.
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.offered_load <= 0:
            raise ValueError("offered_load must be positive")
        if self.mode not in ("poisson", "fixed"):
            raise ValueError(
                f"mode must be 'poisson' or 'fixed', got {self.mode!r}"
            )


def generate_arrivals(count: int, spec: ArrivalSpec) -> List[float]:
    """``count`` non-decreasing arrival times under ``spec``."""
    if count < 0:
        raise ValueError("count must be >= 0")
    rng = random.Random(spec.seed)
    times: List[float] = []
    now = spec.start
    for _ in range(count):
        if spec.mode == "poisson":
            now += rng.expovariate(spec.offered_load)
        else:
            now += 1.0 / spec.offered_load
        times.append(now)
    return times


def generate_workload(spec: WorkloadSpec) -> Workload:
    """Generate processes, a conflict relation and a failure policy."""
    rng = random.Random(spec.seed)
    services = [f"svc{i}" for i in range(spec.service_pool)]

    processes = [
        generate_process(rng, spec, f"W{index}", services)
        for index in range(spec.processes)
    ]

    conflicts = ExplicitConflicts()
    for i in range(len(services)):
        for j in range(i, len(services)):
            if rng.random() < spec.conflict_rate:
                conflicts.declare(services[i], services[j])

    failures = ProbabilisticFailures(
        rate=spec.failure_rate, seed=spec.seed + 1
    )

    durations = {
        service: round(0.5 + rng.random(), 3) for service in services
    }
    return Workload(
        spec=spec,
        processes=processes,
        conflicts=conflicts,
        failures=failures,
        durations=durations,
    )
