"""Overload harness: open-loop arrival sweeps with PRED certification (X10).

The closed-loop harnesses measure how fast a fixed batch drains; this
one measures what happens when work keeps *arriving* faster than the
system can finish it.  Processes arrive at a configurable offered load
(Poisson or fixed-rate), hit the scheduler's bounded admission front
door, and the sweep reports goodput, sojourn latency and shed/reject
rates as offered load rises past saturation — the healthy signature is
a goodput plateau with bounded p95 sojourn, not congestion collapse.

Every run is certified by the same offline checkers the chaos harness
uses (:func:`repro.sim.chaos.certify_history`), and additionally
asserts the admission layer's invariant: **no process with a committed
pivot (F-REC) is ever shed** — shed processes are always fully
compensated B-REC cancellations.

Entry points:

* :func:`run_overload` — one seeded open-loop run at one offered load;
* :func:`overload_sweep` — loads × seeds grid, row format for tables;
* :func:`estimate_capacity` — closed-loop capacity estimate used to
  place the sweep's load axis around saturation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.core.admission import AdmissionConfig, WatchdogConfig
from repro.core.scheduler import ManagedStatus, TransactionalProcessScheduler
from repro.resilience import BreakerConfig, ResilienceManager, RetryPolicy
from repro.sim.certify import (
    Certification,
    certify_history,
    ensure_certified,
)
from repro.sim.metrics import RunMetrics, percentile
from repro.sim.runner import Arrival, SimulationRunner
from repro.sim.workload import (
    ArrivalSpec,
    WorkloadSpec,
    generate_arrivals,
    generate_workload,
)

__all__ = [
    "OverloadSpec",
    "OverloadResult",
    "run_overload",
    "overload_sweep",
    "estimate_capacity",
]


@dataclass(frozen=True)
class OverloadSpec:
    """One overload experiment: workload shape + arrivals + admission."""

    name: str = "overload"
    #: Shape of the synthetic workload (its seed is overridden by
    #: :attr:`seed` so one spec sweeps cleanly over seeds).
    workload: WorkloadSpec = field(
        default_factory=lambda: WorkloadSpec(
            processes=32, service_pool=16, conflict_rate=0.03
        )
    )
    #: Mean process arrivals per unit of virtual time (λ).
    offered_load: float = 1.0
    arrival_mode: str = "poisson"
    #: Admission knobs (see :class:`~repro.core.admission.AdmissionConfig`).
    max_active: Optional[int] = 8
    max_queue_depth: int = 16
    max_queue_age: Optional[float] = 10.0
    shed_policy: str = "shed-youngest-brec"
    breaker_throttle_fraction: Optional[float] = None
    #: Watchdog knobs (see :class:`~repro.core.admission.WatchdogConfig`).
    starvation_rounds: Optional[int] = 500
    livelock_flaps: Optional[int] = 40
    #: Resilience knobs.
    timeout: float = 5.0
    max_attempts: int = 3
    base_delay: float = 0.2
    breaker_threshold: int = 3
    breaker_reset: float = 8.0
    #: Master seed: drives workload generation and the arrival draws.
    seed: int = 0

    def with_seed(self, seed: int) -> "OverloadSpec":
        return replace(self, seed=seed)

    def with_load(self, offered_load: float) -> "OverloadSpec":
        return replace(self, offered_load=offered_load)


@dataclass
class OverloadResult:
    """Everything one certified overload run produced."""

    spec: OverloadSpec
    metrics: RunMetrics
    #: Offline certification of the produced history.
    certification: Certification
    #: Sojourn times (terminal time − offer time, queue wait included)
    #: of the *committed* processes.
    sojourns: List[float]
    #: Shed processes that had a committed pivot — must always be 0;
    #: the scheduler refuses such sheds structurally, this re-counts
    #: them from the final state as a belt-and-braces audit.
    frec_sheds: int
    #: Resilience counters (retries, breaker trips, ...).
    counters: Dict[str, int]

    @property
    def certified(self) -> bool:
        return self.certification.certified and self.frec_sheds == 0

    def row(self) -> Dict[str, object]:
        """Flat row for sweep tables."""
        metrics = self.metrics
        return {
            "load": round(self.spec.offered_load, 4),
            "seed": self.spec.seed,
            "offered": metrics.processes_offered,
            "committed": metrics.processes_committed,
            "aborted": metrics.processes_aborted,
            "rejected": metrics.processes_rejected,
            "shed": metrics.processes_shed,
            "goodput": round(metrics.goodput, 4),
            "sojourn_p50": round(percentile(self.sojourns, 0.50), 3),
            "sojourn_p95": round(percentile(self.sojourns, 0.95), 3),
            "queue_peak": metrics.peak_queue_depth,
            "starved": metrics.starvation_boosts,
            "livelocks": metrics.livelock_escalations,
            "frec_sheds": self.frec_sheds,
            "certified": self.certified,
        }


def _build(spec: OverloadSpec, trace=None, metrics=None):
    """Scheduler + open-loop runner for one spec, wired together."""
    workload = generate_workload(replace(spec.workload, seed=spec.seed))
    times = generate_arrivals(
        len(workload.processes),
        ArrivalSpec(
            offered_load=spec.offered_load,
            mode=spec.arrival_mode,
            seed=spec.seed + 1,
        ),
    )
    manager = ResilienceManager(
        policy=RetryPolicy(
            timeout=spec.timeout,
            max_attempts=spec.max_attempts,
            base_delay=spec.base_delay,
            seed=spec.seed,
        ),
        breaker=BreakerConfig(
            failure_threshold=spec.breaker_threshold,
            reset_timeout=spec.breaker_reset,
        ),
    )
    scheduler = TransactionalProcessScheduler(
        conflicts=workload.conflicts,
        resilience=manager,
        admission=AdmissionConfig(
            max_active=spec.max_active,
            max_queue_depth=spec.max_queue_depth,
            max_queue_age=spec.max_queue_age,
            shed_policy=spec.shed_policy,
            breaker_throttle_fraction=spec.breaker_throttle_fraction,
        ),
        watchdogs=WatchdogConfig(
            starvation_rounds=spec.starvation_rounds,
            livelock_flaps=spec.livelock_flaps,
        ),
        trace=trace,
        metrics=metrics,
    )
    offers = [
        Arrival(time=time, process=process, failures=workload.failures)
        for time, process in zip(times, workload.processes)
    ]
    runner = SimulationRunner(
        scheduler, durations=workload.duration, offers=offers
    )
    return scheduler, runner


def run_overload(
    spec: OverloadSpec, certify: bool = True, trace=None, metrics=None
) -> OverloadResult:
    """One seeded open-loop run; certifies the produced history offline.

    With ``certify=True`` a history that fails PRED, a process that
    failed to terminate, or an F-REC shed raises
    :class:`~repro.errors.CorrectnessViolation` — overload control must
    never buy throughput with correctness.
    """
    scheduler, runner = _build(spec, trace=trace, metrics=metrics)
    if trace is not None and trace.enabled:
        trace.emit(
            "run_begin",
            harness="overload",
            load=spec.offered_load,
            seed=spec.seed,
        )
    run_metrics = runner.run()
    verdict = certify_history(scheduler.history(), scheduler.all_terminated())
    run_metrics.prefix_reducible = verdict.pred
    frec_sheds = sum(
        1
        for pid in scheduler.shed_ids
        if scheduler.managed(pid).is_hardened
    )
    sojourns = [
        end - scheduler.managed(pid).offered_at
        for pid, (_, end) in run_metrics.process_spans.items()
        if scheduler.managed(pid).status is ManagedStatus.COMMITTED
    ]
    if trace is not None and trace.enabled:
        trace.emit(
            "run_end",
            harness="overload",
            load=spec.offered_load,
            seed=spec.seed,
            committed=run_metrics.processes_committed,
            aborted=run_metrics.processes_aborted,
            shed=run_metrics.processes_shed,
            makespan=run_metrics.makespan,
            certified=verdict.certified and frec_sheds == 0,
        )
    result = OverloadResult(
        spec=spec,
        metrics=run_metrics,
        certification=verdict,
        sojourns=sorted(sojourns),
        frec_sheds=frec_sheds,
        counters=scheduler.resilience.snapshot(),
    )
    if certify:
        ensure_certified(
            verdict,
            harness=f"overload:{spec.name}",
            seed=spec.seed,
            clean=frec_sheds == 0,
            detail=f"frec_sheds={frec_sheds}",
            details={"load": spec.offered_load, "frec_sheds": frec_sheds},
        )
    return result


def overload_sweep(
    loads: Sequence[float],
    base: Optional[OverloadSpec] = None,
    seeds: Sequence[int] = (0,),
    certify: bool = True,
    trace=None,
    metrics=None,
) -> List[OverloadResult]:
    """Sweep offered loads × seeds; every run is certified by default."""
    spec = base if base is not None else OverloadSpec()
    results: List[OverloadResult] = []
    for load in loads:
        for seed in seeds:
            results.append(
                run_overload(
                    spec.with_load(load).with_seed(seed),
                    certify=certify,
                    trace=trace,
                    metrics=metrics,
                )
            )
    return results


def estimate_capacity(
    base: Optional[OverloadSpec] = None, seed: int = 0
) -> float:
    """Closed-loop capacity estimate (committed processes per unit time).

    Runs the spec's workload with everything offered at once, an
    unbounded queue and shedding disabled — the drain rate of a
    saturated-but-unshed system approximates the service capacity the
    sweep's load axis should straddle.
    """
    spec = base if base is not None else OverloadSpec()
    closed = replace(
        spec,
        offered_load=1000.0,
        arrival_mode="fixed",
        max_queue_depth=spec.workload.processes + 1,
        max_queue_age=None,
        shed_policy="reject-new",
        breaker_throttle_fraction=None,
        seed=seed,
    )
    result = run_overload(closed, certify=False)
    return max(result.metrics.goodput, 1e-6)
