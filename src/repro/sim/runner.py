"""Virtual-time execution of scheduler runs (benchmarks X1-X3).

The logical schedulers decide *admissibility* — which activity may run
next so that the history stays correct.  This runner adds *time*: every
activity has a virtual duration, activities of different processes
overlap when the scheduler admits them, and the run's **makespan** and
per-process latencies fall out of a discrete-event simulation.

Temporal ordering modes (paper §3.6):

* ``strong`` (default) — a conflicting activity may only *start* after
  the conflicting in-flight activity *finished*: the strong order
  enforces sequential execution of conflicting work.
* ``weak`` — conflicting activities may overlap in time; the subsystem
  is assumed to guarantee the overall effect equals the strong order
  (commit-order serializability), so only the logical admission rules
  constrain the start.  The makespan gap between the two modes is the
  parallelism the composite-systems weak order buys (benchmark X3).

The runner drives any scheduler exposing the uniform stepping interface
(``instance_ids`` / ``is_terminated`` / ``step_instance`` /
``resolve_stall`` / ``timeline_length`` / ``timeline_event`` /
``managed``), i.e. both the PRED scheduler and every baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.instance import ActionType
from repro.core.process import Process
from repro.core.schedule import AbortEvent, ActivityEvent, CommitEvent
from repro.errors import SchedulerError
from repro.sim.engine import EventQueue
from repro.sim.metrics import RunMetrics
from repro.subsystems.failures import FailurePolicy

__all__ = [
    "Arrival",
    "DurationModel",
    "constant_durations",
    "SimulationRunner",
    "simulate_run",
]


#: Maps a service name to its virtual duration.
DurationModel = Callable[[str], float]


def constant_durations(duration: float = 1.0) -> DurationModel:
    """Every service takes the same virtual time."""
    return lambda service: duration


@dataclass(frozen=True)
class Arrival:
    """One open-loop offer: a process arriving at a virtual time.

    Unlike the ``arrivals`` dict (pre-submitted processes whose
    *dispatch* is delayed), an :class:`Arrival` is offered to the
    scheduler's admission front door only when its time comes — under
    overload it may be queued or turned away, so the open-loop model
    needs a scheduler exposing ``offer()``.
    """

    time: float
    process: Process
    failures: Optional[FailurePolicy] = None


@dataclass
class _InFlight:
    process_id: str
    conflict_service: str
    finish_time: float


class SimulationRunner:
    """Discrete-event driver around a steppable scheduler."""

    def __init__(
        self,
        scheduler,
        durations: Optional[DurationModel] = None,
        order: str = "strong",
        max_iterations: int = 1_000_000,
        arrivals: Optional[Dict[str, float]] = None,
        offers: Optional[Sequence[Arrival]] = None,
    ) -> None:
        if order not in ("strong", "weak"):
            raise ValueError(f"order must be 'strong' or 'weak', got {order!r}")
        if offers and not hasattr(scheduler, "offer"):
            raise SchedulerError(
                "open-loop offers require a scheduler exposing offer()"
            )
        self.scheduler = scheduler
        #: Open-loop arrivals, offered to the scheduler when their
        #: virtual time comes (admission may queue or reject them).
        self.offers: List[Arrival] = sorted(
            offers or [], key=lambda arrival: arrival.time
        )
        self._pending_offers = 0
        self.durations = durations or constant_durations()
        self.order = order
        self._max_iterations = max_iterations
        self.queue = EventQueue()
        self._in_flight: List[_InFlight] = []
        self._busy: Set[str] = set()
        #: Pairwise service-conflict memo for the strong-order gate,
        #: dropped whenever the conflict relation's version moves
        #: (mid-run declare/retract/register).
        self._conflict_memo: Dict[Tuple[str, str], bool] = {}
        self._conflict_memo_version: Optional[int] = None
        #: instance id -> virtual arrival time; before it, the instance
        #: is not dispatched (open-system workloads).  Unlisted
        #: instances arrive at time 0.
        self.arrivals: Dict[str, float] = dict(arrivals or {})
        #: The scheduler's resilience layer, if any: its virtual clock
        #: becomes the simulation clock so timeouts, backoff windows and
        #: breaker reopen times live on the same timeline as the run.
        self.resilience = getattr(scheduler, "resilience", None)
        if self.resilience is not None:
            previous = self.resilience.clock
            self.resilience.attach_clock(self.queue.clock)
            registry = getattr(scheduler, "registry", None)
            if registry is not None:
                for subsystem in registry.subsystems():
                    if subsystem.clock is None or subsystem.clock is previous:
                        subsystem.clock = self.queue.clock
        #: The scheduler's trace bus, if attached: timestamp its events
        #: from the simulation clock (virtual time).
        self.trace = getattr(scheduler, "trace", None)
        if self.trace is not None:
            self.trace.attach_clock(self.queue.clock)
        #: Metrics registry (PRED scheduler only): the runner feeds
        #: activity-duration and process-sojourn histograms.
        self._metrics_registry = getattr(scheduler, "metrics", None)

    # -- gating ---------------------------------------------------------------

    def _gated(self, pid: str) -> bool:
        """Would dispatching ``pid``'s next action violate strong order?"""
        if self.order != "strong":
            return False
        managed = self.scheduler.managed(pid)
        action = managed.instance.next_action()
        if action.type is ActionType.FINISHED or action.activity is None:
            return False
        definition = managed.instance.definition(action.activity)
        service = definition.service
        assert service is not None
        relation = self.scheduler.conflicts
        version = getattr(relation, "version", 0)
        if version != self._conflict_memo_version:
            self._conflict_memo_version = version
            self._conflict_memo.clear()
        memo = self._conflict_memo
        for flight in self._in_flight:
            if flight.process_id == pid:
                continue
            key = (flight.conflict_service, service)
            conflicting = memo.get(key)
            if conflicting is None:
                conflicting = relation.conflicts(*key)
                memo[key] = conflicting
            if conflicting:
                return True
        return False

    # -- the simulation loop ----------------------------------------------------

    def run(self) -> RunMetrics:
        scheduler = self.scheduler
        metrics = RunMetrics(scheduler_name=getattr(scheduler, "name", "pred"))
        spans_start: Dict[str, float] = {}
        iterations = 0

        # Wake the loop at each arrival time so the clock reaches it.
        for arrival in set(self.arrivals.values()):
            if arrival > 0:
                self.queue.schedule_at(arrival, lambda: None)
        # Open-loop offers arrive as events on the virtual timeline.
        for offer in self.offers:
            self._pending_offers += 1
            self.queue.schedule_at(offer.time, self._offer_event(offer, metrics))

        pump = getattr(scheduler, "pump_admission", None)
        order_of = getattr(scheduler, "dispatch_order", None)
        while not self._finished():
            iterations += 1
            if iterations > self._max_iterations:
                raise SchedulerError("simulation did not converge")
            progressed = False
            now = self.queue.clock.now
            if pump is not None:
                # Admission is progress: a pumped process gets its first
                # dispatch chance in this very round.
                if pump(now=now):
                    progressed = True
                self._sample_queue_depth(metrics)
            order = order_of() if order_of is not None else scheduler.instance_ids()
            for pid in order:
                if scheduler.is_terminated(pid) or pid in self._busy:
                    continue
                if self.arrivals.get(pid, 0.0) > now:
                    continue
                if self._gated(pid):
                    continue
                before = scheduler.timeline_length()
                if not scheduler.step_instance(pid):
                    continue
                progressed = True
                spans_start.setdefault(
                    pid, max(self.arrivals.get(pid, 0.0), now)
                )
                self._absorb_new_events(pid, before, metrics, spans_start)
            if progressed:
                continue
            if self._in_flight:
                # Activities are executing; their completion events end
                # the wait.
                self.queue.run_next()
                continue
            # Nothing in flight: blocked work may just be waiting on
            # the clock (retry backoff, open breakers) — turn the next
            # resilience deadline into a wake-up event.
            if self.resilience is not None:
                deadline = self.resilience.next_deadline()
                if deadline is not None and deadline > self.queue.clock.now:
                    self.queue.schedule_at(deadline, lambda: None)
                    self.queue.run_next()
                    continue
            # A blocked *arrived* process with nothing in flight and no
            # clock deadline is a logical stall.  Future arrivals only
            # add load — they never unblock existing waits — so the
            # stall is resolved now rather than idling toward them.
            if any(
                not scheduler.is_terminated(pid)
                and self.arrivals.get(pid, 0.0) <= now
                for pid in scheduler.instance_ids()
            ):
                scheduler.resolve_stall()
                continue
            if not self.queue.empty:
                self.queue.run_next()
                continue
            # Nothing arrived, nothing scheduled: the loop condition
            # (pending offers / queued admissions) decides.
            scheduler.resolve_stall()

        # Drain remaining completions so the makespan covers them.
        while not self.queue.empty:
            self.queue.run_next()
        metrics.makespan = self.queue.clock.now
        self._fill_stats(metrics)
        return metrics

    def _finished(self) -> bool:
        """Done only when admitted work, offers and the queue drained."""
        return (
            self.scheduler.all_terminated()
            and self._pending_offers == 0
            and self._queue_depth() == 0
        )

    def _offer_event(
        self, offer: Arrival, metrics: RunMetrics
    ) -> Callable[[], None]:
        def fire() -> None:
            self._pending_offers -= 1
            decision = self.scheduler.offer(
                offer.process,
                failures=offer.failures,
                now=self.queue.clock.now,
            )
            if decision.instance_id is not None and not decision.rejected:
                self.arrivals[decision.instance_id] = offer.time
            self._sample_queue_depth(metrics)

        return fire

    def _queue_depth(self) -> int:
        depth_of = getattr(self.scheduler, "queue_depth", None)
        return depth_of() if depth_of is not None else 0

    def _sample_queue_depth(self, metrics: RunMetrics) -> None:
        depth = self._queue_depth()
        series = metrics.queue_depth_series
        if not series or series[-1][1] != depth:
            series.append((self.queue.clock.now, depth))

    def _absorb_new_events(
        self,
        pid: str,
        before: int,
        metrics: RunMetrics,
        spans_start: Dict[str, float],
    ) -> None:
        now = self.queue.clock.now
        latency_of = getattr(self.scheduler, "timeline_latency", None)
        trace = self.trace
        registry = self._metrics_registry
        for index in range(before, self.scheduler.timeline_length()):
            event = self.scheduler.timeline_event(index)
            if isinstance(event, ActivityEvent):
                duration = self.durations(event.conflict_service)
                if latency_of is not None:
                    duration += latency_of(index)
                flight = _InFlight(
                    process_id=event.process_id,
                    conflict_service=event.conflict_service,
                    finish_time=now + duration,
                )
                self._in_flight.append(flight)
                self._busy.add(event.process_id)
                self.queue.schedule(duration, self._completion(flight))
                if trace is not None and trace.enabled:
                    trace.emit(
                        "exec",
                        process=event.process_id,
                        activity=event.activity.activity_name,
                        service=event.service,
                        duration=duration,
                        direction=event.activity.direction.exponent,
                    )
                if registry is not None:
                    registry.histogram("sim.activity_duration").observe(
                        duration
                    )
            elif isinstance(event, (CommitEvent, AbortEvent)):
                start = spans_start.get(event.process_id, now)
                metrics.process_spans[event.process_id] = (start, now)
                if registry is not None:
                    registry.histogram("sim.process_sojourn").observe(
                        now - start
                    )
                if isinstance(event, CommitEvent):
                    metrics.processes_committed += 1
                else:
                    metrics.processes_aborted += 1

    def _completion(self, flight: _InFlight) -> Callable[[], None]:
        def on_finish() -> None:
            self._in_flight.remove(flight)
            # The process stays busy while *any* of its activities runs.
            if not any(
                other.process_id == flight.process_id
                for other in self._in_flight
            ):
                self._busy.discard(flight.process_id)

        return on_finish

    def _fill_stats(self, metrics: RunMetrics) -> None:
        perf_snapshot = getattr(self.scheduler, "perf_snapshot", None)
        if callable(perf_snapshot):
            metrics.perf = perf_snapshot()
        stats = getattr(self.scheduler, "stats", None)
        if stats is None:
            return
        values = stats if isinstance(stats, dict) else stats.as_dict()
        metrics.activities_dispatched = int(values.get("dispatched", 0))
        metrics.deferrals = int(values.get("deferred", 0))
        metrics.victim_aborts = int(
            values.get("victim_aborts", values.get("aborts", 0))
        )
        metrics.restarts = int(values.get("restarts", 0))
        metrics.degradations = int(values.get("degradations", 0))
        metrics.processes_offered = int(values.get("offered", 0))
        metrics.processes_rejected = int(values.get("rejected", 0))
        metrics.processes_shed = int(values.get("shed", 0))
        metrics.starvation_boosts = int(values.get("starvation_boosts", 0))
        metrics.livelock_escalations = int(
            values.get("livelock_escalations", 0)
        )
        if self.resilience is not None:
            snapshot = self.resilience.snapshot()
            metrics.retries = int(snapshot.get("retries", 0))
            metrics.timeouts = int(snapshot.get("timeouts", 0))
            metrics.degradations = int(
                snapshot.get("degradations", metrics.degradations)
            )
            metrics.breaker_trips = int(snapshot.get("breaker_trips", 0))
            metrics.breaker_recoveries = int(
                snapshot.get("breaker_recoveries", 0)
            )


def simulate_run(
    scheduler,
    durations: Optional[DurationModel] = None,
    order: str = "strong",
    arrivals: Optional[Dict[str, float]] = None,
) -> RunMetrics:
    """Run a prepared scheduler under virtual time; returns its metrics."""
    return SimulationRunner(
        scheduler, durations=durations, order=order, arrivals=arrivals
    ).run()
