"""Federated workloads: scaling sweeps and shard-kill chaos (X13).

Builds an N-shard federation from a spec — per-group subsystems with
counter services, a service-ownership router, seeded processes that are
either shard-local or deliberately cross-shard — runs it under the
discrete-event federation runner with optional message faults, network
partitions and whole-shard kills, and certifies the merged cross-shard
history with the offline PRED checkers plus the 2PC decision audit.

Entry points:

* :func:`run_federation` — one seeded, certified federated run;
* :func:`scaling_sweep` — same total work over 1..N shards on a
  service-disjoint fleet (the near-linear-scaling experiment);
* :func:`kill_sweep` — every shard killed and recovered mid-run while
  drop/delay/duplicate/partition faults hit the inter-shard links.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.conflict import ExplicitConflicts
from repro.fed.federation import Federation
from repro.fed.messages import FederationNetwork, MessageFaultPolicy
from repro.fed.router import ShardRouter
from repro.fed.runner import FederationRunMetrics, FederationRunner
from repro.sim.certify import (
    Certification,
    certify_history,
    ensure_certified,
)
from repro.sim.clock import VirtualClock
from repro.sim.workload import WorkloadSpec, generate_process
from repro.subsystems.services import counter_service
from repro.subsystems.subsystem import Subsystem

__all__ = [
    "FederationSpec",
    "FederationResult",
    "run_federation",
    "scaling_sweep",
    "kill_sweep",
]


@dataclass(frozen=True)
class FederationSpec:
    """Knobs of one federated run."""

    #: Number of scheduler shards.
    shards: int = 2
    #: Service groups (one subsystem each); each group is owned by one
    #: shard (``group % shards``).  Keeping the group count fixed while
    #: varying ``shards`` keeps the *work* identical across a sweep.
    service_groups: int = 8
    #: Distinct services per group.
    services_per_group: int = 3
    #: Processes homed per group.
    processes_per_group: int = 2
    #: Fraction of processes whose service pool spans two groups —
    #: their footprint crosses shards, so their prepared groups commit
    #: through the cross-shard 2PC.
    cross_shard_fraction: float = 0.0
    #: Give every process a *private* slice of its group's services
    #: (``services_per_group`` each) so nothing conflicts unless the
    #: explicit ``conflict_rate`` says so — the service-disjoint fleet
    #: used by the scaling experiment.
    disjoint_processes: bool = False
    #: Probability that two distinct services conflict (explicit).
    conflict_rate: float = 0.0
    #: Concurrent-activity capacity per shard (fixed across sweeps).
    shard_capacity: int = 4
    #: Message fault rates on inter-shard links.
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_span: Tuple[float, float] = (0.5, 2.0)
    #: ``(time, shard_index, downtime)`` kill schedule.
    kills: Tuple[Tuple[float, int, float], ...] = ()
    #: ``(time, shard_a_index, shard_b_index, duration)`` partitions.
    partitions: Tuple[Tuple[float, int, int, float], ...] = ()
    #: In-doubt timeout before the termination protocol kicks in.
    indoubt_timeout: float = 5.0
    #: Workload shape (process structure DSL knobs).
    prefix_range: Tuple[int, int] = (1, 2)
    suffix_range: Tuple[int, int] = (1, 2)
    alternative_probability: float = 0.25
    #: RNG seed — the whole run is deterministic given the seed.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("need at least one shard")
        if self.service_groups < self.shards:
            raise ValueError("need at least one service group per shard")
        if not 0.0 <= self.cross_shard_fraction <= 1.0:
            raise ValueError("cross_shard_fraction must be in [0, 1]")

    def with_seed(self, seed: int) -> "FederationSpec":
        return replace(self, seed=seed)


@dataclass
class FederationResult:
    """One certified federated run, flattened for reports."""

    spec: FederationSpec
    metrics: FederationRunMetrics
    certification: Certification
    audit_clean: bool
    lost_decisions: List[str] = field(default_factory=list)
    dup_applications: List[str] = field(default_factory=list)
    in_doubt_residue: List[str] = field(default_factory=list)
    lost_processes: List[str] = field(default_factory=list)
    groups_checked: int = 0
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def certified(self) -> bool:
        return self.certification.certified and self.audit_clean

    @property
    def throughput(self) -> float:
        return self.metrics.throughput

    def row(self) -> Dict[str, object]:
        return {
            "shards": self.spec.shards,
            "seed": self.spec.seed,
            "cross_shard_fraction": self.spec.cross_shard_fraction,
            "conflict_rate": self.spec.conflict_rate,
            "committed": self.metrics.committed,
            "aborted": self.metrics.aborted,
            "makespan": round(self.metrics.makespan, 3),
            "throughput": round(self.throughput, 4),
            "fed_deferrals": self.metrics.fed_deferrals,
            "cross_victims": self.metrics.cross_victims,
            "certified": self.certified,
            "pred": self.certification.pred,
            "reducible": self.certification.reducible,
            "terminated": self.certification.terminated,
            "groups_checked": self.groups_checked,
            "lost_decisions": len(self.lost_decisions),
            "dup_applications": len(self.dup_applications),
            "in_doubt_residue": len(self.in_doubt_residue),
            "lost_processes": len(self.lost_processes),
            **{f"net_{key}": value for key, value in self.counters.items()},
        }


def _shard_name(index: int) -> str:
    return f"s{index}"


def _build(
    spec: FederationSpec, trace: Optional[object] = None
) -> Tuple[Federation, FederationRunner]:
    rng = random.Random(spec.seed)
    group_services: List[List[str]] = []
    owners: Dict[str, str] = {}
    subsystems: List[Subsystem] = []
    per_group = spec.services_per_group * (
        spec.processes_per_group if spec.disjoint_processes else 1
    )
    for group in range(spec.service_groups):
        shard = _shard_name(group % spec.shards)
        services = [f"g{group}s{index}" for index in range(per_group)]
        group_services.append(services)
        subsystem = Subsystem(f"grp{group}")
        for service in services:
            subsystem.register(counter_service(service, key=service))
            owners[service] = shard
        subsystems.append(subsystem)

    all_services = [svc for services in group_services for svc in services]
    pairs = []
    for i, left in enumerate(all_services):
        for right in all_services[i + 1:]:
            if spec.conflict_rate and rng.random() < spec.conflict_rate:
                pairs.append((left, right))
    conflicts = ExplicitConflicts(pairs)

    shape = WorkloadSpec(
        processes=1,
        prefix_range=spec.prefix_range,
        suffix_range=spec.suffix_range,
        alternative_probability=spec.alternative_probability,
        max_depth=1,
        seed=spec.seed,
    )

    clock = VirtualClock()
    network = FederationNetwork(
        MessageFaultPolicy(
            drop_rate=spec.drop_rate,
            delay_rate=spec.delay_rate,
            delay_span=spec.delay_span,
            duplicate_rate=spec.duplicate_rate,
            seed=spec.seed,
        )
    )
    federation = Federation(
        ShardRouter(owners),
        subsystems,
        network=network,
        conflicts=conflicts,
        clock=clock,
        trace=trace,
        indoubt_timeout=spec.indoubt_timeout,
    )

    for group in range(spec.service_groups):
        for index in range(spec.processes_per_group):
            if spec.disjoint_processes:
                start = index * spec.services_per_group
                pool = group_services[group][
                    start:start + spec.services_per_group
                ]
            else:
                pool = list(group_services[group])
            if (
                spec.service_groups > 1
                and rng.random() < spec.cross_shard_fraction
            ):
                other = rng.randrange(spec.service_groups - 1)
                if other >= group:
                    other += 1
                pool += group_services[other]
            process = generate_process(
                rng, shape, f"P{group}-{index}", pool
            )
            federation.submit(process)

    runner = FederationRunner(
        federation,
        capacity=spec.shard_capacity,
        kills=[
            (time, _shard_name(index % spec.shards), downtime)
            for time, index, downtime in spec.kills
        ],
        partitions=[
            (
                time,
                _shard_name(a % spec.shards),
                _shard_name(b % spec.shards),
                duration,
            )
            for time, a, b, duration in spec.partitions
            if a % spec.shards != b % spec.shards
        ],
    )
    return federation, runner


def run_federation(
    spec: FederationSpec,
    strict: bool = True,
    trace: Optional[object] = None,
) -> FederationResult:
    """One seeded federated run, certified end to end.

    With ``strict`` (the default) an uncertified merged history or a
    dirty decision audit raises :class:`CorrectnessViolation` — the
    same contract as the chaos harness.
    """
    federation, runner = _build(spec, trace=trace)
    metrics = runner.run()
    history = federation.merged_history()
    certification = certify_history(history, federation.all_terminated())
    audit = federation.validate()
    result = FederationResult(
        spec=spec,
        metrics=metrics,
        certification=certification,
        audit_clean=audit.clean,
        lost_decisions=list(audit.lost_decisions),
        dup_applications=list(audit.dup_applications),
        in_doubt_residue=list(audit.in_doubt_residue),
        lost_processes=list(audit.lost_processes),
        groups_checked=audit.groups_checked,
        counters=federation.counters(),
    )
    if strict:
        ensure_certified(
            certification,
            harness=f"federation:shards={spec.shards}",
            seed=spec.seed,
            clean=audit.clean,
            detail=(
                f"lost={audit.lost_decisions} "
                f"dup={audit.dup_applications} "
                f"residue={audit.in_doubt_residue} "
                f"lost_processes={audit.lost_processes}"
            ),
            details={
                "shards": spec.shards,
                "lost_decisions": list(audit.lost_decisions),
                "dup_applications": list(audit.dup_applications),
                "in_doubt_residue": list(audit.in_doubt_residue),
                "lost_processes": list(audit.lost_processes),
            },
        )
    return result


def scaling_sweep(
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    spec: Optional[FederationSpec] = None,
    seeds: Sequence[int] = (0,),
    trace: Optional[object] = None,
) -> List[FederationResult]:
    """Same total work on service-disjoint fleets of 1..N shards.

    The group count, per-group work and per-shard capacity are fixed;
    only the shard count varies — aggregate throughput should scale
    near-linearly because disjoint footprints exchange zero messages.
    """
    base = spec or FederationSpec(
        service_groups=max(shard_counts),
        processes_per_group=4,
        shard_capacity=2,
        cross_shard_fraction=0.0,
        conflict_rate=0.0,
        disjoint_processes=True,
    )
    results: List[FederationResult] = []
    for shards in shard_counts:
        for seed in seeds:
            results.append(
                run_federation(
                    replace(base, shards=shards, seed=seed), trace=trace
                )
            )
    return results


def kill_sweep(
    spec: Optional[FederationSpec] = None,
    seeds: Sequence[int] = (0, 1, 2),
    trace: Optional[object] = None,
) -> List[FederationResult]:
    """Chaos mode: every shard dies once, all four fault kinds injected.

    Each seeded run kills and recovers each shard in turn (staggered so
    the federation is never fully dark), runs message faults on every
    link, and partitions a shard pair mid-run.  Every run must certify
    and audit clean — zero lost, zero doubly-applied commit decisions.
    """
    base = spec or FederationSpec(
        shards=3,
        service_groups=6,
        processes_per_group=2,
        cross_shard_fraction=0.35,
        conflict_rate=0.05,
        drop_rate=0.15,
        delay_rate=0.15,
        duplicate_rate=0.15,
    )
    kills = tuple(
        (4.0 + 8.0 * index, index, 4.0) for index in range(base.shards)
    )
    partitions = ((2.0, 0, 1, 2.0),)
    configured = replace(base, kills=kills, partitions=partitions)
    return [
        run_federation(configured.with_seed(seed), trace=trace)
        for seed in seeds
    ]
